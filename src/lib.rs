//! Umbrella crate for the Madeleine reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency root.
pub use mad_mpi;
pub use mad_shm;
pub use mad_sim;
pub use mad_tcp;
pub use madeleine;
pub use simnet;
pub use vtime;
