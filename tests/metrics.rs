//! Live telemetry plane: in-band cluster pulls over the paper's
//! simulated cluster-of-clusters, health watchdogs under injected
//! faults, seeded histogram properties, and the `metrics:`/`health:`
//! trace tracks.

use std::collections::BTreeMap;

use mad_metrics::Snapshot;
use mad_sim::{SimTech, Testbed};
use mad_util::hist::AtomicHistogram;
use mad_util::rng::Rng;
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::mad_trace::schema::{validate_jsonl, validate_route_tracks};
use madeleine::session::VcOptions;
use madeleine::{MetricsOptions, NodeId, RecvMode, SendMode, SessionBuilder, WatchdogConfig};
use simnet::TraceLog;
use vtime::SimDuration;

/// Root seed of the randomized pieces; override with
/// `MAD_SOAK_SEED=<u64>` (CI pins one fixed value).
fn soak_seed() -> u64 {
    std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4D41_4445)
}

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

/// Cluster-of-clusters pull: net0 {0,1,2} and net1 {2,3,4} bridged by
/// gateway 2. While a bulk transfer runs 0 → 4, endpoint 1 pulls every
/// node's registry in-band (requests and replies relayed through the
/// gateway for the far cluster) and the gateway pulls a remote endpoint
/// itself. Every snapshot must arrive, and the gateway's must show the
/// forward-latency histogram populated by the traffic.
fn pull_across_clusters(engine: EngineKind) {
    const MSG: usize = 300_000;

    let tb = Testbed::new(5);
    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            gateway: GatewayConfig {
                engine,
                credit_window: Some(8),
                ..Default::default()
            },
            metrics: Some(MetricsOptions::default()),
            ..Default::default()
        },
    );
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        let out: BTreeMap<NodeId, Snapshot> = match node.rank().0 {
            0 => {
                let data = payload(MSG, 5);
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                BTreeMap::new()
            }
            4 => {
                let mut buf = vec![0u8; MSG];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                BTreeMap::new()
            }
            _ => BTreeMap::new(),
        };
        // Everyone waits for the transfer to finish, then the observers
        // pull: endpoint 1 sweeps the whole cluster (both sides of the
        // gateway), the gateway node pulls a far endpoint itself.
        node.barrier().wait();
        let plane = vc.metrics_plane().expect("metrics enabled").clone();
        let pulled = match node.rank().0 {
            1 => plane.pull(
                &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
                1_000_000_000,
            ),
            2 => plane.pull(&[NodeId(2), NodeId(3)], 1_000_000_000),
            _ => BTreeMap::new(),
        };
        drop(out);
        pulled
    });

    // Endpoint 1 saw all five nodes.
    let swept = &results[1];
    assert_eq!(
        swept.keys().copied().collect::<Vec<_>>(),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
        "endpoint pull missed nodes ({engine:?})"
    );
    // The gateway's snapshot shows the traffic in its forward-latency
    // histogram and a live thread-budget gauge.
    let gw = &swept[&NodeId(2)];
    let fwd = gw
        .hist("gw_forward_ns")
        .expect("gateway snapshot lacks gw_forward_ns");
    assert!(
        fwd.count() > 0,
        "no forward latencies recorded ({engine:?})"
    );
    let (threads, _) = gw
        .gauge("rt_threads_spawned")
        .expect("gateway snapshot lacks rt_threads_spawned");
    assert!(threads > 0, "thread-budget gauge never refreshed");
    // All streams closed by pull time.
    let (open, _) = gw.gauge("open_streams").unwrap_or((0, 0));
    assert_eq!(open, 0, "streams left open after the transfer");
    // The gateway's own two-node pull (itself plus a far endpoint).
    let gw_pull = &results[2];
    assert_eq!(
        gw_pull.keys().copied().collect::<Vec<_>>(),
        vec![NodeId(2), NodeId(3)],
        "gateway pull missed nodes ({engine:?})"
    );
}

#[test]
fn in_band_pull_across_clusters_threaded() {
    pull_across_clusters(EngineKind::Threaded);
}

#[test]
fn in_band_pull_across_clusters_reactor() {
    pull_across_clusters(EngineKind::Reactor);
}

/// Watchdog soak under an injected fault: a two-gateway chain
/// 0 → 1 → 2 → 3 whose receiver never drains. Gateway 2 jams against
/// the silent sink, stops granting credits upstream, and gateway 1's
/// outbound window — a *non-final* hop, so every fragment consumes a
/// credit — runs dry until its 50 virtual ms deadline (ten watchdog
/// ticks) cancels the stream. Exactly the matching detectors must
/// fire on gateway 1: `credit_starvation` is mandatory,
/// `stalled_stream` accompanies it (the stream sits open making no
/// progress), and `dead_path_flap` (a multi-path signal with no
/// multi-path configured) is forbidden; the trace gains well-formed
/// `health:` and `metrics:` tracks.
#[test]
fn watchdog_fires_on_injected_credit_starvation() {
    const DOOMED: usize = 128 * 1024;

    let trace = TraceLog::new();
    let tracer = trace.tracer().clone();
    let tb = Testbed::with_trace(4, trace);

    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2]);
    let n2 = sb.network("fe", tb.driver(SimTech::FastEthernet), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(4096),
            gateway: GatewayConfig {
                credit_window: Some(4),
                credit_timeout_ns: 50_000_000,
                drain_timeout_ns: 100_000_000,
                ..Default::default()
            },
            metrics: Some(MetricsOptions {
                watchdog: Some(WatchdogConfig {
                    interval_ns: SimDuration::from_millis(5).as_nanos(),
                    ..Default::default()
                }),
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        if node.rank().0 == 0 {
            // Rank 3 never unpacks: the chain jams and the stream must
            // degrade into a typed error back here.
            let data = payload(DOOMED, 9);
            let r = (|| {
                let mut w = vc.begin_packing(NodeId(3))?;
                w.pack(&data, SendMode::Later, RecvMode::Cheaper)?;
                w.end_packing()
            })();
            assert!(r.is_err(), "stream into a stalled sink must fail typed");
        }
    });
    drop(results);

    let totals = tracer.snapshot().counter_totals();
    let health = |name: &str| -> i64 {
        totals
            .get(&(
                "health:vc@1".to_string(),
                "health".to_string(),
                name.to_string(),
            ))
            .copied()
            .unwrap_or(0)
    };
    assert!(
        health("credit_starvation") >= 1,
        "watchdog missed the injected credit starvation: {totals:?}"
    );
    assert!(
        health("stalled_stream") >= 1,
        "watchdog missed the stalled stream: {totals:?}"
    );
    assert_eq!(
        health("dead_path_flap"),
        0,
        "dead_path_flap fired without a multi-path plane"
    );

    // The whole trace (including the new tracks) validates, and the
    // teardown registry flush produced `metrics:` events.
    let jsonl = tracer.snapshot().to_jsonl_string();
    validate_jsonl(&jsonl).expect("trace must validate");
    let tracks = validate_route_tracks(&jsonl).expect("typed tracks must validate");
    assert!(tracks.health_events >= 1, "no health events in the trace");
    assert!(
        tracks.metrics_events > 0,
        "no metrics events in the trace teardown flush"
    );
}

/// Clean-run control for the soak above: identical topology and
/// thresholds, no fault — the watchdog must stay silent.
#[test]
fn watchdog_silent_on_clean_run() {
    const MSG: usize = 200_000;

    let trace = TraceLog::new();
    let tracer = trace.tracer().clone();
    let tb = Testbed::with_trace(5, trace);

    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(4096),
            gateway: GatewayConfig {
                credit_window: Some(4),
                credit_timeout_ns: 50_000_000,
                drain_timeout_ns: 100_000_000,
                ..Default::default()
            },
            metrics: Some(MetricsOptions {
                watchdog: Some(WatchdogConfig {
                    interval_ns: SimDuration::from_millis(5).as_nanos(),
                    ..Default::default()
                }),
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            1 => {
                let data = payload(MSG, 3);
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            4 => {
                let mut buf = vec![0u8; MSG];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(MSG, 3)
            }
            _ => true,
        }
    });
    assert!(ok.into_iter().all(|x| x));

    let totals = tracer.snapshot().counter_totals();
    for ((track, cat, name), v) in &totals {
        assert!(
            !track.starts_with("health:"),
            "watchdog fired on a clean run: {track}/{cat}/{name} = {v}"
        );
    }
}

/// Seeded property test of the log2 histogram: for random sample sets,
/// the snapshot's count/sum/max are exact, quantiles are monotone in q,
/// every quantile is bracketed by the true min and max, and recording
/// two halves then merging equals recording everything into one.
#[test]
fn histogram_properties_hold_for_random_samples() {
    let mut rng = Rng::new(soak_seed() ^ 0x4849_5354);
    for round in 0..50 {
        let n = rng.gen_range(1..400usize);
        // Mix magnitudes so buckets from 0 to 2^40 get exercised.
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                let shift = rng.gen_range(0..41u32);
                (rng.gen_range(0..u32::MAX as u64 as usize) as u64) >> (31u32.saturating_sub(shift))
            })
            .collect();

        let whole = AtomicHistogram::new();
        let lo = AtomicHistogram::new();
        let hi = AtomicHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                lo.record(s);
            } else {
                hi.record(s);
            }
        }

        let snap = whole.snapshot();
        assert_eq!(snap.count(), n as u64, "round {round}: count");
        assert_eq!(snap.sum, samples.iter().sum::<u64>(), "round {round}: sum");
        let true_max = *samples.iter().max().unwrap();
        let true_min = *samples.iter().min().unwrap();
        assert_eq!(snap.max, true_max, "round {round}: max");

        // Quantiles: monotone, bracketed by the true extremes (log2
        // buckets can only round *up* within a bucket, and the top
        // bucket is clamped to the true max).
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q);
            assert!(v >= prev, "round {round}: quantile not monotone at {q}");
            assert!(v <= true_max, "round {round}: quantile above max at {q}");
            prev = v;
        }
        assert!(
            snap.quantile(0.0) >= true_min / 2,
            "round {round}: q0 below its bucket's lower bound"
        );

        // Merge of the halves is exactly the whole.
        let mut merged = lo.snapshot();
        merged.merge(&hi.snapshot());
        assert_eq!(merged, snap, "round {round}: merge mismatch");
    }
}
