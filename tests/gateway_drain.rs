//! Teardown drain: gateways must finish relaying every stream they have
//! accepted before stopping, even when no application thread is waiting on
//! the data anymore. Before the drain protocol, a sender could return from
//! `end_packing` (the message fully handed to the network), the session
//! would observe all application threads done, and the engines would stop
//! with fragments still queued — silently dropping the tail of in-flight
//! messages.

use std::sync::{Arc, Mutex};

use mad_shm::ShmDriver;
use mad_sim::{SimTech, Testbed};
use madeleine::error::MadError;
use madeleine::gateway::GatewayConfig;
use madeleine::session::VcOptions;
use madeleine::vchannel::VirtualChannel;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

/// Chain 0 → gw1 → gw2 → 3. The sender fires off several messages and
/// exits; the receiver *never reads them* — it only stashes its virtual
/// channel so the receive conduits outlive the application. The gateways
/// must still forward every byte before honoring the stop request, which
/// the engine statistics prove.
#[test]
fn gateways_drain_in_flight_streams_before_stopping() {
    const MSGS: usize = 5;
    const LEN: usize = 30_000;
    const MTU: usize = 1024;

    let stash: Arc<Mutex<Vec<Arc<VirtualChannel>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt.clone()), &[1, 2]);
    let n2 = sb.network("shm2", ShmDriver::new(rt), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(MTU),
            ..Default::default()
        },
    );

    let stash2 = stash.clone();
    let (_, stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                for i in 0..MSGS {
                    let data = payload(LEN, i as u8);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            3 => {
                // Deliberately do NOT receive: keep the conduits alive past
                // the application's lifetime and let teardown race the
                // still-relaying engines.
                stash2.lock().unwrap().push(vc.clone());
            }
            _ => {}
        }
    });

    // Both gateways relayed every message in full.
    assert_eq!(stats.len(), 2, "two gateway engines");
    let frags_per_msg = LEN.div_ceil(MTU) as u64;
    for (vc_name, gw, s) in &stats {
        assert_eq!(vc_name, "vc");
        let (messages, fragments, bytes) = s.snapshot();
        assert_eq!(messages, MSGS as u64, "gateway {gw} lost whole messages");
        assert_eq!(
            fragments,
            MSGS as u64 * frags_per_msg,
            "gateway {gw} lost fragments"
        );
        assert_eq!(
            bytes,
            (MSGS * LEN) as u64,
            "gateway {gw} lost payload bytes"
        );
        // Per-stream accounting agrees with the totals.
        let per = s.per_stream();
        assert_eq!(per.len(), 1, "one (source, destination) pair");
        let ((src, dest), c) = per[0];
        assert_eq!((src, dest), (NodeId(0), NodeId(3)));
        assert_eq!(c.messages, MSGS as u64);
        assert_eq!(c.bytes, (MSGS * LEN) as u64);
        assert_eq!(c.fragments, MSGS as u64 * frags_per_msg);
    }
    drop(stash);
}

/// The other side of the drain contract: a stream whose source silently
/// dies mid-message can never end, and without a bound the gateway would
/// honor "drain everything first" forever. The drain deadline converts
/// that into a bounded wait — the session tears down a fixed (virtual)
/// time after the stop request, abandoning only the orphaned stream.
///
/// Flow control is off here on purpose: no credit timeout, no cancel ever
/// reaches the gateway (the sender's best-effort cancel dies on the same
/// dead link), so the drain deadline is the *only* mechanism that can
/// unblock teardown.
#[test]
fn drain_timeout_unblocks_lost_source() {
    const LEN: usize = 2 << 20;
    const MTU: usize = 16 * 1024;
    const DEAD_AT: u64 = 5_000_000; // 5 virtual ms: mid-stream
    const DRAIN_NS: u64 = 100_000_000; // 100 virtual ms

    let tb = Testbed::new(3);
    tb.kill_host(0, DEAD_AT);

    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("fe", tb.driver(SimTech::FastEthernet), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(MTU),
            gateway: GatewayConfig {
                drain_timeout_ns: DRAIN_NS,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let stash: Arc<Mutex<Vec<Arc<VirtualChannel>>>> = Arc::new(Mutex::new(Vec::new()));
    let stash2 = stash.clone();
    let (results, stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // Dies (silently) 5 ms into a ~30 ms transfer: the next
                // wire send vanishes and comes back as a typed error.
                let data = payload(LEN, 7);
                (|| {
                    let mut w = vc.begin_packing(NodeId(2))?;
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper)?;
                    w.end_packing()
                })()
            }
            2 => {
                // Never reads, but keeps the conduits alive so the partial
                // stream has somewhere to drain to — the orphaned stream,
                // not a closed outbound side, must be what blocks teardown.
                stash2.lock().unwrap().push(vc.clone());
                Ok(())
            }
            _ => Ok(()), // the gateway
        }
    });

    match &results[0] {
        Err(MadError::PeerUnreachable(peer)) => assert_eq!(*peer, NodeId(1)),
        other => panic!("lost sender must fail typed, got {other:?}"),
    }

    // The stream never completed, some fragments were relayed before the
    // death, and the engine exited with nothing left resident.
    assert_eq!(stats.len(), 1);
    let t = stats[0].2.totals();
    assert_eq!(
        t.messages, 0,
        "a half-dead stream must not count as relayed"
    );
    assert!(t.fragments >= 1, "no fragment crossed before the death");
    assert_eq!(t.held_bytes, 0, "engine leaked resident bytes");

    // Teardown was bounded by the drain deadline: the full window was
    // waited out (the stream can never end), and not much more.
    let end = tb.clock().now().0;
    assert!(
        end >= DRAIN_NS,
        "teardown finished before the drain window could have elapsed: {end}"
    );
    assert!(
        end < DEAD_AT + DRAIN_NS + 50_000_000,
        "drain deadline did not bound teardown: {end}"
    );
    drop(stash);
}
