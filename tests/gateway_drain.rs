//! Teardown drain: gateways must finish relaying every stream they have
//! accepted before stopping, even when no application thread is waiting on
//! the data anymore. Before the drain protocol, a sender could return from
//! `end_packing` (the message fully handed to the network), the session
//! would observe all application threads done, and the engines would stop
//! with fragments still queued — silently dropping the tail of in-flight
//! messages.

use std::sync::{Arc, Mutex};

use mad_shm::ShmDriver;
use madeleine::session::VcOptions;
use madeleine::vchannel::VirtualChannel;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

/// Chain 0 → gw1 → gw2 → 3. The sender fires off several messages and
/// exits; the receiver *never reads them* — it only stashes its virtual
/// channel so the receive conduits outlive the application. The gateways
/// must still forward every byte before honoring the stop request, which
/// the engine statistics prove.
#[test]
fn gateways_drain_in_flight_streams_before_stopping() {
    const MSGS: usize = 5;
    const LEN: usize = 30_000;
    const MTU: usize = 1024;

    let stash: Arc<Mutex<Vec<Arc<VirtualChannel>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt.clone()), &[1, 2]);
    let n2 = sb.network("shm2", ShmDriver::new(rt), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(MTU),
            ..Default::default()
        },
    );

    let stash2 = stash.clone();
    let (_, stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                for i in 0..MSGS {
                    let data = payload(LEN, i as u8);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            3 => {
                // Deliberately do NOT receive: keep the conduits alive past
                // the application's lifetime and let teardown race the
                // still-relaying engines.
                stash2.lock().unwrap().push(vc.clone());
            }
            _ => {}
        }
    });

    // Both gateways relayed every message in full.
    assert_eq!(stats.len(), 2, "two gateway engines");
    let frags_per_msg = LEN.div_ceil(MTU) as u64;
    for (vc_name, gw, s) in &stats {
        assert_eq!(vc_name, "vc");
        let (messages, fragments, bytes) = s.snapshot();
        assert_eq!(messages, MSGS as u64, "gateway {gw} lost whole messages");
        assert_eq!(
            fragments,
            MSGS as u64 * frags_per_msg,
            "gateway {gw} lost fragments"
        );
        assert_eq!(
            bytes,
            (MSGS * LEN) as u64,
            "gateway {gw} lost payload bytes"
        );
        // Per-stream accounting agrees with the totals.
        let per = s.per_stream();
        assert_eq!(per.len(), 1, "one (source, destination) pair");
        let ((src, dest), c) = per[0];
        assert_eq!((src, dest), (NodeId(0), NodeId(3)));
        assert_eq!(c.messages, MSGS as u64);
        assert_eq!(c.bytes, (MSGS * LEN) as u64);
        assert_eq!(c.fragments, MSGS as u64 * frags_per_msg);
    }
    drop(stash);
}
