//! End-to-end tests of the multi-path routing plane (`mad-route` +
//! `madeleine::multipath`): parallel-gateway topologies, per-stream and
//! per-fragment striping, and failover when a gateway host dies mid-run.

use mad_sim::{SimTech, Testbed};
use madeleine::gateway::GatewayConfig;
use madeleine::mad_route::StripePolicy;
use madeleine::session::VcOptions;
use madeleine::{MultipathConfig, NodeId, RecvMode, SendMode, SessionBuilder};

/// Deterministic payload, distinct per (sender, index).
fn payload(from: u32, idx: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (i as u8)
                .wrapping_mul(13)
                .wrapping_add((from + 7 * idx) as u8)
        })
        .collect()
}

/// Parallel-gateway topology: net0 {0,1,2}, net1 {1,2,3} — ranks 1 and 2
/// both span the two clusters, so the plan for 0 → 3 has width 2.
fn parallel_testbed() -> (Testbed, SessionBuilder) {
    let tb = Testbed::new(4);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    let nets = [n0, n1];
    (tb, {
        let mut sb = sb;
        sb.vchannel(
            "vc",
            &nets,
            VcOptions {
                mtu: Some(8 * 1024),
                multipath: Some(MultipathConfig::default()),
                ..Default::default()
            },
        );
        sb
    })
}

/// Per-stream adaptive routing: every message still arrives intact and in
/// per-sender order, and the routing plane accounts every payload byte to
/// some gateway path.
#[test]
fn adaptive_streams_round_trip_over_parallel_gateways() {
    const MSGS: u32 = 8;
    const LEN: usize = 100_000;

    let (_tb, sb) = parallel_testbed();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for i in 0..MSGS {
                    let data = payload(0, i, LEN);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    assert!(w.is_forwarded(), "0 → 3 must cross a gateway");
                    // Stamp the index: streams on different paths may
                    // overtake each other (ordering holds per conduit, not
                    // across parallel gateways).
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                // Conservation: the routing plane accounted every byte.
                let mp = vc.multipath().expect("multipath enabled");
                let total: u64 = mp.path_bytes().iter().map(|&(_, b)| b).sum();
                assert_eq!(total, MSGS as u64 * (LEN as u64 + 1));
                true
            }
            3 => {
                let mut seen = vec![false; MSGS as usize];
                for _ in 0..MSGS {
                    let mut r = vc.begin_unpacking().unwrap();
                    assert!(r.is_forwarded());
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let mut buf = vec![0u8; LEN];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, i, LEN), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "missing streams: {seen:?}");
                true
            }
            _ => true, // the two gateways
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Per-fragment striping: one bulk message round-robins its fragments over
/// both gateways and reassembles byte-identically; both paths carry real
/// payload (round-robin guarantees a near-even split).
#[test]
fn fragment_striping_splits_bulk_across_both_gateways() {
    const LEN: usize = 1 << 20;

    let tb = Testbed::new(4);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig {
                policy: StripePolicy::PerFragment,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let data = payload(0, 0, LEN);
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                let mp = vc.multipath().expect("multipath enabled");
                let split = mp.path_bytes();
                let total: u64 = split.iter().map(|&(_, b)| b).sum();
                assert_eq!(total, LEN as u64, "striped bytes not conserved");
                assert_eq!(split.len(), 2, "expected two gateway paths, got {split:?}");
                for &(gw, bytes) in &split {
                    assert!(
                        bytes as f64 >= 0.4 * LEN as f64,
                        "path through gateway {gw} starved: {split:?}"
                    );
                }
                true
            }
            3 => {
                let mut buf = vec![0u8; LEN];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(0, 0, LEN), "striped payload corrupted");
                true
            }
            _ => true,
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Failover: one of the two gateways dies while a schedule of streams is
/// in flight. Streams bound to the dead gateway are re-issued on the
/// survivor; every message still arrives intact, nothing hangs, and the
/// selector records at least one failover.
#[test]
fn gateway_death_fails_over_to_surviving_path() {
    const MSGS: u32 = 10;
    const LEN: usize = 200_000;

    let tb = Testbed::new(4);
    // Gateway 1 dies at 20 virtual ms — mid-schedule.
    tb.kill_host(1, 20_000_000);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig::default()),
            gateway: GatewayConfig {
                drain_timeout_ns: 100_000_000, // dead engine must not hang teardown
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let failovers = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for i in 0..MSGS {
                    let data = payload(0, i, LEN);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                let mp = vc.multipath().expect("multipath enabled");
                let c = mp.counters();
                let total: u64 = mp.path_bytes().iter().map(|&(_, b)| b).sum();
                assert_eq!(
                    total,
                    MSGS as u64 * (LEN as u64 + 1),
                    "every byte must be accounted to the path that delivered it"
                );
                c.failovers
            }
            3 => {
                let mut seen = vec![false; MSGS as usize];
                for _ in 0..MSGS {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let mut buf = vec![0u8; LEN];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, i, LEN), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "missing streams: {seen:?}");
                0
            }
            _ => 0,
        }
    });
    assert!(
        failovers[0] >= 1,
        "gateway 1 died mid-schedule but no stream failed over"
    );
}

/// A one-gateway topology with the routing plane enabled behaves exactly
/// like the legacy single-path library: the plan has width 1, so sends
/// fall through to the unmodified GTM writer.
#[test]
fn single_path_plan_uses_legacy_writer() {
    const LEN: usize = 64 * 1024;

    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig::default()),
            ..Default::default()
        },
    );
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let mp = vc.multipath().expect("multipath enabled");
                assert_eq!(mp.plan(NodeId(0)).paths(2).len(), 1, "plan must be width 1");
                let data = payload(0, 0, LEN);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                // The legacy writer does not touch the path accounting.
                assert!(mp.path_bytes().is_empty());
                true
            }
            2 => {
                let mut buf = vec![0u8; LEN];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(0, 0, LEN));
                true
            }
            _ => true,
        }
    });
    assert!(ok.into_iter().all(|x| x));
}
