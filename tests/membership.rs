//! Dynamic membership end-to-end: the four-phase join handshake over a
//! live cluster-of-clusters, graceful leave → path retirement, rejoin
//! under a bumped incarnation epoch → path readmission, a seeded churn
//! soak under bulk traffic, and the self-tuning controller reacting to
//! an injected credit-starvation episode — with the `member:`/`ctl:`
//! trace tracks asserted throughout.

use mad_sim::{SimTech, Testbed};
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::mad_trace::schema::{validate_jsonl, validate_route_tracks};
use madeleine::session::VcOptions;
use madeleine::{
    ControllerConfig, MemberState, MembershipOptions, MetricsOptions, MultipathConfig, NodeId,
    RecvMode, SendMode, SessionBuilder, WatchdogConfig,
};
use simnet::TraceLog;

/// Root seed of the randomized pieces; override with
/// `MAD_SOAK_SEED=<u64>` (CI pins one fixed value).
fn soak_seed() -> u64 {
    std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4D45_4D42)
}

/// Deterministic payload, distinct per (sender, index).
fn payload(from: u32, idx: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (i as u8)
                .wrapping_mul(13)
                .wrapping_add((from + 7 * idx) as u8)
        })
        .collect()
}

/// Every rank except `me` — the peer set a node joins against.
fn peers_of(me: u32, n: u32) -> Vec<NodeId> {
    (0..n).filter(|&r| r != me).map(NodeId).collect()
}

const JOIN_TIMEOUT: u64 = 2_000_000_000; // 2 virtual s
const WAIT_TIMEOUT: u64 = 2_000_000_000;

/// One full lifecycle episode on the parallel-gateway topology
/// (net0 {0,1,2}, net1 {1,2,3}; gateways 1 and 2):
///
/// 1. every node joins the session through the four-phase handshake;
/// 2. traffic 0 → 3 flows over the two-path fabric;
/// 3. gateway 1 leaves gracefully — peers retire its path in the shared
///    selector (`deaths` + a `dead_path_flap` health event, at most one
///    per watchdog per episode);
/// 4. traffic flows again (now via gateway 2 only);
/// 5. gateway 1 rejoins under a bumped incarnation epoch — serving its
///    join request readmits the retired path (`readmissions`);
/// 6. traffic flows once more over the readmitted fabric.
fn lifecycle_episode(engine: EngineKind) {
    const MSGS: u32 = 4;
    const LEN: usize = 100_000;

    let trace = TraceLog::new();
    let tracer = trace.tracer().clone();
    let tb = Testbed::with_trace(4, trace);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig::default()),
            membership: Some(MembershipOptions::default()),
            metrics: Some(MetricsOptions {
                watchdog: Some(WatchdogConfig::default()),
                ..Default::default()
            }),
            gateway: GatewayConfig {
                engine,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let me = node.rank().0;
        let peers = peers_of(me, 4);
        let plane = vc.membership().expect("membership enabled").clone();
        node.barrier().wait();

        // 1. Everyone joins; the handshake is idempotent, so a second
        //    call is a logged no-op.
        plane.join(&peers, JOIN_TIMEOUT).expect("join failed");
        plane.join(&peers, JOIN_TIMEOUT).expect("re-join failed");
        assert_eq!(plane.phases_completed(), 4);
        assert_eq!(plane.epoch(), 1);
        node.barrier().wait();

        let send = |round: u32| {
            for i in 0..MSGS {
                let data = payload(0, round * MSGS + i, LEN);
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                let hdr = [(round * MSGS + i) as u8];
                w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
        };
        let recv = || {
            let mut seen = vec![false; MSGS as usize * 3];
            for _ in 0..MSGS {
                let mut r = vc.begin_unpacking().unwrap();
                let mut hdr = [0u8; 1];
                r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let i = hdr[0] as u32;
                let mut buf = vec![0u8; LEN];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(0, i, LEN), "stream #{i} corrupted");
                assert!(!seen[i as usize], "stream #{i} delivered twice");
                seen[i as usize] = true;
            }
        };

        // 2. Traffic over the two-path fabric.
        match me {
            0 => send(0),
            3 => recv(),
            _ => {}
        }
        node.barrier().wait();

        // 3. Gateway 1 leaves gracefully; rank 0 synchronizes on the
        //    announcement before the next phase, so the retirement is
        //    deterministic, not racing the barrier.
        if me == 1 {
            plane.leave(&peers);
        }
        if me == 0 {
            assert!(
                plane.wait_member_state(NodeId(1), MemberState::Left, WAIT_TIMEOUT),
                "rank 0 never observed gateway 1's departure"
            );
            let c = vc.multipath().expect("multipath enabled").counters();
            assert!(c.deaths >= 1, "leave did not retire the path: {c:?}");
        }
        node.barrier().wait();

        // 4. Traffic with the path retired: everything rides gateway 2.
        match me {
            0 => send(1),
            3 => recv(),
            _ => {}
        }
        node.barrier().wait();

        // 5. Gateway 1 rejoins under epoch 2. Serving the request
        //    readmits the retired path *before* the ack is sent, so by
        //    the time rejoin returns the re-plan is complete — that is
        //    the bounded-time guarantee, enforced by the join timeout.
        if me == 1 {
            let epoch = plane.rejoin(&peers, JOIN_TIMEOUT).expect("rejoin failed");
            assert_eq!(epoch, 2);
            let c = vc.multipath().expect("multipath enabled").counters();
            assert_eq!(
                c.readmissions, 1,
                "rejoin must readmit the retired path exactly once: {c:?}"
            );
        }
        node.barrier().wait();
        if me == 0 {
            assert!(
                plane.wait_member_state(NodeId(1), MemberState::Active, WAIT_TIMEOUT),
                "rank 0 never observed gateway 1's reactivation"
            );
            assert_eq!(plane.member_epoch(NodeId(1)), 2);
        }
        node.barrier().wait();

        // 6. Traffic over the readmitted fabric.
        match me {
            0 => send(2),
            3 => recv(),
            _ => {}
        }
        assert_eq!(plane.stale_drops(), 0, "no packet here is stale");
        true
    });
    assert!(ok.into_iter().all(|x| x));

    // Trace: the member track validates, carries the lifecycle events,
    // and each watchdog flapped the dead path at most once per episode.
    let totals = tracer.snapshot().counter_totals();
    let sum = |want_track: &str, want_name: &str| -> i64 {
        totals
            .iter()
            .filter(|((track, _, name), _)| track.starts_with(want_track) && name == want_name)
            .map(|(_, v)| *v)
            .sum()
    };
    assert!(
        sum("member:", "phase_activate") >= 4,
        "every node activated"
    );
    assert!(sum("member:", "peer_leave") >= 1, "no peer saw the leave");
    assert_eq!(sum("member:", "retire"), 1, "one retirement episode");
    assert_eq!(sum("member:", "readmit"), 1, "one readmission");
    assert!(sum("member:", "rejoin") >= 1, "the rejoin never traced");
    for ((track, _, name), v) in &totals {
        if track.starts_with("health:") && name == "dead_path_flap" {
            assert!(
                *v <= 1,
                "{track} flapped the dead path {v} times in one episode ({engine:?})"
            );
        }
    }
    assert!(
        sum("health:", "dead_path_flap") >= 1,
        "no watchdog reported the retirement episode ({engine:?})"
    );

    let jsonl = tracer.snapshot().to_jsonl_string();
    validate_jsonl(&jsonl).expect("trace must validate");
    let tracks = validate_route_tracks(&jsonl).expect("typed tracks must validate");
    assert!(tracks.member_events > 0, "no member events in the trace");
}

#[test]
fn leave_rejoin_retires_then_readmits_path_threaded() {
    lifecycle_episode(EngineKind::Threaded);
}

#[test]
fn leave_rejoin_retires_then_readmits_path_reactor() {
    lifecycle_episode(EngineKind::Reactor);
}

/// Seeded churn soak: gateway 1 cycles leave → rejoin while rank 0
/// streams bulk traffic to rank 3 the whole time, with the self-tuning
/// controller governing the shared credit window. Zero hangs, zero lost
/// acknowledged streams, every episode retires and readmits the path,
/// stale packets never appear (graceful churn is epoch-monotone), and
/// the controller's final operating point respects the occupancy clamp.
#[test]
fn churn_soak_under_bulk_traffic() {
    const ROUNDS: u32 = 3;
    const MSGS_PER_ROUND: u32 = 6;
    const LEN: usize = 64 * 1024;
    const CEIL: u32 = 64;

    let seed = soak_seed();
    let trace = TraceLog::new();
    let tracer = trace.tracer().clone();
    let tb = Testbed::with_trace(4, trace);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig::default()),
            membership: Some(MembershipOptions::default()),
            metrics: Some(MetricsOptions::default()),
            controller: Some(ControllerConfig {
                window_ceil: CEIL,
                ..Default::default()
            }),
            gateway: GatewayConfig {
                credit_window: Some(8),
                ..Default::default()
            },
        },
    );
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let me = node.rank().0;
        let peers = peers_of(me, 4);
        let plane = vc.membership().expect("membership enabled").clone();
        node.barrier().wait();
        plane.join(&peers, JOIN_TIMEOUT).expect("join failed");
        node.barrier().wait();

        match me {
            0 => {
                // The sender never pauses: streams are in flight across
                // every leave and rejoin below.
                for i in 0..ROUNDS * MSGS_PER_ROUND {
                    let data = payload(0, i, LEN);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            3 => {
                let total = ROUNDS * MSGS_PER_ROUND;
                let mut seen = vec![false; total as usize];
                for _ in 0..total {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let mut buf = vec![0u8; LEN];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, i, LEN), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "lost streams: {seen:?}");
            }
            1 => {
                // The churning gateway: leave, linger (seeded), rejoin —
                // ROUNDS times, while the traffic above keeps flowing.
                let mut s = seed | 1;
                for round in 0..ROUNDS {
                    // Seeded linger between 2 and ~6 virtual ms.
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    node.runtime().charge_overhead(2_000_000 + s % 4_000_000);
                    plane.leave(&peers);
                    node.runtime()
                        .charge_overhead(2_000_000 + (s >> 8) % 4_000_000);
                    // Rejoin returning Ok IS the bounded-re-plan assert:
                    // readmission happens before the final ack, and the
                    // whole handshake is capped by the join timeout.
                    let epoch = plane.rejoin(&peers, JOIN_TIMEOUT).expect("rejoin failed");
                    assert_eq!(epoch as u32, round + 2);
                }
                let c = vc.multipath().expect("multipath enabled").counters();
                assert!(
                    c.readmissions >= ROUNDS as u64,
                    "every churn episode must readmit the path: {c:?}"
                );
            }
            _ => {}
        }
        node.barrier().wait();
        // Graceful churn is epoch-monotone: nothing may have been
        // dropped as stale, on any plane.
        plane.stale_drops()
    });
    assert!(
        ok.into_iter().all(|d| d == 0),
        "graceful churn produced stale drops"
    );

    // The controller governed the run: its track exists and the final
    // operating point respects the occupancy clamp (window <= ceiling,
    // i.e. window x MTU never exceeds the configured occupancy bound).
    let totals = tracer.snapshot().counter_totals();
    let mut ctl_tracks = 0;
    for ((track, _, name), v) in &totals {
        if track.starts_with("ctl:") && name == "window" {
            ctl_tracks += 1;
            assert!(
                *v >= 1 && *v <= CEIL as i64,
                "{track} final window {v} outside [1, {CEIL}]"
            );
        }
    }
    assert_eq!(ctl_tracks, 2, "one controller per gateway must flush");
    let jsonl = tracer.snapshot().to_jsonl_string();
    let tracks = validate_route_tracks(&jsonl).expect("typed tracks must validate");
    assert!(tracks.member_events > 0 && tracks.ctl_events > 0);
}

/// Controller convergence under an injected credit-starvation episode
/// (the A10 watchdog scenario): a two-gateway chain 0 → 1 → 2 → 3 whose
/// receiver never drains. Gateway 1's outbound window runs dry, its
/// controller sees the credit-timeout delta, and — saturation response
/// disabled to isolate the signal — must raise the shared window, traced
/// as `window_raise` on the `ctl:` track, while every step stays inside
/// the configured clamps.
#[test]
fn controller_raises_window_under_injected_starvation() {
    const DOOMED: usize = 128 * 1024;
    const BASE: u32 = 4;
    const STEP: u32 = 4;
    const CEIL: u32 = 64;

    let trace = TraceLog::new();
    let tracer = trace.tracer().clone();
    let tb = Testbed::with_trace(4, trace);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2]);
    let n2 = sb.network("fe", tb.driver(SimTech::FastEthernet), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(4096),
            gateway: GatewayConfig {
                credit_window: Some(BASE),
                credit_timeout_ns: 50_000_000,
                drain_timeout_ns: 100_000_000,
                ..Default::default()
            },
            // The metrics plane is the controller's sensor substrate (and
            // its responders hold the endpoint conduits open on idle ranks
            // while rank 0 jams into the stalled sink).
            metrics: Some(MetricsOptions::default()),
            controller: Some(ControllerConfig {
                interval_ns: 5_000_000,
                window_step: STEP,
                window_floor: 2,
                window_ceil: CEIL,
                batch_ceil: 8,
                hysteresis_ticks: 1,
                // Isolate the starvation response: no saturation trims.
                saturation_min_stalls: u64::MAX,
                saturation_stall_ratio: 1.0,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        if node.rank().0 == 0 {
            // Rank 3 never unpacks: the chain jams and the stream must
            // degrade into a typed error back here.
            let data = payload(0, 9, DOOMED);
            let r = (|| {
                let mut w = vc.begin_packing(NodeId(3))?;
                w.pack(&data, SendMode::Later, RecvMode::Cheaper)?;
                w.end_packing()
            })();
            assert!(r.is_err(), "stream into a stalled sink must fail typed");
        }
    });
    drop(results);

    let totals = tracer.snapshot().counter_totals();
    let sum = |want_name: &str| -> i64 {
        totals
            .iter()
            .filter(|((track, _, name), _)| track.starts_with("ctl:") && name == want_name)
            .map(|(_, v)| *v)
            .sum()
    };
    // `window_raise` traces the *new* window value, so any raise sums to
    // at least base + step — the measurable widening the episode forces.
    assert!(
        sum("window_raise") >= (BASE + STEP) as i64,
        "the starvation episode never raised the effective window: {totals:?}"
    );
    assert!(
        sum("adjustments") >= 1,
        "controller recorded no adjustments"
    );
    // A4c occupancy bound: the retuned window (x MTU) stays clamped.
    for ((track, _, name), v) in &totals {
        if track.starts_with("ctl:") && name == "window" {
            assert!(
                *v >= 1 && *v <= CEIL as i64,
                "{track} final window {v} escaped the occupancy clamp"
            );
        }
    }
    let jsonl = tracer.snapshot().to_jsonl_string();
    let tracks = validate_route_tracks(&jsonl).expect("typed tracks must validate");
    assert!(tracks.ctl_events > 0, "no ctl events in the trace");
}
