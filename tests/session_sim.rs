//! Integration tests of full sessions over the simulated hardware:
//! heterogeneous driver pairings, bidirectional traffic, concurrent
//! senders, and timing sanity.

use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed))
        .collect()
}

/// Every (from, to) technology pairing forwards correctly through a
/// gateway — exercising all four cells of the zero-copy matrix.
#[test]
fn all_tech_pairings_forward_correctly() {
    let techs = [SimTech::Myrinet, SimTech::Sci, SimTech::FastEthernet];
    for from in techs {
        for to in techs {
            let tb = Testbed::new(3);
            let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
            let n0 = sb.network("in", tb.driver(from), &[0, 1]);
            let n1 = sb.network("out", tb.driver(to), &[1, 2]);
            sb.vchannel(
                "vc",
                &[n0, n1],
                VcOptions {
                    mtu: Some(8 * 1024),
                    ..Default::default()
                },
            );
            let ok = sb.run(move |node| {
                let vc = node.vchannel("vc");
                match node.rank().0 {
                    0 => {
                        let data = payload(100_000, 42);
                        let mut w = vc.begin_packing(NodeId(2)).unwrap();
                        w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                        w.end_packing().unwrap();
                        true
                    }
                    1 => true,
                    2 => {
                        let mut buf = vec![0u8; 100_000];
                        let mut r = vc.begin_unpacking().unwrap();
                        r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                            .unwrap();
                        r.end_unpacking().unwrap();
                        buf == payload(100_000, 42)
                    }
                    _ => unreachable!(),
                }
            });
            assert!(
                ok.into_iter().all(|x| x),
                "pairing {from:?} → {to:?} failed"
            );
        }
    }
}

/// Simultaneous transfers in both directions through one gateway: the
/// engine's two direction pipelines must not interfere with correctness.
#[test]
fn bidirectional_forwarding_through_one_gateway() {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(16 * 1024),
            ..Default::default()
        },
    );
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let out = payload(500_000, 1);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&out, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                let mut buf = vec![0u8; 300_000];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(300_000, 2)
            }
            1 => true,
            2 => {
                let out = payload(300_000, 2);
                let mut w = vc.begin_packing(NodeId(0)).unwrap();
                w.pack(&out, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                let mut buf = vec![0u8; 500_000];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(500_000, 1)
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Two senders on the source cluster race messages toward one receiver
/// through the same gateway; both messages must arrive intact (the engine
/// serializes whole messages per next-hop conduit).
#[test]
fn two_concurrent_senders_one_gateway() {
    let tb = Testbed::new(4);
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1, 2]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(4 * 1024),
            ..Default::default()
        },
    );
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            rank @ (0 | 1) => {
                let data = payload(200_000, rank as u8);
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            2 => true,
            3 => {
                let mut seen = [false; 2];
                for _ in 0..2 {
                    let mut r = vc.begin_unpacking().unwrap();
                    let src = r.source();
                    let mut buf = vec![0u8; 200_000];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(200_000, src.0 as u8), "message from {src}");
                    seen[src.index()] = true;
                }
                seen == [true, true]
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Virtual time must be busy exactly as long as the transfer: a no-op
/// session takes zero virtual time.
#[test]
fn idle_session_takes_no_virtual_time() {
    let tb = Testbed::new(2);
    let clock = tb.clock().clone();
    let mut sb = SessionBuilder::new(2).with_runtime(tb.runtime());
    let net = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    sb.channel("ch", net);
    sb.run(|_| ());
    assert_eq!(clock.now().as_nanos(), 0);
}

/// Two independent virtual channels over the same networks do not
/// interfere; each keeps its own ordering domain.
#[test]
fn two_virtual_channels_coexist() {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[1, 2]);
    sb.vchannel("vc-a", &[n0, n1], VcOptions::default());
    sb.vchannel("vc-b", &[n0, n1], VcOptions::default());
    let ok = sb.run(|node| match node.rank().0 {
        0 => {
            for (name, seed) in [("vc-a", 7u8), ("vc-b", 9u8)] {
                let vc = node.vchannel(name);
                let data = payload(50_000, seed);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
            true
        }
        1 => true,
        2 => {
            for (name, seed) in [("vc-a", 7u8), ("vc-b", 9u8)] {
                let vc = node.vchannel(name);
                let mut buf = vec![0u8; 50_000];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(50_000, seed), "channel {name}");
            }
            true
        }
        _ => unreachable!(),
    });
    assert!(ok.into_iter().all(|x| x));
}

/// The session barrier works under the simulated runtime too.
#[test]
fn sim_barrier_and_timestamps_are_consistent() {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let net = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    sb.channel("ch", net);
    let stamps = sb.run(|node| {
        let rt = node.runtime().clone();
        // Desynchronize with rank-dependent virtual work, then re-sync.
        rt.charge_overhead(node.rank().0 as u64 * 1000);
        node.barrier().wait();
        rt.now_nanos()
    });
    // Everyone leaves the barrier at the same virtual instant.
    assert_eq!(stamps[0], stamps[1]);
    assert_eq!(stamps[1], stamps[2]);
    assert_eq!(stamps[0], 2000, "barrier exit at the slowest participant");
}
