//! Tracing over the real shared-memory driver: the exported JSONL must
//! parse against the schema, and the per-channel byte counters must equal
//! the bytes the application actually packed (plain channels add no
//! framing, so wire bytes == payload bytes).

use mad_shm::ShmDriver;
use madeleine::mad_trace::schema::validate_jsonl;
use madeleine::mad_trace::Tracer;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

#[test]
fn shm_counters_match_bytes_packed() {
    const SIZES: [usize; 3] = [4096, 128, 1000];
    let total: usize = SIZES.iter().sum();

    let tracer = Tracer::new();
    let mut sb = SessionBuilder::new(2).with_tracer(tracer.clone());
    let rt = sb.runtime().clone();
    let net = sb.network("shm0", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let ok = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            for (i, &len) in SIZES.iter().enumerate() {
                let data = vec![i as u8; len];
                let mut w = ch.begin_packing(NodeId(1)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
            true
        } else {
            for (i, &len) in SIZES.iter().enumerate() {
                let mut buf = vec![0u8; len];
                let mut r = ch.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == i as u8));
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));

    let snap = tracer.snapshot();
    assert_eq!(snap.domain, "mono");

    // The JSONL export is schema-valid.
    let jsonl = snap.to_jsonl_string();
    let summary = validate_jsonl(&jsonl).expect("exported JSONL must validate");
    assert!(summary.spans > 0, "hot paths should have recorded spans");
    assert!(summary.counts > 0, "channel counters should have flushed");

    // Plain channels put payload bytes on the wire verbatim, so the
    // flushed per-channel counters equal the bytes packed/unpacked.
    let totals = snap.counter_totals();
    let get = |track: &str, name: &str| -> i64 {
        *totals
            .get(&(track.to_string(), "channel".to_string(), name.to_string()))
            .unwrap_or_else(|| panic!("missing counter {track}/{name}"))
    };
    assert_eq!(get("ch:ch@0", "bytes_sent"), total as i64);
    assert_eq!(get("ch:ch@1", "bytes_recv"), total as i64);
    assert_eq!(get("ch:ch@0", "packets_sent"), SIZES.len() as i64);
    assert_eq!(get("ch:ch@1", "packets_recv"), SIZES.len() as i64);
}

#[test]
fn shm_gateway_session_emits_valid_jsonl() {
    const MSG: usize = 200_000;

    let tracer = Tracer::new();
    let mut sb = SessionBuilder::new(3).with_tracer(tracer.clone());
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(4096),
            ..Default::default()
        },
    );
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let data = vec![0xABu8; MSG];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut buf = vec![0u8; MSG];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf.iter().all(|&b| b == 0xAB)
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));

    let snap = tracer.snapshot();
    let jsonl = snap.to_jsonl_string();
    validate_jsonl(&jsonl).expect("gateway JSONL must validate");

    // The gateway engine recorded its relay activity — on the polling
    // thread's track in threaded mode, on the node's reactor-worker
    // tracks in reactor mode.
    let gw_spans: usize = snap
        .threads
        .iter()
        .filter(|t| t.name == "gw1-vc-in-net0" || t.name.starts_with("gw1-reactor-w"))
        .map(|t| snap.spans(&t.name, "gw").len())
        .sum();
    assert!(gw_spans > 0, "gateway engine should record gw spans");
    // And the end-of-run gateway totals were flushed as counters.
    let totals = snap.counter_totals();
    let has_gw_counter = totals.keys().any(|(track, cat, name)| {
        track.starts_with("gw:vc@1") && cat == "gateway" && name == "messages"
    });
    assert!(has_gw_counter, "gateway totals should flush to the tracer");

    // The Chrome export is well-formed JSON too.
    let chrome = snap.to_chrome_string();
    madeleine::mad_trace::schema::parse(&chrome).expect("chrome export must parse");
}
