//! Property-based end-to-end tests: arbitrary message shapes must survive
//! any path through the stack bit-for-bit. Driven by the deterministic
//! `mad_util::prop` harness; case counts stay modest because every case
//! spins up a full multi-threaded session.

use mad_shm::ShmDriver;
use mad_util::prop::{self, Config, Shrink};
use mad_util::rng::Rng;
use mad_util::{prop_assert, prop_require};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// A packed block: payload plus its flag pair.
#[derive(Debug, Clone)]
struct Block {
    data: Vec<u8>,
    send: SendMode,
    recv: RecvMode,
}

impl Shrink for Block {
    /// Shrink the payload only; the flag pair is part of what the case is
    /// exercising, so minimization keeps it fixed.
    fn shrink(&self) -> Vec<Self> {
        self.data
            .shrink()
            .into_iter()
            .map(|data| Block {
                data,
                send: self.send,
                recv: self.recv,
            })
            .collect()
    }
}

fn gen_block(rng: &mut Rng, max_len: usize) -> Block {
    let send = *rng
        .choose(&[SendMode::Safer, SendMode::Later, SendMode::Cheaper])
        .unwrap();
    let recv = *rng.choose(&[RecvMode::Express, RecvMode::Cheaper]).unwrap();
    Block {
        data: prop::bytes(rng, 0..max_len),
        send,
        recv,
    }
}

fn gen_message(rng: &mut Rng) -> Vec<Block> {
    prop::vec_of(rng, 1..8, |r| gen_block(r, 5000))
}

/// Send `blocks` as one message over a plain channel and check integrity.
fn roundtrip_plain(blocks: &[Block]) -> Result<(), String> {
    prop_require!(!blocks.is_empty());
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let blocks = blocks.to_vec();
    let blocks2 = blocks.clone();
    let ok = sb.run(move |node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            for b in &blocks {
                w.pack(&b.data, b.send, b.recv).unwrap();
            }
            w.end_packing().unwrap();
            true
        } else {
            let mut r = ch.begin_unpacking().unwrap();
            let mut got = Vec::new();
            for b in &blocks2 {
                let mut buf = vec![0u8; b.data.len()];
                r.unpack(&mut buf, b.send, b.recv).unwrap();
                got.push(buf);
            }
            r.end_unpacking().unwrap();
            got.iter().zip(&blocks2).all(|(g, b)| g == &b.data)
        }
    });
    prop_assert!(ok.into_iter().all(|x| x), "payload corrupted on plain path");
    Ok(())
}

/// Send `blocks` through a gateway (forwarded path) and check integrity.
fn roundtrip_forwarded(blocks: &[Block], mtu: usize) -> Result<(), String> {
    prop_require!(!blocks.is_empty() && mtu >= 64);
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(mtu),
            ..Default::default()
        },
    );
    let blocks = blocks.to_vec();
    let blocks2 = blocks.clone();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                for b in &blocks {
                    w.pack(&b.data, b.send, b.recv).unwrap();
                }
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                let mut got = Vec::new();
                for b in &blocks2 {
                    let mut buf = vec![0u8; b.data.len()];
                    r.unpack(&mut buf, b.send, b.recv).unwrap();
                    got.push(buf);
                }
                r.end_unpacking().unwrap();
                got.iter().zip(&blocks2).all(|(g, b)| g == &b.data)
            }
            _ => unreachable!(),
        }
    });
    prop_assert!(
        ok.into_iter().all(|x| x),
        "payload corrupted through the gateway (mtu {mtu})"
    );
    Ok(())
}

#[test]
fn plain_channel_round_trips_any_message() {
    // Each case spins up a full session with threads: keep the count modest.
    prop::check(
        "plain_channel_round_trips_any_message",
        &Config::with_cases(24),
        gen_message,
        |blocks| roundtrip_plain(blocks),
    );
}

#[test]
fn forwarded_path_round_trips_any_message() {
    prop::check(
        "forwarded_path_round_trips_any_message",
        &Config::with_cases(24),
        |rng| {
            let mtu = *rng.choose(&[64usize, 257, 1024, 16 * 1024]).unwrap();
            (gen_message(rng), mtu)
        },
        |(blocks, mtu)| roundtrip_forwarded(blocks, *mtu),
    );
}

/// Forwarded transfers over the *simulated* hardware: integrity must hold
/// for any technology pairing, MTU, and payload, and virtual timing must
/// be strictly positive and reproducible.
mod simulated {
    use super::*;
    use mad_sim::{SimTech, Testbed};

    fn run_once(from: SimTech, to: SimTech, mtu: usize, payload: Vec<u8>) -> u64 {
        let tb = Testbed::new(3);
        let clock = tb.clock().clone();
        let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
        let n0 = sb.network("in", tb.driver(from), &[0, 1]);
        let n1 = sb.network("out", tb.driver(to), &[1, 2]);
        sb.vchannel(
            "vc",
            &[n0, n1],
            VcOptions {
                mtu: Some(mtu),
                ..Default::default()
            },
        );
        let expect = payload.clone();
        let ok = sb.run(move |node| match node.rank().0 {
            0 => {
                let mut w = node.vchannel("vc").begin_packing(NodeId(2)).unwrap();
                w.pack(&payload, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut buf = vec![0u8; expect.len()];
                let mut r = node.vchannel("vc").begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == expect
            }
            _ => unreachable!(),
        });
        assert!(ok.into_iter().all(|x| x), "simulated payload corrupted");
        clock.now().as_nanos()
    }

    #[test]
    fn simulated_forwarding_integrity_and_determinism() {
        const TECHS: [SimTech; 4] = [
            SimTech::Myrinet,
            SimTech::Sci,
            SimTech::FastEthernet,
            SimTech::Sbp,
        ];
        prop::check(
            "simulated_forwarding_integrity_and_determinism",
            &Config::with_cases(10),
            |rng| {
                (
                    rng.gen_range(0usize..4),
                    rng.gen_range(0usize..4),
                    *rng.choose(&[512usize, 4096, 16 * 1024]).unwrap(),
                    prop::bytes(rng, 1..20_000),
                )
            },
            |(from_i, to_i, mtu, payload)| {
                prop_require!(*from_i < 4 && *to_i < 4 && *mtu >= 512 && !payload.is_empty());
                let (from, to) = (TECHS[*from_i], TECHS[*to_i]);
                let t1 = run_once(from, to, *mtu, payload.clone());
                prop_assert!(t1 > 0, "a transfer must take virtual time");
                let t2 = run_once(from, to, *mtu, payload.clone());
                prop_assert!(t1 == t2, "virtual timing must be reproducible");
                Ok(())
            },
        );
    }
}
