//! Property-based end-to-end tests: arbitrary message shapes must survive
//! any path through the stack bit-for-bit.

use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use mad_shm::ShmDriver;
use proptest::prelude::*;

/// A packed block: length plus its flag pair.
#[derive(Debug, Clone)]
struct Block {
    data: Vec<u8>,
    send: SendMode,
    recv: RecvMode,
}

fn block_strategy(max_len: usize) -> impl Strategy<Value = Block> {
    (
        proptest::collection::vec(any::<u8>(), 0..max_len),
        prop_oneof![
            Just(SendMode::Safer),
            Just(SendMode::Later),
            Just(SendMode::Cheaper)
        ],
        prop_oneof![Just(RecvMode::Express), Just(RecvMode::Cheaper)],
    )
        .prop_map(|(data, send, recv)| Block { data, send, recv })
}

fn message_strategy() -> impl Strategy<Value = Vec<Block>> {
    proptest::collection::vec(block_strategy(5000), 1..8)
}

/// Send `blocks` as one message over a plain channel and check integrity.
fn roundtrip_plain(blocks: Vec<Block>) {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let blocks2 = blocks.clone();
    let ok = sb.run(move |node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            for b in &blocks {
                w.pack(&b.data, b.send, b.recv).unwrap();
            }
            w.end_packing().unwrap();
            true
        } else {
            let mut r = ch.begin_unpacking().unwrap();
            let mut got = Vec::new();
            for b in &blocks2 {
                let mut buf = vec![0u8; b.data.len()];
                r.unpack(&mut buf, b.send, b.recv).unwrap();
                got.push(buf);
            }
            r.end_unpacking().unwrap();
            got.iter().zip(&blocks2).all(|(g, b)| g == &b.data)
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Send `blocks` through a gateway (forwarded path) and check integrity.
fn roundtrip_forwarded(blocks: Vec<Block>, mtu: usize) {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(mtu),
            ..Default::default()
        },
    );
    let blocks2 = blocks.clone();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                for b in &blocks {
                    w.pack(&b.data, b.send, b.recv).unwrap();
                }
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                let mut got = Vec::new();
                for b in &blocks2 {
                    let mut buf = vec![0u8; b.data.len()];
                    r.unpack(&mut buf, b.send, b.recv).unwrap();
                    got.push(buf);
                }
                r.end_unpacking().unwrap();
                got.iter().zip(&blocks2).all(|(g, b)| g == &b.data)
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up a full session with threads
        .. ProptestConfig::default()
    })]

    #[test]
    fn plain_channel_round_trips_any_message(blocks in message_strategy()) {
        roundtrip_plain(blocks);
    }

    #[test]
    fn forwarded_path_round_trips_any_message(
        blocks in message_strategy(),
        mtu in prop_oneof![Just(64usize), Just(257), Just(1024), Just(16 * 1024)],
    ) {
        roundtrip_forwarded(blocks, mtu);
    }
}

/// Forwarded transfers over the *simulated* hardware: integrity must hold
/// for any technology pairing, MTU, and payload, and virtual timing must
/// be strictly positive and reproducible.
mod simulated {
    use super::*;
    use mad_sim::{SimTech, Testbed};

    fn run_once(from: SimTech, to: SimTech, mtu: usize, payload: Vec<u8>) -> u64 {
        let tb = Testbed::new(3);
        let clock = tb.clock().clone();
        let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
        let n0 = sb.network("in", tb.driver(from), &[0, 1]);
        let n1 = sb.network("out", tb.driver(to), &[1, 2]);
        sb.vchannel(
            "vc",
            &[n0, n1],
            VcOptions {
                mtu: Some(mtu),
                ..Default::default()
            },
        );
        let expect = payload.clone();
        let ok = sb.run(move |node| match node.rank().0 {
            0 => {
                let mut w = node.vchannel("vc").begin_packing(NodeId(2)).unwrap();
                w.pack(&payload, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut buf = vec![0u8; expect.len()];
                let mut r = node.vchannel("vc").begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper).unwrap();
                r.end_unpacking().unwrap();
                buf == expect
            }
            _ => unreachable!(),
        });
        assert!(ok.into_iter().all(|x| x));
        clock.now().as_nanos()
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 10,
            .. ProptestConfig::default()
        })]

        #[test]
        fn simulated_forwarding_integrity_and_determinism(
            from_i in 0usize..4,
            to_i in 0usize..4,
            mtu in prop_oneof![Just(512usize), Just(4096), Just(16 * 1024)],
            payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        ) {
            let techs = [
                SimTech::Myrinet,
                SimTech::Sci,
                SimTech::FastEthernet,
                SimTech::Sbp,
            ];
            let (from, to) = (techs[from_i], techs[to_i]);
            let t1 = run_once(from, to, mtu, payload.clone());
            prop_assert!(t1 > 0, "a transfer must take virtual time");
            let t2 = run_once(from, to, mtu, payload);
            prop_assert_eq!(t1, t2, "virtual timing must be reproducible");
        }
    }
}
