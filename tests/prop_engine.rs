//! Engine-equivalence property: the reactor engine must forward exactly
//! the bytes the threaded engine forwards. Every case generates a random
//! chained topology, gateway configuration, and message batch, runs it
//! once under each engine core, and compares the byte streams delivered
//! to every receiver — plus both against the sent payloads, so a bug that
//! corrupts both engines identically still fails.
//!
//! The same harness also covers the kind-12 protocol switch: cases with a
//! nonzero `rendezvous_threshold` re-run under both engines with the
//! threshold forced to 0 (the eager-only ablation), and all four
//! deliveries must be byte-identical to the sent payloads. A seeded soak
//! pins the threshold mid-payload-distribution so eager and rendezvous
//! streams cross the same gateways back to back.

use mad_shm::ShmDriver;
use mad_util::prop::{self, Config, Shrink};
use mad_util::rng::Rng;
use mad_util::{prop_assert, prop_require};
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// One generated scenario: a chain of `hops + 1` shm networks (so `hops`
/// gateways in sequence), tuned by randomized engine knobs, carrying a
/// batch of end-to-end messages.
#[derive(Debug, Clone)]
struct Scenario {
    hops: usize,
    mtu: usize,
    pipeline_depth: usize,
    max_batch: usize,
    credit_window: Option<u32>,
    rendezvous_threshold: usize,
    messages: Vec<Vec<u8>>,
}

impl Shrink for Scenario {
    /// Shrink the payloads only; the topology and knobs are the point of
    /// the case.
    fn shrink(&self) -> Vec<Self> {
        self.messages
            .shrink()
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|messages| Scenario {
                messages,
                ..self.clone()
            })
            .collect()
    }
}

fn gen_scenario(rng: &mut Rng) -> Scenario {
    Scenario {
        hops: *rng.choose(&[1usize, 2]).unwrap(),
        mtu: *rng.choose(&[256usize, 1024, 8 * 1024]).unwrap(),
        pipeline_depth: *rng.choose(&[1usize, 2, 3]).unwrap(),
        max_batch: *rng.choose(&[1usize, 4]).unwrap(),
        credit_window: *rng.choose(&[None, Some(4u32)]).unwrap(),
        // 0 keeps everything eager; the nonzero thresholds sit below and
        // inside the payload distribution so bulk messages go rendezvous.
        rendezvous_threshold: *rng.choose(&[0usize, 2048, 16 * 1024]).unwrap(),
        messages: prop::vec_of(rng, 1..5, |r| prop::bytes(r, 0..40_000)),
    }
}

/// Run the scenario under `engine` and return the bytes each receiver-side
/// unpack produced, in order, plus the kind-12 CTS count of the first
/// gateway (0 when every stream stayed eager).
fn run_engine(sc: &Scenario, engine: EngineKind) -> (Vec<Vec<u8>>, u64) {
    let n = sc.hops as u32 + 2; // chain 0-1-…-(n-1), gateways in between
    let mut sb = SessionBuilder::new(n);
    let rt = sb.runtime().clone();
    let nets: Vec<_> = (0..=sc.hops)
        .map(|i| {
            sb.network(
                format!("net{i}"),
                ShmDriver::new(rt.clone()),
                &[i as u32, i as u32 + 1],
            )
        })
        .collect();
    sb.vchannel(
        "vc",
        &nets,
        VcOptions {
            mtu: Some(sc.mtu),
            gateway: GatewayConfig {
                engine,
                pipeline_depth: sc.pipeline_depth,
                max_batch: sc.max_batch,
                credit_window: sc.credit_window,
                rendezvous_threshold: sc.rendezvous_threshold,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let last = NodeId(n - 1);
    let messages = sc.messages.clone();
    let (received, gw_stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        if node.rank() == NodeId(0) {
            for m in &messages {
                let mut w = vc.begin_packing(last).unwrap();
                w.pack(m, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
            Vec::new()
        } else if node.rank() == last {
            let mut got = Vec::new();
            for m in &messages {
                let mut buf = vec![0u8; m.len()];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                got.push(buf);
            }
            got
        } else {
            Vec::new()
        }
    });
    let cts: u64 = gw_stats.iter().map(|(_, _, st)| st.totals().cts_sent).sum();
    (received.into_iter().flatten().collect(), cts)
}

fn engines_agree(sc: &Scenario) -> Result<(), String> {
    prop_require!(!sc.messages.is_empty());
    let (threaded, threaded_cts) = run_engine(sc, EngineKind::Threaded);
    let (reactor, reactor_cts) = run_engine(sc, EngineKind::Reactor);
    prop_assert!(
        threaded == sc.messages,
        "threaded engine corrupted the stream ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    prop_assert!(
        reactor == sc.messages,
        "reactor engine corrupted the stream ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    prop_assert!(
        threaded == reactor,
        "engines disagree on delivered bytes ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    // The protocol switch must actually engage: any bulk message over an
    // enabled threshold runs the handshake on the first gateway.
    let bulk = sc
        .messages
        .iter()
        .filter(|m| sc.rendezvous_threshold > 0 && m.len() >= sc.rendezvous_threshold)
        .count() as u64;
    if sc.credit_window.is_some() {
        prop_assert!(
            threaded_cts >= bulk && reactor_cts >= bulk,
            "bulk messages stayed eager ({bulk} over threshold {}, \
             {threaded_cts} threaded / {reactor_cts} reactor CTS)",
            sc.rendezvous_threshold
        );
    } else {
        prop_assert!(
            threaded_cts == 0 && reactor_cts == 0,
            "rendezvous ran without flow control"
        );
    }
    // Eager/rendezvous equivalence: the same traffic with the protocol
    // switch disabled must deliver the same bytes under both engines.
    if sc.rendezvous_threshold > 0 && sc.credit_window.is_some() {
        let eager = Scenario {
            rendezvous_threshold: 0,
            ..sc.clone()
        };
        for engine in [EngineKind::Threaded, EngineKind::Reactor] {
            let (got, eager_cts) = run_engine(&eager, engine);
            prop_assert!(
                got == threaded,
                "eager ablation disagrees with rendezvous delivery \
                 ({engine:?}, {} hops, mtu {}, threshold {})",
                sc.hops,
                sc.mtu,
                sc.rendezvous_threshold
            );
            prop_assert!(eager_cts == 0, "threshold 0 must be eager-only");
        }
    }
    Ok(())
}

#[test]
fn engines_forward_byte_identical_streams() {
    // Every case runs TWO full multi-threaded sessions: keep counts low.
    prop::check(
        "engines_forward_byte_identical_streams",
        &Config::with_cases(12),
        gen_scenario,
        engines_agree,
    );
}

/// Seeded mixed-protocol soak: the rendezvous threshold sits in the
/// middle of the payload distribution, so small (eager) and bulk
/// (rendezvous) streams cross the same gateway chain back to back under
/// both engine cores. Override the seed with `MAD_SOAK_SEED` to replay a
/// specific run.
#[test]
fn mixed_protocol_soak_delivers_exact_bytes() {
    let seed = std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20010914u64);
    let mut rng = Rng::new(seed);
    let sc = Scenario {
        hops: 2,
        mtu: 1024,
        pipeline_depth: 2,
        max_batch: 4,
        credit_window: Some(4),
        rendezvous_threshold: 8 * 1024,
        messages: prop::vec_of(&mut rng, 24..25, |r| prop::bytes(r, 0..32_000)),
    };
    let (small, bulk): (Vec<_>, Vec<_>) = sc
        .messages
        .iter()
        .partition(|m| m.len() < sc.rendezvous_threshold);
    assert!(
        !small.is_empty() && !bulk.is_empty(),
        "seed must yield traffic on both sides of the threshold \
         ({} eager, {} rendezvous)",
        small.len(),
        bulk.len()
    );
    for engine in [EngineKind::Threaded, EngineKind::Reactor] {
        let (got, cts) = run_engine(&sc, engine);
        assert_eq!(
            got, sc.messages,
            "mixed-protocol soak corrupted the stream under {engine:?}"
        );
        assert!(
            cts >= bulk.len() as u64,
            "only {cts} CTS for {} bulk messages under {engine:?}",
            bulk.len()
        );
    }
}
