//! Engine-equivalence property: the reactor engine must forward exactly
//! the bytes the threaded engine forwards. Every case generates a random
//! chained topology, gateway configuration, and message batch, runs it
//! once under each engine core, and compares the byte streams delivered
//! to every receiver — plus both against the sent payloads, so a bug that
//! corrupts both engines identically still fails.

use mad_shm::ShmDriver;
use mad_util::prop::{self, Config, Shrink};
use mad_util::rng::Rng;
use mad_util::{prop_assert, prop_require};
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// One generated scenario: a chain of `hops + 1` shm networks (so `hops`
/// gateways in sequence), tuned by randomized engine knobs, carrying a
/// batch of end-to-end messages.
#[derive(Debug, Clone)]
struct Scenario {
    hops: usize,
    mtu: usize,
    pipeline_depth: usize,
    max_batch: usize,
    credit_window: Option<u32>,
    messages: Vec<Vec<u8>>,
}

impl Shrink for Scenario {
    /// Shrink the payloads only; the topology and knobs are the point of
    /// the case.
    fn shrink(&self) -> Vec<Self> {
        self.messages
            .shrink()
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|messages| Scenario {
                messages,
                ..self.clone()
            })
            .collect()
    }
}

fn gen_scenario(rng: &mut Rng) -> Scenario {
    Scenario {
        hops: *rng.choose(&[1usize, 2]).unwrap(),
        mtu: *rng.choose(&[256usize, 1024, 8 * 1024]).unwrap(),
        pipeline_depth: *rng.choose(&[1usize, 2, 3]).unwrap(),
        max_batch: *rng.choose(&[1usize, 4]).unwrap(),
        credit_window: *rng.choose(&[None, Some(4u32)]).unwrap(),
        messages: prop::vec_of(rng, 1..5, |r| prop::bytes(r, 0..40_000)),
    }
}

/// Run the scenario under `engine` and return the bytes each receiver-side
/// unpack produced, in order.
fn run_engine(sc: &Scenario, engine: EngineKind) -> Vec<Vec<u8>> {
    let n = sc.hops as u32 + 2; // chain 0-1-…-(n-1), gateways in between
    let mut sb = SessionBuilder::new(n);
    let rt = sb.runtime().clone();
    let nets: Vec<_> = (0..=sc.hops)
        .map(|i| {
            sb.network(
                format!("net{i}"),
                ShmDriver::new(rt.clone()),
                &[i as u32, i as u32 + 1],
            )
        })
        .collect();
    sb.vchannel(
        "vc",
        &nets,
        VcOptions {
            mtu: Some(sc.mtu),
            gateway: GatewayConfig {
                engine,
                pipeline_depth: sc.pipeline_depth,
                max_batch: sc.max_batch,
                credit_window: sc.credit_window,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let last = NodeId(n - 1);
    let messages = sc.messages.clone();
    let received = sb.run(move |node| {
        let vc = node.vchannel("vc");
        if node.rank() == NodeId(0) {
            for m in &messages {
                let mut w = vc.begin_packing(last).unwrap();
                w.pack(m, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
            Vec::new()
        } else if node.rank() == last {
            let mut got = Vec::new();
            for m in &messages {
                let mut buf = vec![0u8; m.len()];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                got.push(buf);
            }
            got
        } else {
            Vec::new()
        }
    });
    received.into_iter().flatten().collect()
}

fn engines_agree(sc: &Scenario) -> Result<(), String> {
    prop_require!(!sc.messages.is_empty());
    let threaded = run_engine(sc, EngineKind::Threaded);
    let reactor = run_engine(sc, EngineKind::Reactor);
    prop_assert!(
        threaded == sc.messages,
        "threaded engine corrupted the stream ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    prop_assert!(
        reactor == sc.messages,
        "reactor engine corrupted the stream ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    prop_assert!(
        threaded == reactor,
        "engines disagree on delivered bytes ({} hops, mtu {})",
        sc.hops,
        sc.mtu
    );
    Ok(())
}

#[test]
fn engines_forward_byte_identical_streams() {
    // Every case runs TWO full multi-threaded sessions: keep counts low.
    prop::check(
        "engines_forward_byte_identical_streams",
        &Config::with_cases(12),
        gen_scenario,
        engines_agree,
    );
}
