//! Property tests of the version-2 GTM stream layer: fragmenting any mix
//! of messages, interleaving their packets in any order, and reassembling
//! through [`StreamAssembler`] must be the identity — for arbitrary block
//! contents, MTUs, flags, and interleave schedules.

use mad_util::prop::{self, Config};
use mad_util::{prop_assert, prop_assert_eq, prop_require};
use madeleine::gtm::{self, GtmHeader, GtmPartDesc, StreamAssembler, StreamItem, StreamTag};
use madeleine::{NodeId, RecvMode, SendMode};

/// One generated stream: tag fields, MTU, direct flag, and its blocks
/// (bytes plus flag selectors).
type GenStream = (u32, u32, u32, bool, Vec<(Vec<u8>, u32, u32)>);

/// A case: streams plus an interleave schedule (consumed round-robin-ish).
type GenCase = (Vec<GenStream>, Vec<u32>);

fn send_mode(sel: u32) -> SendMode {
    match sel % 3 {
        0 => SendMode::Safer,
        1 => SendMode::Later,
        _ => SendMode::Cheaper,
    }
}

fn recv_mode(sel: u32) -> RecvMode {
    match sel % 2 {
        0 => RecvMode::Express,
        _ => RecvMode::Cheaper,
    }
}

/// Encode a stream exactly the way `GtmWriter` does, as a packet list.
fn encode_stream(
    tag: &StreamTag,
    mtu: u32,
    direct: bool,
    blocks: &[(Vec<u8>, u32, u32)],
) -> Vec<Vec<u8>> {
    let mut pkts = vec![gtm::encode_header(&GtmHeader::new(*tag, mtu, direct))];
    for (data, s, r) in blocks {
        pkts.push(gtm::encode_part(
            tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send: send_mode(*s),
                recv: recv_mode(*r),
            },
        ));
        for chunk in data.chunks(mtu as usize) {
            let mut frag = gtm::frag_prelude(tag).to_vec();
            frag.extend_from_slice(chunk);
            pkts.push(frag);
        }
    }
    pkts.push(gtm::encode_end(tag));
    pkts
}

fn interleave_identity(case: &GenCase) -> Result<(), String> {
    let (streams, schedule) = case;
    // Stream keys must be distinct or the mix is ill-formed by contract.
    let mut keys: Vec<_> = streams
        .iter()
        .map(|(src, _dest, msg_id, ..)| (*src, *msg_id))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    prop_require!(keys.len() == streams.len());

    let tags: Vec<StreamTag> = streams
        .iter()
        .map(|&(src, dest, msg_id, ..)| StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        })
        .collect();
    let mut queues: Vec<std::collections::VecDeque<Vec<u8>>> = streams
        .iter()
        .zip(&tags)
        .map(|((_, _, _, direct, blocks), tag)| {
            let mtu = 1 + (tag.msg_id % 64); // small MTUs stress chunking
            encode_stream(tag, mtu, *direct, blocks).into()
        })
        .collect();

    // Interleave: each schedule entry picks among the still-nonempty
    // queues; leftovers drain in stream order.
    let mut asm = StreamAssembler::new();
    let feed = |pkt: Vec<u8>, asm: &mut StreamAssembler| -> Result<(), String> {
        asm.push_packet(pkt).map(|_| ()).map_err(|e| e.to_string())
    };
    for &pick in schedule {
        let nonempty: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            break;
        }
        let q = nonempty[pick as usize % nonempty.len()];
        let pkt = queues[q].pop_front().unwrap();
        feed(pkt, &mut asm)?;
    }
    for q in &mut queues {
        while let Some(pkt) = q.pop_front() {
            feed(pkt, &mut asm)?;
        }
    }

    // Reassemble each stream and compare with the original.
    let mut reassembled = 0usize;
    while let Some(key) = asm.pop_ready() {
        let idx = tags.iter().position(|t| t.key() == key).unwrap();
        reassembled += 1;
        let (_, _, _, direct, blocks) = &streams[idx];
        let header = asm.header(key).expect("ready stream has a header");
        prop_assert_eq!(header.tag, tags[idx]);
        prop_assert_eq!(header.direct, *direct);
        for (data, s, r) in blocks {
            match asm.next_item(key) {
                Some(StreamItem::Part(d)) => {
                    prop_assert_eq!(d.len, data.len() as u64);
                    prop_assert_eq!(d.send, send_mode(*s));
                    prop_assert_eq!(d.recv, recv_mode(*r));
                }
                other => return Err(format!("expected part, got {other:?}")),
            }
            let mut got = Vec::new();
            while got.len() < data.len() {
                match asm.next_item(key) {
                    Some(StreamItem::Frag(pkt)) => got.extend_from_slice(gtm::frag_payload(&pkt)),
                    other => return Err(format!("expected fragment, got {other:?}")),
                }
            }
            prop_assert_eq!(&got, data, "block bytes survive interleaving");
        }
        prop_assert_eq!(asm.next_item(key), Some(StreamItem::End));
        prop_assert_eq!(asm.next_item(key), None);
        asm.finish(key);
    }
    prop_assert!(asm.is_idle(), "no stream state left behind");
    prop_assert_eq!(reassembled, streams.len(), "every stream came back");
    Ok(())
}

#[test]
fn fragment_interleave_reassemble_is_identity() {
    prop::check(
        "fragment_interleave_reassemble_is_identity",
        &Config::default(),
        |rng| {
            let n = rng.gen_range(1usize..5);
            let streams = (0..n)
                .map(|i| {
                    (
                        rng.gen_range(0u32..4),
                        rng.gen_range(0u32..4),
                        // Distinct-by-construction most of the time; the
                        // property discards the rare colliding mixes.
                        i as u32 * 8 + rng.gen_range(0u32..8),
                        rng.gen_range(0u32..2) == 1,
                        prop::vec_of(rng, 0..4, |r| {
                            (prop::bytes(r, 0..200), r.next_u32(), r.next_u32())
                        }),
                    )
                })
                .collect();
            let schedule = prop::vec_of(rng, 0..400, |r| r.next_u32());
            (streams, schedule)
        },
        interleave_identity,
    );
}

/// Re-frame an arbitrary packet sequence into batch trains the way a
/// gateway's forwarding thread does: consecutive runs of `1 + sizes[i] % 5`
/// packets; a run of one stays a plain packet, longer runs become one
/// batch frame.
fn frame_trains(seq: &[Vec<u8>], sizes: &[u32]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut i = 0usize;
    let mut pick = 0usize;
    while i < seq.len() {
        let n = if sizes.is_empty() {
            1
        } else {
            1 + (sizes[pick % sizes.len()] as usize % 5)
        };
        pick += 1;
        let train: Vec<&[u8]> = seq[i..seq.len().min(i + n)]
            .iter()
            .map(|p| p.as_slice())
            .collect();
        if train.len() == 1 {
            frames.push(train[0].to_vec());
        } else {
            frames.push(gtm::encode_batch(&train));
        }
        i += train.len();
    }
    frames
}

/// Drain an assembler completely into comparable per-stream transcripts.
fn drain(mut asm: StreamAssembler) -> Vec<(gtm::StreamKey, GtmHeader, Vec<StreamItem>)> {
    let mut out = Vec::new();
    while let Some(key) = asm.pop_ready() {
        let header = asm.header(key).expect("ready stream has a header");
        let mut items = Vec::new();
        while let Some(item) = asm.next_item(key) {
            items.push(item);
        }
        asm.finish(key);
        out.push((key, header, items));
    }
    out
}

/// The tentpole equivalence: any packet sequence — headers, parts,
/// fragments, ends, cancels, and (wire-level) credits, interleaved across
/// streams — means exactly the same thing after being re-framed into
/// batch trains of arbitrary sizes.
#[test]
fn batched_trains_equal_unbatched_sequence() {
    type Case = (Vec<GenStream>, Vec<u32>, Vec<u32>, Vec<u32>);
    prop::check(
        "batched_trains_equal_unbatched_sequence",
        &Config::default(),
        |rng| -> Case {
            let n = rng.gen_range(1usize..5);
            let streams = (0..n)
                .map(|i| {
                    (
                        rng.gen_range(0u32..4),
                        rng.gen_range(0u32..4),
                        i as u32 * 8 + rng.gen_range(0u32..8),
                        rng.gen_range(0u32..2) == 1, // reused as: cancel at end
                        prop::vec_of(rng, 0..4, |r| {
                            (prop::bytes(r, 0..120), r.next_u32(), r.next_u32())
                        }),
                    )
                })
                .collect();
            let schedule = prop::vec_of(rng, 0..300, |r| r.next_u32());
            let sizes = prop::vec_of(rng, 1..40, |r| r.next_u32());
            let credit_at = prop::vec_of(rng, 0..6, |r| r.next_u32());
            (streams, schedule, sizes, credit_at)
        },
        |case: &Case| -> Result<(), String> {
            let (streams, schedule, sizes, credit_at) = case;
            let mut keys: Vec<_> = streams
                .iter()
                .map(|(src, _dest, msg_id, ..)| (*src, *msg_id))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            prop_require!(keys.len() == streams.len());

            // Encode each stream, ending half of them with a cancel.
            let tags: Vec<StreamTag> = streams
                .iter()
                .map(|&(src, dest, msg_id, ..)| StreamTag {
                    src: NodeId(src),
                    dest: NodeId(dest),
                    msg_id,
                })
                .collect();
            let mut queues: Vec<std::collections::VecDeque<Vec<u8>>> = streams
                .iter()
                .zip(&tags)
                .map(|((_, _, _, cancel, blocks), tag)| {
                    let mtu = 1 + (tag.msg_id % 64);
                    let mut pkts = encode_stream(tag, mtu, false, blocks);
                    if *cancel {
                        pkts.pop();
                        pkts.push(gtm::encode_cancel(tag, gtm::CancelReason::PeerUnreachable));
                    }
                    pkts.into()
                })
                .collect();
            let mut seq: Vec<Vec<u8>> = Vec::new();
            for &pick in schedule {
                let nonempty: Vec<usize> = (0..queues.len())
                    .filter(|&i| !queues[i].is_empty())
                    .collect();
                if nonempty.is_empty() {
                    break;
                }
                let q = nonempty[pick as usize % nonempty.len()];
                seq.push(queues[q].pop_front().unwrap());
            }
            for q in &mut queues {
                while let Some(pkt) = q.pop_front() {
                    seq.push(pkt);
                }
            }

            // Wire-level equivalence, with hop-local credit packets mixed
            // in: splitting the framed trains recovers the exact byte
            // sequence, packet for packet.
            let mut wire_seq = seq.clone();
            for (i, &at) in credit_at.iter().enumerate() {
                let tag = &tags[i % tags.len()];
                let pos = at as usize % (wire_seq.len() + 1);
                wire_seq.insert(pos, gtm::encode_credit(tag, 1 + at % 7));
            }
            let mut recovered: Vec<Vec<u8>> = Vec::new();
            for frame in frame_trains(&wire_seq, sizes) {
                let (_, body) = gtm::decode_packet(&frame).map_err(|e| e.to_string())?;
                if matches!(body, gtm::PacketBody::Batch) {
                    for sub in gtm::batch_packets(&frame).map_err(|e| e.to_string())? {
                        recovered.push(sub.to_vec());
                    }
                } else {
                    recovered.push(frame);
                }
            }
            prop_assert_eq!(
                &recovered,
                &wire_seq,
                "trains split back to the same packets"
            );

            // Assembler-level equivalence (credits never reach an
            // assembler in real routing): plain feed and batched feed
            // leave identical stream transcripts.
            let mut plain = StreamAssembler::new();
            for pkt in &seq {
                plain.push_packet(pkt.clone()).map_err(|e| e.to_string())?;
            }
            let mut batched = StreamAssembler::new();
            for frame in frame_trains(&seq, sizes) {
                batched.push_packet(frame).map_err(|e| e.to_string())?;
            }
            let (a, b) = (drain(plain), drain(batched));
            prop_assert_eq!(a.len(), b.len(), "same stream count both ways");
            for ((ka, ha, ia), (kb, hb, ib)) in a.iter().zip(&b) {
                prop_assert_eq!(ka, kb);
                prop_assert_eq!(ha.tag, hb.tag);
                prop_assert_eq!(ha.mtu, hb.mtu);
                prop_assert_eq!(ia, ib, "identical item transcripts");
            }
            Ok(())
        },
    );
}

/// A degenerate but important pin: a single maximal interleave (strict
/// round-robin of three streams, MTU 1) is the identity too.
#[test]
fn strict_round_robin_three_streams() {
    let streams: Vec<GenStream> = (0..3u32)
        .map(|i| {
            (
                i,
                9,
                i,
                false,
                vec![(
                    (0..50u8).map(|b| b.wrapping_mul(3 + i as u8)).collect(),
                    i,
                    i,
                )],
            )
        })
        .collect();
    let schedule: Vec<u32> = (0..400).map(|i| i % 3).collect();
    interleave_identity(&(streams, schedule)).unwrap();
}
