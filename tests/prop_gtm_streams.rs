//! Property tests of the version-2 GTM stream layer: fragmenting any mix
//! of messages, interleaving their packets in any order, and reassembling
//! through [`StreamAssembler`] must be the identity — for arbitrary block
//! contents, MTUs, flags, and interleave schedules.

use mad_util::prop::{self, Config};
use mad_util::{prop_assert, prop_assert_eq, prop_require};
use madeleine::gtm::{self, GtmHeader, GtmPartDesc, StreamAssembler, StreamItem, StreamTag};
use madeleine::{NodeId, RecvMode, SendMode};

/// One generated stream: tag fields, MTU, direct flag, and its blocks
/// (bytes plus flag selectors).
type GenStream = (u32, u32, u32, bool, Vec<(Vec<u8>, u32, u32)>);

/// A case: streams plus an interleave schedule (consumed round-robin-ish).
type GenCase = (Vec<GenStream>, Vec<u32>);

fn send_mode(sel: u32) -> SendMode {
    match sel % 3 {
        0 => SendMode::Safer,
        1 => SendMode::Later,
        _ => SendMode::Cheaper,
    }
}

fn recv_mode(sel: u32) -> RecvMode {
    match sel % 2 {
        0 => RecvMode::Express,
        _ => RecvMode::Cheaper,
    }
}

/// Encode a stream exactly the way `GtmWriter` does, as a packet list.
fn encode_stream(
    tag: &StreamTag,
    mtu: u32,
    direct: bool,
    blocks: &[(Vec<u8>, u32, u32)],
) -> Vec<Vec<u8>> {
    let mut pkts = vec![gtm::encode_header(&GtmHeader {
        tag: *tag,
        mtu,
        direct,
    })];
    for (data, s, r) in blocks {
        pkts.push(gtm::encode_part(
            tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send: send_mode(*s),
                recv: recv_mode(*r),
            },
        ));
        for chunk in data.chunks(mtu as usize) {
            let mut frag = gtm::frag_prelude(tag).to_vec();
            frag.extend_from_slice(chunk);
            pkts.push(frag);
        }
    }
    pkts.push(gtm::encode_end(tag));
    pkts
}

fn interleave_identity(case: &GenCase) -> Result<(), String> {
    let (streams, schedule) = case;
    // Stream keys must be distinct or the mix is ill-formed by contract.
    let mut keys: Vec<_> = streams
        .iter()
        .map(|(src, _dest, msg_id, ..)| (*src, *msg_id))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    prop_require!(keys.len() == streams.len());

    let tags: Vec<StreamTag> = streams
        .iter()
        .map(|&(src, dest, msg_id, ..)| StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        })
        .collect();
    let mut queues: Vec<std::collections::VecDeque<Vec<u8>>> = streams
        .iter()
        .zip(&tags)
        .map(|((_, _, _, direct, blocks), tag)| {
            let mtu = 1 + (tag.msg_id % 64); // small MTUs stress chunking
            encode_stream(tag, mtu, *direct, blocks).into()
        })
        .collect();

    // Interleave: each schedule entry picks among the still-nonempty
    // queues; leftovers drain in stream order.
    let mut asm = StreamAssembler::new();
    let feed = |pkt: Vec<u8>, asm: &mut StreamAssembler| -> Result<(), String> {
        asm.push_packet(pkt).map(|_| ()).map_err(|e| e.to_string())
    };
    for &pick in schedule {
        let nonempty: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            break;
        }
        let q = nonempty[pick as usize % nonempty.len()];
        let pkt = queues[q].pop_front().unwrap();
        feed(pkt, &mut asm)?;
    }
    for q in &mut queues {
        while let Some(pkt) = q.pop_front() {
            feed(pkt, &mut asm)?;
        }
    }

    // Reassemble each stream and compare with the original.
    let mut reassembled = 0usize;
    while let Some(key) = asm.pop_ready() {
        let idx = tags.iter().position(|t| t.key() == key).unwrap();
        reassembled += 1;
        let (_, _, _, direct, blocks) = &streams[idx];
        let header = asm.header(key).expect("ready stream has a header");
        prop_assert_eq!(header.tag, tags[idx]);
        prop_assert_eq!(header.direct, *direct);
        for (data, s, r) in blocks {
            match asm.next_item(key) {
                Some(StreamItem::Part(d)) => {
                    prop_assert_eq!(d.len, data.len() as u64);
                    prop_assert_eq!(d.send, send_mode(*s));
                    prop_assert_eq!(d.recv, recv_mode(*r));
                }
                other => return Err(format!("expected part, got {other:?}")),
            }
            let mut got = Vec::new();
            while got.len() < data.len() {
                match asm.next_item(key) {
                    Some(StreamItem::Frag(pkt)) => got.extend_from_slice(gtm::frag_payload(&pkt)),
                    other => return Err(format!("expected fragment, got {other:?}")),
                }
            }
            prop_assert_eq!(&got, data, "block bytes survive interleaving");
        }
        prop_assert_eq!(asm.next_item(key), Some(StreamItem::End));
        prop_assert_eq!(asm.next_item(key), None);
        asm.finish(key);
    }
    prop_assert!(asm.is_idle(), "no stream state left behind");
    prop_assert_eq!(reassembled, streams.len(), "every stream came back");
    Ok(())
}

#[test]
fn fragment_interleave_reassemble_is_identity() {
    prop::check(
        "fragment_interleave_reassemble_is_identity",
        &Config::default(),
        |rng| {
            let n = rng.gen_range(1usize..5);
            let streams = (0..n)
                .map(|i| {
                    (
                        rng.gen_range(0u32..4),
                        rng.gen_range(0u32..4),
                        // Distinct-by-construction most of the time; the
                        // property discards the rare colliding mixes.
                        i as u32 * 8 + rng.gen_range(0u32..8),
                        rng.gen_range(0u32..2) == 1,
                        prop::vec_of(rng, 0..4, |r| {
                            (prop::bytes(r, 0..200), r.next_u32(), r.next_u32())
                        }),
                    )
                })
                .collect();
            let schedule = prop::vec_of(rng, 0..400, |r| r.next_u32());
            (streams, schedule)
        },
        interleave_identity,
    );
}

/// A degenerate but important pin: a single maximal interleave (strict
/// round-robin of three streams, MTU 1) is the identity too.
#[test]
fn strict_round_robin_three_streams() {
    let streams: Vec<GenStream> = (0..3u32)
        .map(|i| {
            (
                i,
                9,
                i,
                false,
                vec![(
                    (0..50u8).map(|b| b.wrapping_mul(3 + i as u8)).collect(),
                    i,
                    i,
                )],
            )
        })
        .collect();
    let schedule: Vec<u32> = (0..400).map(|i| i % 3).collect();
    interleave_identity(&(streams, schedule)).unwrap();
}
