//! Sessions over the real TCP loopback driver — including a heterogeneous
//! configuration mixing TCP and shared memory through a gateway, the
//! closest real-transport analogue of the paper's setup.

use mad_shm::ShmDriver;
use mad_tcp::TcpDriver;
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

#[test]
fn tcp_plain_channel_bulk_transfer() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("tcp", TcpDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let ok = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let data = payload(2 << 20, 5);
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            true
        } else {
            let mut buf = vec![0u8; 2 << 20];
            let mut r = ch.begin_unpacking().unwrap();
            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            buf == payload(2 << 20, 5)
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn heterogeneous_shm_to_tcp_gateway() {
    // Real transports, real gateway: shm cluster {0,1}, TCP "inter-cluster
    // link" {1,2}; messages 0→2 cross the gateway with GTM framing.
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("tcp", TcpDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(16 * 1024),
            ..Default::default()
        },
    );
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = payload(300_000, 9);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                assert!(w.is_forwarded());
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut buf = vec![0u8; 300_000];
                let mut r = vc.begin_unpacking().unwrap();
                assert!(r.is_forwarded());
                assert_eq!(r.source(), NodeId(0));
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(300_000, 9)
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Scalability smoke for the fixed-thread-budget stack: 64 virtual
/// channels share ONE gateway node in reactor mode over multiplexed TCP,
/// and the whole session stays under a hard thread bound. The threaded
/// engine alone would spawn 4 gateway threads per channel (256 here) plus
/// a reader thread per TCP conduit; the reactor + poller stack spawns a
/// handful, independent of the channel count.
#[test]
fn reactor_mode_scales_channels_on_fixed_thread_budget() {
    const CHANNELS: usize = 64;
    const MSG: usize = 2048;
    // 3 app nodes + 2 reactor workers + 2 TCP pollers (one per driver)
    // + slack for runtime-internal helpers. Far below the ~400 threads
    // the threaded stack would need.
    const THREAD_BOUND: u64 = 16;

    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("tcp0", TcpDriver::multiplexed(rt.clone()), &[0, 1]);
    let n1 = sb.network("tcp1", TcpDriver::multiplexed(rt.clone()), &[1, 2]);
    for i in 0..CHANNELS {
        sb.vchannel(
            format!("vc{i}"),
            &[n0, n1],
            VcOptions {
                mtu: Some(4096),
                gateway: GatewayConfig {
                    engine: EngineKind::Reactor,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    let ok = sb.run(|node| {
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for i in 0..CHANNELS {
                    let data = payload(MSG, i as u8);
                    let vc = node.vchannel(&format!("vc{i}"));
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => true,
            2 => {
                let mut all_ok = true;
                for i in 0..CHANNELS {
                    let vc = node.vchannel(&format!("vc{i}"));
                    let mut buf = vec![0u8; MSG];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    all_ok &= buf == payload(MSG, i as u8);
                }
                all_ok
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x), "payload corrupted");
    // Threads spawned through the runtime: app nodes, reactor workers,
    // TCP pollers — and in reactor+multiplexed mode, nothing that grows
    // with the channel count.
    let spawned = rt.threads_spawned();
    assert!(
        spawned <= THREAD_BOUND,
        "session spawned {spawned} threads for {CHANNELS} channels — \
         the fixed thread budget is broken"
    );
    // Cross-check against the kernel's view of this test process. Other
    // tests share the process, so only assert the order of magnitude: a
    // threaded-engine run of this topology would need hundreds.
    if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
        if let Some(line) = status.lines().find(|l| l.starts_with("Threads:")) {
            let os_threads: u64 = line
                .split_whitespace()
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            assert!(
                os_threads < 128,
                "process holds {os_threads} OS threads after the reactor run"
            );
        }
    }
}

#[test]
fn tcp_many_small_messages() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("tcp", TcpDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let ok = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            for i in 0..200u32 {
                let data = payload(1 + (i as usize % 100), i as u8);
                let mut w = ch.begin_packing(NodeId(1)).unwrap();
                w.pack(&data, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
            }
            true
        } else {
            for i in 0..200u32 {
                let expect = payload(1 + (i as usize % 100), i as u8);
                let mut buf = vec![0u8; expect.len()];
                let mut r = ch.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, expect, "message {i}");
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}
