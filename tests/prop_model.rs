//! Property-based tests of the model layers: packetization algebra, GTM
//! framing robustness, fluid-bus conservation, virtual-clock linearity.

use std::sync::Arc;

use madeleine::gtm;
use madeleine::plan;
use proptest::prelude::*;
use simnet::{Arbitration, FluidBus, XferClass, XferDir};
use vtime::{Clock, SimDuration};

proptest! {
    #[test]
    fn packetize_conserves_bytes_and_respects_limits(
        lens in proptest::collection::vec(0usize..10_000, 0..20),
        mtu in 1usize..5_000,
        gather in 1usize..16,
    ) {
        let pkts = plan::packetize(&lens, mtu, gather);
        // Conservation.
        let total: usize = pkts.iter().flatten().map(|s| s.len).sum();
        prop_assert_eq!(total, plan::group_bytes(&lens));
        // Per-packet limits; no empty packets; no zero segments.
        for p in &pkts {
            prop_assert!(!p.is_empty());
            prop_assert!(p.len() <= gather);
            let bytes: usize = p.iter().map(|s| s.len).sum();
            prop_assert!(bytes <= mtu);
            for s in p {
                prop_assert!(s.len > 0);
            }
        }
        // Segments cover each block contiguously, in order.
        let mut cursors = vec![0usize; lens.len()];
        for s in pkts.iter().flatten() {
            prop_assert_eq!(s.offset, cursors[s.part], "non-contiguous block coverage");
            cursors[s.part] += s.len;
        }
        for (i, &c) in cursors.iter().enumerate() {
            prop_assert_eq!(c, lens[i]);
        }
    }

    #[test]
    fn gtm_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = gtm::decode_control(&bytes); // must not panic, any outcome ok
    }

    #[test]
    fn gtm_header_round_trip(src in any::<u32>(), dest in any::<u32>(), mtu in 1u32..) {
        let h = gtm::GtmHeader {
            src: madeleine::NodeId(src),
            dest: madeleine::NodeId(dest),
            mtu,
        };
        prop_assert_eq!(
            gtm::decode_control(&gtm::encode_header(&h)).unwrap(),
            gtm::Control::Header(h)
        );
    }

    #[test]
    fn fragment_count_matches_chunks(len in 0u64..1_000_000, mtu in 1u32..100_000) {
        let n = gtm::fragment_count(len, mtu);
        // Definitionally: number of chunks of size `mtu` covering `len`.
        let expect = (0..len).step_by(mtu as usize).count() as u64;
        prop_assert_eq!(n, expect);
    }

    #[test]
    fn fluid_bus_conserves_work(
        // A handful of concurrent transfers with random sizes/classes.
        xfers in proptest::collection::vec(
            (1u64..2_000_000, any::<bool>(), any::<bool>(), 1.0e6f64..100.0e6),
            1..6,
        ),
        capacity in 10.0e6f64..200.0e6,
    ) {
        let clock = Clock::new();
        let bus = Arc::new(FluidBus::new(
            &clock,
            Arbitration {
                capacity_bps: capacity,
                duplex_efficiency: 0.9,
                pio_slowdown_under_dma: 0.1,
            },
        ));
        let setup = clock.freeze();
        let handles: Vec<_> = xfers
            .iter()
            .enumerate()
            .map(|(i, &(bytes, dma, dir_in, rate))| {
                let bus = bus.clone();
                clock.spawn(format!("x{i}"), move |a| {
                    let class = if dma { XferClass::Dma } else { XferClass::Pio };
                    let dir = if dir_in { XferDir::In } else { XferDir::Out };
                    bus.transfer(a, class, dir, bytes, rate);
                    a.now().as_secs_f64()
                })
            })
            .collect();
        drop(setup);
        let finish: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let total_bytes: u64 = xfers.iter().map(|x| x.0).sum();
        let makespan = finish.iter().cloned().fold(0.0, f64::max);
        // Work conservation: the bus cannot move bytes faster than its
        // derated capacity allows...
        prop_assert!(
            total_bytes as f64 <= capacity * makespan * 1.0001 + 1.0,
            "moved {total_bytes} bytes in {makespan}s over a {capacity} B/s bus"
        );
        // ...and every transfer is at least as slow as its own ceiling.
        for (&(bytes, _, _, rate), &t) in xfers.iter().zip(&finish) {
            prop_assert!(t * 1.0001 + 1e-9 >= bytes as f64 / rate);
        }
    }

    #[test]
    fn virtual_clock_sums_sleeps_exactly(
        sleeps in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let clock = Clock::new();
        let expect: u64 = sleeps.iter().sum();
        let h = clock.spawn("s", move |a| {
            for ns in sleeps {
                a.sleep(SimDuration::from_nanos(ns));
            }
            a.now().as_nanos()
        });
        prop_assert_eq!(h.join().unwrap(), expect);
    }

    #[test]
    fn wire_flags_survive_round_trip(s in 0u8..3, r in 0u8..2) {
        use madeleine::{RecvMode, SendMode};
        let sm = SendMode::from_wire(s).unwrap();
        let rm = RecvMode::from_wire(r).unwrap();
        prop_assert_eq!(sm.to_wire(), s);
        prop_assert_eq!(rm.to_wire(), r);
    }
}
