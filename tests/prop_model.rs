//! Property-based tests of the model layers: packetization algebra, GTM
//! framing robustness, fluid-bus conservation, virtual-clock linearity.
//!
//! Each property is a plain function over its input (so regressions can be
//! pinned as named `#[test]`s that call it directly) plus a generator
//! driven by the deterministic `mad_util::prop` harness.

use std::sync::Arc;

use mad_util::prop::{self, Config};
use mad_util::{prop_assert, prop_assert_eq, prop_require};
use madeleine::gtm;
use madeleine::mad_route;
use madeleine::plan;
use madeleine::routing;
use simnet::{Arbitration, FluidBus, XferClass, XferDir};
use vtime::{Clock, SimDuration};

// ---------------------------------------------------------- packetization

fn packetize_property(input: &(Vec<usize>, usize, usize)) -> Result<(), String> {
    let (lens, mtu, gather) = input;
    let (mtu, gather) = (*mtu, *gather);
    prop_require!(mtu >= 1 && gather >= 1);
    let pkts = plan::packetize(lens, mtu, gather);
    // Conservation.
    let total: usize = pkts.iter().flatten().map(|s| s.len).sum();
    prop_assert_eq!(total, plan::group_bytes(lens));
    // Per-packet limits; no empty packets; no zero segments.
    for p in &pkts {
        prop_assert!(!p.is_empty());
        prop_assert!(p.len() <= gather);
        let bytes: usize = p.iter().map(|s| s.len).sum();
        prop_assert!(bytes <= mtu);
        for s in p {
            prop_assert!(s.len > 0);
        }
    }
    // Segments cover each block contiguously, in order.
    let mut cursors = vec![0usize; lens.len()];
    for s in pkts.iter().flatten() {
        prop_assert_eq!(s.offset, cursors[s.part], "non-contiguous block coverage");
        cursors[s.part] += s.len;
    }
    for (i, &c) in cursors.iter().enumerate() {
        prop_assert_eq!(c, lens[i]);
    }
    Ok(())
}

#[test]
fn packetize_conserves_bytes_and_respects_limits() {
    prop::check(
        "packetize_conserves_bytes_and_respects_limits",
        &Config::default(),
        |rng| {
            (
                prop::vec_of(rng, 0..20, |r| r.gen_range(0usize..10_000)),
                rng.gen_range(1usize..5_000),
                rng.gen_range(1usize..16),
            )
        },
        packetize_property,
    );
}

// ------------------------------------------------------------ GTM framing

#[test]
fn gtm_decode_never_panics() {
    prop::check(
        "gtm_decode_never_panics",
        &Config::default(),
        |rng| prop::bytes(rng, 0..64),
        |bytes| {
            let _ = gtm::decode_packet(bytes); // must not panic, any outcome ok
            Ok(())
        },
    );
}

#[test]
fn gtm_header_round_trip() {
    prop::check(
        "gtm_header_round_trip",
        &Config::default(),
        |rng| {
            (
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.gen_range(1u32..u32::MAX),
                rng.gen_range(0u32..2) == 1,
            )
        },
        |&(src, dest, msg_id, mtu, direct)| {
            prop_require!(mtu >= 1);
            let h = gtm::GtmHeader::new(
                gtm::StreamTag {
                    src: madeleine::NodeId(src),
                    dest: madeleine::NodeId(dest),
                    msg_id,
                },
                mtu,
                direct,
            );
            prop_assert_eq!(
                gtm::decode_packet(&gtm::encode_header(&h)).unwrap(),
                (h.tag, gtm::PacketBody::Header(h))
            );
            Ok(())
        },
    );
}

#[test]
fn fragment_count_matches_chunks() {
    prop::check(
        "fragment_count_matches_chunks",
        &Config::default(),
        |rng| (rng.gen_range(0u64..1_000_000), rng.gen_range(1u32..100_000)),
        |&(len, mtu)| {
            prop_require!(mtu >= 1);
            let n = gtm::fragment_count(len, mtu);
            // Definitionally: number of chunks of size `mtu` covering `len`.
            let expect = (0..len).step_by(mtu as usize).count() as u64;
            prop_assert_eq!(n, expect);
            Ok(())
        },
    );
}

// -------------------------------------------------------------- fluid bus

/// One transfer: (bytes, is_dma, is_inbound, own rate ceiling in B/s).
type Xfer = (u64, bool, bool, f64);

fn fluid_bus_property(input: &(Vec<Xfer>, f64)) -> Result<(), String> {
    let (xfers, capacity) = input;
    let capacity = *capacity;
    prop_require!(
        !xfers.is_empty() && capacity >= 10.0e6 && xfers.iter().all(|x| x.0 >= 1 && x.3 >= 1.0e6)
    );
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: capacity,
            duplex_efficiency: 0.9,
            pio_slowdown_under_dma: 0.1,
        },
    ));
    let setup = clock.freeze();
    let handles: Vec<_> = xfers
        .iter()
        .enumerate()
        .map(|(i, &(bytes, dma, dir_in, rate))| {
            let bus = bus.clone();
            clock.spawn(format!("x{i}"), move |a| {
                let class = if dma { XferClass::Dma } else { XferClass::Pio };
                let dir = if dir_in { XferDir::In } else { XferDir::Out };
                bus.transfer(a, class, dir, bytes, rate);
                a.now().as_secs_f64()
            })
        })
        .collect();
    drop(setup);
    let finish: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total_bytes: u64 = xfers.iter().map(|x| x.0).sum();
    let makespan = finish.iter().cloned().fold(0.0, f64::max);
    // Work conservation: the bus cannot move bytes faster than its
    // derated capacity allows...
    prop_assert!(
        total_bytes as f64 <= capacity * makespan * 1.0001 + 1.0,
        "moved {total_bytes} bytes in {makespan}s over a {capacity} B/s bus"
    );
    // ...and every transfer is at least as slow as its own ceiling.
    for (&(bytes, _, _, rate), &t) in xfers.iter().zip(&finish) {
        prop_assert!(t * 1.0001 + 1e-9 >= bytes as f64 / rate);
    }
    Ok(())
}

#[test]
fn fluid_bus_conserves_work() {
    prop::check(
        "fluid_bus_conserves_work",
        &Config::default(),
        |rng| {
            (
                prop::vec_of(rng, 1..6, |r| {
                    (
                        r.gen_range(1u64..2_000_000),
                        r.bool(),
                        r.bool(),
                        r.gen_range(1.0e6f64..100.0e6),
                    )
                }),
                rng.gen_range(10.0e6f64..200.0e6),
            )
        },
        fluid_bus_property,
    );
}

/// Regression pinned from the retired `proptest-regressions` seed file:
/// three same-rate DMA transfers plus a tiny PIO and a one-byte transfer
/// once broke conservation accounting. Kept as a named case so the input
/// survives the harness change.
#[test]
fn fluid_bus_regression_mixed_dma_pio_storm() {
    fluid_bus_property(&(
        vec![
            (691_146, true, false, 72_188_650.896_901_13),
            (691_146, true, false, 71_608_024.753_219),
            (275, false, false, 1_000_000.0),
            (691_146, true, true, 73_889_677.960_916_94),
            (1, true, false, 1_000_000.0),
        ],
        130_297_805.974_057_03,
    ))
    .unwrap();
}

// ----------------------------------------------------------- virtual time

#[test]
fn virtual_clock_sums_sleeps_exactly() {
    prop::check(
        "virtual_clock_sums_sleeps_exactly",
        &Config::default(),
        |rng| prop::vec_of(rng, 0..50, |r| r.gen_range(0u64..1_000_000)),
        |sleeps| {
            let clock = Clock::new();
            let expect: u64 = sleeps.iter().sum();
            let sleeps = sleeps.clone();
            let h = clock.spawn("s", move |a| {
                for ns in sleeps {
                    a.sleep(SimDuration::from_nanos(ns));
                }
                a.now().as_nanos()
            });
            prop_assert_eq!(h.join().unwrap(), expect);
            Ok(())
        },
    );
}

// ------------------------------------------------------------ routing plane

/// The multi-path plan must agree with the legacy single-path router on
/// every topology: same reachable set, and `paths(dest)[0]` — the hop the
/// transport uses whenever it is not striping — identical to the BFS hop,
/// so a width-1 plan forwards byte-identically to the pre-multipath
/// library. Plus the plan invariants: no duplicate parallel edges, every
/// edge starts at `src`, `last` exactly for distance-1 destinations.
fn plan_matches_legacy_router_property(nets: &[(u32, Vec<u32>)]) -> Result<(), String> {
    use std::collections::BTreeSet;

    let decls: Vec<mad_route::NetworkDecl> = nets
        .iter()
        .map(|(net, members)| mad_route::NetworkDecl {
            net: *net,
            members: members.clone(),
        })
        .collect();
    let legacy_nets: Vec<routing::NetworkMembers> = nets
        .iter()
        .map(|(net, members)| routing::NetworkMembers {
            net: madeleine::NetworkId(*net),
            members: members.iter().map(|&m| madeleine::NodeId(m)).collect(),
        })
        .collect();

    let table = mad_route::compute_table(&decls);
    let nodes: BTreeSet<u32> = nets.iter().flat_map(|(_, m)| m.iter().copied()).collect();
    for &src in &nodes {
        let plan = table.plan(src);
        let legacy = routing::compute_routes(&legacy_nets, madeleine::NodeId(src));
        let plan_dests: BTreeSet<u32> = plan.destinations().collect();
        let legacy_dests: BTreeSet<u32> = legacy.destinations().map(|d| d.0).collect();
        prop_assert_eq!(plan_dests, legacy_dests, "reachable sets differ from {src}");
        for dest in plan.destinations() {
            let hop = legacy
                .hop(madeleine::NodeId(dest))
                .map_err(|e| format!("legacy lost {src} -> {dest}: {e:?}"))?;
            let primary = plan
                .primary(dest)
                .ok_or(format!("plan lost {src} -> {dest}"))?;
            prop_assert_eq!(primary.net, hop.net.0, "{src} -> {dest}: wrong net");
            prop_assert_eq!(primary.node, hop.node.0, "{src} -> {dest}: wrong node");
            prop_assert_eq!(primary.last, hop.last, "{src} -> {dest}: wrong last");
            let paths = plan.paths(dest);
            let edges: BTreeSet<(u32, u32)> = paths.iter().map(|h| (h.net, h.node)).collect();
            prop_assert_eq!(
                edges.len(),
                paths.len(),
                "{src} -> {dest}: duplicate parallel edges {paths:?}"
            );
            for h in paths {
                prop_assert_eq!(h.last, hop.last, "{src} -> {dest}: disagreeing last flags");
            }
        }
    }
    Ok(())
}

#[test]
fn route_plan_primary_matches_legacy_router() {
    prop::check(
        "route_plan_primary_matches_legacy_router",
        &Config::default(),
        |rng| {
            prop::vec_of(rng, 1..5, |r| {
                (
                    r.gen_range(0u32..6),
                    prop::vec_of(r, 0..7, |r2| r2.gen_range(0u32..10)),
                )
            })
            .into_iter()
            .enumerate()
            // Distinct network ids (duplicate decls would just shadow each
            // other identically in both routers — not interesting).
            .map(|(i, (_, m))| (i as u32, m))
            .collect::<Vec<_>>()
        },
        |nets| plan_matches_legacy_router_property(nets),
    );
}

/// Pinned case: the paper's two-parallel-gateway topology. The primary
/// must be the lowest (net, node) edge and the plan width 2.
#[test]
fn route_plan_regression_parallel_gateways() {
    let nets = vec![(0u32, vec![0u32, 1, 2]), (1u32, vec![1u32, 2, 3])];
    plan_matches_legacy_router_property(&nets).unwrap();
    let table = mad_route::compute_table(&[
        mad_route::NetworkDecl {
            net: 0,
            members: vec![0, 1, 2],
        },
        mad_route::NetworkDecl {
            net: 1,
            members: vec![1, 2, 3],
        },
    ]);
    let paths = table.plan(0).paths(3);
    assert_eq!(paths.len(), 2);
    assert_eq!((paths[0].net, paths[0].node), (0, 1));
    assert_eq!((paths[1].net, paths[1].node), (0, 2));
}

/// Per-fragment striping reassembles byte-identically: the envelopes of a
/// striped stream are dealt to random paths and delivered in any
/// order-preserving interleaving of the per-path queues (each path is a
/// FIFO conduit, but paths race each other freely); the assembler must
/// reconstruct every block exactly, then drain the per-path transport
/// ends and go idle.
fn striped_reassembly_property(input: &(Vec<Vec<u8>>, usize, usize, u64)) -> Result<(), String> {
    let (parts, mtu, paths, seed) = input;
    let (mtu, paths) = (*mtu, *paths);
    prop_require!(mtu >= 1 && (2..=4).contains(&paths) && !parts.is_empty());

    let t = gtm::StreamTag {
        src: madeleine::NodeId(0),
        dest: madeleine::NodeId(9),
        msg_id: 7,
    };
    let mut h = gtm::GtmHeader::new(t, mtu as u32, false);
    h.stripes = paths as u8;

    // The sender's global envelope sequence: per block, a part descriptor
    // followed by its MTU-sized fragments; then the logical end.
    let mut inners: Vec<Vec<u8>> = Vec::new();
    for data in parts {
        inners.push(gtm::encode_part(
            &t,
            &gtm::GtmPartDesc {
                len: data.len() as u64,
                send: madeleine::SendMode::Later,
                recv: madeleine::RecvMode::Cheaper,
            },
        ));
        for chunk in data.chunks(mtu) {
            let mut f = gtm::frag_prelude(&t).to_vec();
            f.extend_from_slice(chunk);
            inners.push(f);
        }
    }
    inners.push(gtm::encode_end(&t));

    // Deal the envelopes to random paths (any deal is legal — the writer
    // happens to round-robin); each path opens with its header copy and
    // closes with its plain transport end.
    let mut rng = mad_util::rng::Rng::new(*seed);
    let mut queues: Vec<std::collections::VecDeque<Vec<u8>>> = (0..paths)
        .map(|_| std::collections::VecDeque::from([gtm::encode_header(&h)]))
        .collect();
    for (seq, inner) in inners.iter().enumerate() {
        let mut pkt = gtm::stripe_prelude(&t, seq as u32).to_vec();
        pkt.extend_from_slice(inner);
        queues[rng.gen_range(0..paths)].push_back(pkt);
    }
    for q in &mut queues {
        q.push_back(gtm::encode_end(&t));
    }

    // Random order-preserving merge, one packet at a time.
    let mut asm = gtm::StreamAssembler::new();
    while queues.iter().any(|q| !q.is_empty()) {
        let nonempty: Vec<usize> = (0..paths).filter(|&i| !queues[i].is_empty()).collect();
        let i = nonempty[rng.gen_range(0..nonempty.len())];
        let pkt = queues[i].pop_front().unwrap();
        asm.push_packet_from(i as u64 + 1, pkt)
            .map_err(|e| format!("push rejected: {e:?}"))?;
    }

    // Drain: blocks must come back byte-identical, in order.
    let key = asm.pop_ready().ok_or("stream never became ready")?;
    let mut got: Vec<Vec<u8>> = Vec::new();
    let mut ended = false;
    while let Some(item) = asm.next_item(key) {
        match item {
            gtm::StreamItem::Part(d) => {
                if let Some(prev) = got.last() {
                    prop_assert_eq!(prev.len(), parts[got.len() - 1].len(), "short block");
                }
                got.push(Vec::with_capacity(d.len as usize));
            }
            gtm::StreamItem::Frag(f) => {
                let cur = got.last_mut().ok_or("fragment before any part")?;
                cur.extend_from_slice(gtm::frag_payload(&f));
            }
            gtm::StreamItem::End => {
                ended = true;
                break;
            }
            other => return Err(format!("unexpected item {other:?}")),
        }
    }
    prop_assert!(ended, "logical end never surfaced");
    prop_assert_eq!(got.len(), parts.len(), "block count differs");
    for (i, (g, p)) in got.iter().zip(parts).enumerate() {
        prop_assert_eq!(g, p, "block #{i} not byte-identical");
    }
    asm.finish(key);
    prop_assert!(
        asm.is_idle(),
        "assembler not idle after finish + all path ends"
    );
    Ok(())
}

#[test]
fn striped_stream_reassembles_byte_identically() {
    prop::check(
        "striped_stream_reassembles_byte_identically",
        &Config::default(),
        |rng| {
            (
                prop::vec_of(rng, 1..4, |r| prop::bytes(r, 0..5_000)),
                rng.gen_range(1usize..2_048),
                rng.gen_range(2usize..5),
                rng.next_u64(),
            )
        },
        striped_reassembly_property,
    );
}

// -------------------------------------------------------------- wire flags

#[test]
fn wire_flags_survive_round_trip() {
    use madeleine::{RecvMode, SendMode};
    for s in 0u8..3 {
        for r in 0u8..2 {
            let sm = SendMode::from_wire(s).unwrap();
            let rm = RecvMode::from_wire(r).unwrap();
            assert_eq!(sm.to_wire(), s);
            assert_eq!(rm.to_wire(), r);
        }
    }
}
