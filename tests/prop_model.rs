//! Property-based tests of the model layers: packetization algebra, GTM
//! framing robustness, fluid-bus conservation, virtual-clock linearity.
//!
//! Each property is a plain function over its input (so regressions can be
//! pinned as named `#[test]`s that call it directly) plus a generator
//! driven by the deterministic `mad_util::prop` harness.

use std::sync::Arc;

use mad_util::prop::{self, Config};
use mad_util::{prop_assert, prop_assert_eq, prop_require};
use madeleine::gtm;
use madeleine::plan;
use simnet::{Arbitration, FluidBus, XferClass, XferDir};
use vtime::{Clock, SimDuration};

// ---------------------------------------------------------- packetization

fn packetize_property(input: &(Vec<usize>, usize, usize)) -> Result<(), String> {
    let (lens, mtu, gather) = input;
    let (mtu, gather) = (*mtu, *gather);
    prop_require!(mtu >= 1 && gather >= 1);
    let pkts = plan::packetize(lens, mtu, gather);
    // Conservation.
    let total: usize = pkts.iter().flatten().map(|s| s.len).sum();
    prop_assert_eq!(total, plan::group_bytes(lens));
    // Per-packet limits; no empty packets; no zero segments.
    for p in &pkts {
        prop_assert!(!p.is_empty());
        prop_assert!(p.len() <= gather);
        let bytes: usize = p.iter().map(|s| s.len).sum();
        prop_assert!(bytes <= mtu);
        for s in p {
            prop_assert!(s.len > 0);
        }
    }
    // Segments cover each block contiguously, in order.
    let mut cursors = vec![0usize; lens.len()];
    for s in pkts.iter().flatten() {
        prop_assert_eq!(s.offset, cursors[s.part], "non-contiguous block coverage");
        cursors[s.part] += s.len;
    }
    for (i, &c) in cursors.iter().enumerate() {
        prop_assert_eq!(c, lens[i]);
    }
    Ok(())
}

#[test]
fn packetize_conserves_bytes_and_respects_limits() {
    prop::check(
        "packetize_conserves_bytes_and_respects_limits",
        &Config::default(),
        |rng| {
            (
                prop::vec_of(rng, 0..20, |r| r.gen_range(0usize..10_000)),
                rng.gen_range(1usize..5_000),
                rng.gen_range(1usize..16),
            )
        },
        packetize_property,
    );
}

// ------------------------------------------------------------ GTM framing

#[test]
fn gtm_decode_never_panics() {
    prop::check(
        "gtm_decode_never_panics",
        &Config::default(),
        |rng| prop::bytes(rng, 0..64),
        |bytes| {
            let _ = gtm::decode_packet(bytes); // must not panic, any outcome ok
            Ok(())
        },
    );
}

#[test]
fn gtm_header_round_trip() {
    prop::check(
        "gtm_header_round_trip",
        &Config::default(),
        |rng| {
            (
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.gen_range(1u32..u32::MAX),
                rng.gen_range(0u32..2) == 1,
            )
        },
        |&(src, dest, msg_id, mtu, direct)| {
            prop_require!(mtu >= 1);
            let h = gtm::GtmHeader {
                tag: gtm::StreamTag {
                    src: madeleine::NodeId(src),
                    dest: madeleine::NodeId(dest),
                    msg_id,
                },
                mtu,
                direct,
            };
            prop_assert_eq!(
                gtm::decode_packet(&gtm::encode_header(&h)).unwrap(),
                (h.tag, gtm::PacketBody::Header(h))
            );
            Ok(())
        },
    );
}

#[test]
fn fragment_count_matches_chunks() {
    prop::check(
        "fragment_count_matches_chunks",
        &Config::default(),
        |rng| (rng.gen_range(0u64..1_000_000), rng.gen_range(1u32..100_000)),
        |&(len, mtu)| {
            prop_require!(mtu >= 1);
            let n = gtm::fragment_count(len, mtu);
            // Definitionally: number of chunks of size `mtu` covering `len`.
            let expect = (0..len).step_by(mtu as usize).count() as u64;
            prop_assert_eq!(n, expect);
            Ok(())
        },
    );
}

// -------------------------------------------------------------- fluid bus

/// One transfer: (bytes, is_dma, is_inbound, own rate ceiling in B/s).
type Xfer = (u64, bool, bool, f64);

fn fluid_bus_property(input: &(Vec<Xfer>, f64)) -> Result<(), String> {
    let (xfers, capacity) = input;
    let capacity = *capacity;
    prop_require!(
        !xfers.is_empty() && capacity >= 10.0e6 && xfers.iter().all(|x| x.0 >= 1 && x.3 >= 1.0e6)
    );
    let clock = Clock::new();
    let bus = Arc::new(FluidBus::new(
        &clock,
        Arbitration {
            capacity_bps: capacity,
            duplex_efficiency: 0.9,
            pio_slowdown_under_dma: 0.1,
        },
    ));
    let setup = clock.freeze();
    let handles: Vec<_> = xfers
        .iter()
        .enumerate()
        .map(|(i, &(bytes, dma, dir_in, rate))| {
            let bus = bus.clone();
            clock.spawn(format!("x{i}"), move |a| {
                let class = if dma { XferClass::Dma } else { XferClass::Pio };
                let dir = if dir_in { XferDir::In } else { XferDir::Out };
                bus.transfer(a, class, dir, bytes, rate);
                a.now().as_secs_f64()
            })
        })
        .collect();
    drop(setup);
    let finish: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total_bytes: u64 = xfers.iter().map(|x| x.0).sum();
    let makespan = finish.iter().cloned().fold(0.0, f64::max);
    // Work conservation: the bus cannot move bytes faster than its
    // derated capacity allows...
    prop_assert!(
        total_bytes as f64 <= capacity * makespan * 1.0001 + 1.0,
        "moved {total_bytes} bytes in {makespan}s over a {capacity} B/s bus"
    );
    // ...and every transfer is at least as slow as its own ceiling.
    for (&(bytes, _, _, rate), &t) in xfers.iter().zip(&finish) {
        prop_assert!(t * 1.0001 + 1e-9 >= bytes as f64 / rate);
    }
    Ok(())
}

#[test]
fn fluid_bus_conserves_work() {
    prop::check(
        "fluid_bus_conserves_work",
        &Config::default(),
        |rng| {
            (
                prop::vec_of(rng, 1..6, |r| {
                    (
                        r.gen_range(1u64..2_000_000),
                        r.bool(),
                        r.bool(),
                        r.gen_range(1.0e6f64..100.0e6),
                    )
                }),
                rng.gen_range(10.0e6f64..200.0e6),
            )
        },
        fluid_bus_property,
    );
}

/// Regression pinned from the retired `proptest-regressions` seed file:
/// three same-rate DMA transfers plus a tiny PIO and a one-byte transfer
/// once broke conservation accounting. Kept as a named case so the input
/// survives the harness change.
#[test]
fn fluid_bus_regression_mixed_dma_pio_storm() {
    fluid_bus_property(&(
        vec![
            (691_146, true, false, 72_188_650.896_901_13),
            (691_146, true, false, 71_608_024.753_219),
            (275, false, false, 1_000_000.0),
            (691_146, true, true, 73_889_677.960_916_94),
            (1, true, false, 1_000_000.0),
        ],
        130_297_805.974_057_03,
    ))
    .unwrap();
}

// ----------------------------------------------------------- virtual time

#[test]
fn virtual_clock_sums_sleeps_exactly() {
    prop::check(
        "virtual_clock_sums_sleeps_exactly",
        &Config::default(),
        |rng| prop::vec_of(rng, 0..50, |r| r.gen_range(0u64..1_000_000)),
        |sleeps| {
            let clock = Clock::new();
            let expect: u64 = sleeps.iter().sum();
            let sleeps = sleeps.clone();
            let h = clock.spawn("s", move |a| {
                for ns in sleeps {
                    a.sleep(SimDuration::from_nanos(ns));
                }
                a.now().as_nanos()
            });
            prop_assert_eq!(h.join().unwrap(), expect);
            Ok(())
        },
    );
}

// -------------------------------------------------------------- wire flags

#[test]
fn wire_flags_survive_round_trip() {
    use madeleine::{RecvMode, SendMode};
    for s in 0u8..3 {
        for r in 0u8..2 {
            let sm = SendMode::from_wire(s).unwrap();
            let rm = RecvMode::from_wire(r).unwrap();
            assert_eq!(sm.to_wire(), s);
            assert_eq!(rm.to_wire(), r);
        }
    }
}
