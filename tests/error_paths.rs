//! Failure-injection and error-path tests: the library must fail loudly
//! and precisely on contract violations, not corrupt data.

use mad_shm::ShmDriver;
use madeleine::error::MadError;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

#[test]
fn unknown_peer_is_rejected() {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let ok = sb.run(|node| {
        if node.rank() == NodeId(0) {
            let ch = node.channel("ch");
            // Rank 2 exists in the session but is not on this network.
            matches!(
                ch.begin_packing(NodeId(2)).err(),
                Some(MadError::UnknownPeer(NodeId(2)))
            )
        } else {
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn unroutable_destination_is_rejected() {
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    // Node 3 is in the session but attached to no network of the vchannel.
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel("vc", &[n0, n1], VcOptions::default());
    let ok = sb.run(|node| {
        if node.rank() == NodeId(0) {
            let vc = node.vchannel("vc");
            matches!(
                vc.begin_packing(NodeId(3)).err(),
                Some(MadError::Unroutable(NodeId(3)))
            )
        } else if node.rank() == NodeId(3) {
            // Node 3 is in the session but got no vchannel object at all.
            !node.has_vchannel("vc")
        } else {
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn oversized_unpack_is_detected() {
    // The receiver asks for more bytes than the sender packed: the stream
    // runs dry at end of message and the mismatch must surface as an error
    // on a longer unpack within the same group shape. Here: sender packs 10
    // bytes express; receiver tries 20 express → the express group delivers
    // a 10-byte packet into a 20-byte destination, then blocks for more.
    // To keep it deterministic we instead test the opposite: receiver asks
    // for *fewer* bytes, leaving unconsumed bytes at end_unpacking.
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let ok = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let data = [7u8; 10];
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            w.pack(&data, SendMode::Safer, RecvMode::Express).unwrap();
            w.end_packing().unwrap();
            true
        } else {
            let mut r = ch.begin_unpacking().unwrap();
            let mut buf = [0u8; 4]; // too short: 6 bytes left over
            r.unpack(&mut buf, SendMode::Safer, RecvMode::Express)
                .unwrap();
            matches!(r.end_unpacking(), Err(MadError::SequenceMismatch(_)))
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn forwarded_flag_mismatch_is_detected() {
    // The GTM carries per-block flags; unpacking with different flags is a
    // protocol violation the receiver can actually see (unlike on regular
    // channels, where messages are not self-described).
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel("vc", &[n0, n1], VcOptions::default());
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = [1u8; 64];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                let mut buf = [0u8; 64];
                // Wrong recv mode: Express instead of Cheaper.
                let err = r.unpack(&mut buf, SendMode::Later, RecvMode::Express);
                let ok = matches!(err, Err(MadError::SequenceMismatch(_)));
                // Drain properly so teardown stays clean.
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper).ok();
                r.end_unpacking().ok();
                ok
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
fn forwarded_length_mismatch_is_detected() {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel("vc", &[n0, n1], VcOptions::default());
    let ok = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = [1u8; 64];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                let mut wrong = [0u8; 32]; // sender packed 64
                let err = r.unpack(&mut wrong, SendMode::Later, RecvMode::Cheaper);
                let ok = matches!(err, Err(MadError::SequenceMismatch(_)));
                let mut right = [0u8; 64];
                r.unpack(&mut right, SendMode::Later, RecvMode::Cheaper)
                    .ok();
                r.end_unpacking().ok();
                ok
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

#[test]
#[should_panic(expected = "MessageWriter dropped without end_packing")]
fn dropping_unfinished_writer_panics() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    sb.run(|node| {
        if node.rank() == NodeId(0) {
            let ch = node.channel("ch");
            let w = ch.begin_packing(NodeId(1)).unwrap();
            drop(w); // forgot end_packing: programming error, must panic
        }
    });
}

#[test]
fn error_messages_are_informative() {
    let e = MadError::BufferTooSmall { have: 3, need: 9 };
    assert!(e.to_string().contains("3"));
    assert!(e.to_string().contains("9"));
    let e = MadError::Unroutable(NodeId(5));
    assert!(e.to_string().contains("n5"));
    let e = MadError::ForeignStaticBuffer {
        owner: "sci",
        user: "myri",
    };
    assert!(e.to_string().contains("sci") && e.to_string().contains("myri"));
}
