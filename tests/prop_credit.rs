//! Property tests of the credit-based flow-control layer: conservation of
//! credits under arbitrary grant/consume interleavings (with every grant
//! passing through the GTM wire encoding), and exact roundtrips of the
//! control packets themselves.

use mad_util::prop::{self, Config};
use mad_util::{prop_assert, prop_assert_eq};
use madeleine::credit::{CreditLedger, TakeOutcome};
use madeleine::gtm::{self, CancelReason, PacketBody, StreamTag};
use madeleine::runtime::{Runtime, StdRuntime};
use madeleine::NodeId;

/// One generated schedule: the window, plus a step list. Each step is
/// (is_grant, grant_count_selector) — consumes are attempted whenever
/// `is_grant` is false.
type GenCase = (u32, Vec<(bool, u32)>);

/// Credits are conserved at every step of any grant/consume interleaving:
///
/// `window + granted == consumed + available`
///
/// where every grant travels through `encode_credit` → `decode_packet`
/// exactly as it would on the wire between a gateway and a sender.
fn credits_conserved(case: &GenCase) -> Result<(), String> {
    let (window, steps) = case;
    let window = 1 + window % 64;
    let rt = StdRuntime::default();
    let ledger = CreditLedger::new(rt.event());
    let tag = StreamTag {
        src: NodeId(3),
        dest: NodeId(11),
        msg_id: 42,
    };
    let key = tag.key();
    ledger.open(key, window);

    let mut granted = 0u64;
    let mut consumed = 0u64;
    for &(is_grant, sel) in steps {
        if is_grant {
            let count = 1 + sel % 5;
            // The grant crosses the wire as a real GTM control packet.
            let packet = gtm::encode_credit(&tag, count);
            let (got_tag, body) = gtm::decode_packet(&packet).map_err(|e| e.to_string())?;
            prop_assert_eq!(got_tag, tag, "credit tag survives the wire");
            match body {
                PacketBody::Credit(n) => {
                    prop_assert_eq!(n, count, "credit count survives the wire");
                    ledger.deposit(key, n);
                    granted += n as u64;
                }
                other => return Err(format!("credit decoded as {other:?}")),
            }
        } else {
            match ledger.try_take(key) {
                TakeOutcome::Taken => consumed += 1,
                TakeOutcome::Empty => {
                    // Window exhausted: the available count must be zero.
                    prop_assert_eq!(ledger.available(key), Some(0));
                }
                TakeOutcome::Cancelled(r) => return Err(format!("spurious cancellation: {r:?}")),
            }
        }
        let available = ledger.available(key).ok_or("account vanished mid-stream")?;
        prop_assert_eq!(
            window as u64 + granted,
            consumed + available,
            "credits leaked or duplicated"
        );
        prop_assert!(
            available <= window as u64 + granted,
            "more credits available than ever existed"
        );
    }
    ledger.close(key);
    prop_assert!(ledger.is_idle(), "ledger leaked the account");
    Ok(())
}

#[test]
fn credit_conservation_across_wire_roundtrip() {
    prop::check(
        "credit_conservation_across_wire_roundtrip",
        &Config::default(),
        |rng| {
            let window = rng.next_u32() % 64;
            let steps = prop::vec_of(rng, 0..200, |r| (r.bool(), r.next_u32()));
            (window, steps)
        },
        credits_conserved,
    );
}

/// Cancel packets roundtrip exactly, for both reasons, any tag.
#[test]
fn cancel_roundtrip_both_reasons() {
    for (src, dest, msg_id) in [(0u32, 1u32, 0u32), (7, 7, u32::MAX), (u32::MAX, 0, 9)] {
        let tag = StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        };
        for reason in [CancelReason::PeerUnreachable, CancelReason::CreditTimeout] {
            let packet = gtm::encode_cancel(&tag, reason);
            let (got_tag, body) = gtm::decode_packet(&packet).expect("well-formed cancel");
            assert_eq!(got_tag, tag);
            assert_eq!(body, PacketBody::Cancel(reason));
        }
    }
}

/// A cancellation arriving while credits are outstanding wins over any
/// remaining window, and the account still closes cleanly — the shape of
/// the gateway's degradation path.
#[test]
fn cancellation_preempts_outstanding_credits() {
    let rt = StdRuntime::default();
    let ledger = CreditLedger::new(rt.event());
    let key = (5, 123);
    ledger.open(key, 8);
    assert_eq!(ledger.try_take(key), TakeOutcome::Taken);
    ledger.cancel(key, CancelReason::CreditTimeout);
    assert_eq!(
        ledger.try_take(key),
        TakeOutcome::Cancelled(CancelReason::CreditTimeout)
    );
    // Deposits after a cancel must not resurrect the stream.
    ledger.deposit(key, 4);
    assert_eq!(
        ledger.try_take(key),
        TakeOutcome::Cancelled(CancelReason::CreditTimeout)
    );
    ledger.close(key);
    assert!(ledger.is_idle());
}
