//! Deterministic soak test: seeded random traffic over a three-cluster
//! topology, exercising direct paths, single- and double-gateway routes,
//! message interleaving from many senders, and checksum verification.

use mad_shm::ShmDriver;
use mad_sim::{SimTech, Testbed};
use mad_util::rng::Rng;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// Root seed of the randomized soaks; override with `MAD_SOAK_SEED=<u64>`
/// to explore other schedules (CI pins one fixed value).
fn soak_seed() -> u64 {
    std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4D41_4445)
}

/// Per-(sender, receiver) deterministic payload.
fn payload(from: u32, to: u32, idx: u32, len: usize) -> Vec<u8> {
    let seed = from
        .wrapping_mul(0x9E37)
        .wrapping_add(to.wrapping_mul(31))
        .wrapping_add(idx) as u8;
    (0..len)
        .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
        .collect()
}

/// Topology: net0 {0,1,2}, net1 {2,3,4}, net2 {4,5,6}; gateways 2 and 4.
/// Every even rank sends a fixed schedule of messages to every odd rank;
/// receivers know the schedule (deterministic sizes from a seeded RNG) and
/// verify every byte.
#[test]
fn random_traffic_soak() {
    const MSGS_PER_PAIR: u32 = 6;
    let senders = [0u32, 2, 4, 6];
    let receivers = [1u32, 3, 5];

    // Pre-generate the schedule (same on all nodes): sizes per (s,r,idx).
    let mut rng = Rng::new(soak_seed());
    let mut sizes = std::collections::HashMap::new();
    for &s in &senders {
        for &r in &receivers {
            for i in 0..MSGS_PER_PAIR {
                sizes.insert((s, r, i), rng.gen_range(1..40_000usize));
            }
        }
    }
    let sizes = std::sync::Arc::new(sizes);

    let mut sb = SessionBuilder::new(7);
    let rt = sb.runtime().clone();
    let n0 = sb.network("net0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("net1", ShmDriver::new(rt.clone()), &[2, 3, 4]);
    let n2 = sb.network("net2", ShmDriver::new(rt), &[4, 5, 6]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(2048),
            ..Default::default()
        },
    );

    let sizes2 = sizes.clone();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let me = node.rank().0;
        if senders.contains(&me) {
            for i in 0..MSGS_PER_PAIR {
                for &r in &receivers {
                    let len = sizes2[&(me, r, i)];
                    let data = payload(me, r, i, len);
                    let mut w = vc.begin_packing(NodeId(r)).unwrap();
                    // Stamp the message id as an express header so the
                    // receiver can match out-of-order arrivals per sender.
                    let hdr = [me as u8, i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            true
        } else {
            // Receivers: per-sender in-order delivery is guaranteed only
            // per channel, so track the next expected index per sender.
            let total = senders.len() as u32 * MSGS_PER_PAIR;
            let mut next: std::collections::HashMap<u32, u32> =
                senders.iter().map(|&s| (s, 0)).collect();
            for _ in 0..total {
                let mut r = vc.begin_unpacking().unwrap();
                let mut hdr = [0u8; 2];
                r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let (s, i) = (hdr[0] as u32, hdr[1] as u32);
                assert_eq!(next[&s], i, "per-sender ordering violated at receiver {me}");
                *next.get_mut(&s).unwrap() += 1;
                let len = sizes2[&(s, me, i)];
                let mut buf = vec![0u8; len];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(s, me, i, len), "payload {s}→{me}#{i}");
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Concurrent long and short messages through one gateway: the engine now
/// interleaves streams at fragment granularity, so many small messages and
/// a few bulk ones share the gateway without corrupting or reordering each
/// other. Sizes are seeded (`MAD_SOAK_SEED`); each (sender, receiver) pair
/// checks every byte and strict per-sender ordering.
#[test]
fn hol_soak_short_messages_share_gateway_with_bulk() {
    const BULK_MSGS: u32 = 3;
    const SHORT_MSGS: u32 = 40;

    let mut rng = Rng::new(soak_seed() ^ 0x484F_4C21);
    let bulk_sizes: Vec<usize> = (0..BULK_MSGS)
        .map(|_| rng.gen_range(100_000..300_000usize))
        .collect();
    let short_sizes: Vec<usize> = (0..SHORT_MSGS)
        .map(|_| rng.gen_range(1..256usize))
        .collect();
    let bulk_sizes = std::sync::Arc::new(bulk_sizes);
    let short_sizes = std::sync::Arc::new(short_sizes);

    // net0 {0,1,2}, net1 {2,3,4}: rank 2 is the only gateway; both senders
    // live on net0, both receivers on net1, so every message funnels
    // through the same engine.
    let mut sb = SessionBuilder::new(5);
    let rt = sb.runtime().clone();
    let n0 = sb.network("net0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("net1", ShmDriver::new(rt), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(1024),
            ..Default::default()
        },
    );

    let (bulk2, short2) = (bulk_sizes.clone(), short_sizes.clone());
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for (i, &len) in bulk2.iter().enumerate() {
                    let data = payload(0, 3, i as u32, len);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => {
                for (i, &len) in short2.iter().enumerate() {
                    let data = payload(1, 4, i as u32, len);
                    let mut w = vc.begin_packing(NodeId(4)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            2 => {
                // The gateway node watches its own engine mid-run through
                // the cheap snapshot API: totals must grow monotonically
                // and eventually account for every relayed message.
                let stats = node.gateway_stats("vc").expect("gateway stats").clone();
                let mut last = stats.totals();
                loop {
                    let t = stats.totals();
                    assert!(t.messages >= last.messages, "messages went backwards");
                    assert!(t.fragments >= last.fragments, "fragments went backwards");
                    assert!(
                        t.fragment_bytes >= last.fragment_bytes,
                        "fragment_bytes went backwards"
                    );
                    if t.messages >= (BULK_MSGS + SHORT_MSGS) as u64 {
                        break;
                    }
                    last = t;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                true
            }
            3 => {
                for (i, &len) in bulk2.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, 3, i as u32, len), "bulk #{i}");
                }
                true
            }
            4 => {
                for (i, &len) in short2.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(1, 4, i as u32, len), "short #{i}");
                }
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// The delay bound, on the deterministic virtual clock: a 1 KB message
/// entering the gateway while a multi-megabyte bulk transfer is mid-relay
/// must come out in bounded time — a couple of fragment slots, not the
/// remainder of the bulk message. (Before fragment-granular scheduling the
/// short message waited for the entire bulk relay to finish.)
#[test]
fn short_message_delay_is_bounded_during_bulk_relay() {
    const BULK: usize = 4 << 20;
    const PING: usize = 1024;

    let tb = Testbed::new(5);
    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1, 2]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            ..Default::default()
        },
    );
    let stamps = sb.run(|node| {
        let rt = node.runtime().clone();
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let data = vec![0x5Au8; BULK];
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                0
            }
            1 => {
                // Let the bulk transfer get well underway (its relay takes
                // ~80 virtual ms), then inject the short message.
                rt.charge_overhead(10_000_000);
                let data = vec![0xA5u8; PING];
                let t0 = rt.now_nanos();
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            2 => 0,
            3 => {
                let mut buf = vec![0u8; BULK];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0x5A));
                rt.now_nanos()
            }
            4 => {
                let mut buf = vec![0u8; PING];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0xA5));
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    let ping_ns = stamps[4].saturating_sub(stamps[1]);
    let bulk_done = stamps[3];
    assert!(
        bulk_done > stamps[1] + 20_000_000,
        "bulk relay must still be in flight when the ping lands \
         (bulk done at {bulk_done} ns)"
    );
    assert!(
        ping_ns < 5_000_000,
        "1 KB message delayed {ping_ns} ns behind a bulk relay — \
         head-of-line blocking is back"
    );
}

/// Two plain channels over the same network are independent ordering
/// domains (paper §2.1.2: "in-order delivery is only enforced ... within
/// the same channel") — and traffic on one never leaks into the other.
#[test]
fn channels_are_isolated_worlds() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("alpha", net);
    sb.channel("beta", net);
    let ok = sb.run(|node| {
        let alpha = node.channel("alpha");
        let beta = node.channel("beta");
        if node.rank() == NodeId(0) {
            // Interleave sends across the two channels.
            for i in 0..20u8 {
                let a_byte = [i];
                let mut w = alpha.begin_packing(NodeId(1)).unwrap();
                w.pack(&a_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
                let b_byte = [100 + i];
                let mut w = beta.begin_packing(NodeId(1)).unwrap();
                w.pack(&b_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
            }
            true
        } else {
            // Drain beta entirely first: alpha's traffic must be untouched
            // and still in order afterwards.
            for i in 0..20u8 {
                let mut r = beta.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], 100 + i);
            }
            for i in 0..20u8 {
                let mut r = alpha.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], i);
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}
