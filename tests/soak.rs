//! Deterministic soak test: seeded random traffic over a three-cluster
//! topology, exercising direct paths, single- and double-gateway routes,
//! message interleaving from many senders, and checksum verification.

use mad_shm::ShmDriver;
use mad_util::rng::Rng;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// Per-(sender, receiver) deterministic payload.
fn payload(from: u32, to: u32, idx: u32, len: usize) -> Vec<u8> {
    let seed = from
        .wrapping_mul(0x9E37)
        .wrapping_add(to.wrapping_mul(31))
        .wrapping_add(idx) as u8;
    (0..len)
        .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
        .collect()
}

/// Topology: net0 {0,1,2}, net1 {2,3,4}, net2 {4,5,6}; gateways 2 and 4.
/// Every even rank sends a fixed schedule of messages to every odd rank;
/// receivers know the schedule (deterministic sizes from a seeded RNG) and
/// verify every byte.
#[test]
fn random_traffic_soak() {
    const MSGS_PER_PAIR: u32 = 6;
    let senders = [0u32, 2, 4, 6];
    let receivers = [1u32, 3, 5];

    // Pre-generate the schedule (same on all nodes): sizes per (s,r,idx).
    let mut rng = Rng::new(0x4D41_4445);
    let mut sizes = std::collections::HashMap::new();
    for &s in &senders {
        for &r in &receivers {
            for i in 0..MSGS_PER_PAIR {
                sizes.insert((s, r, i), rng.gen_range(1..40_000usize));
            }
        }
    }
    let sizes = std::sync::Arc::new(sizes);

    let mut sb = SessionBuilder::new(7);
    let rt = sb.runtime().clone();
    let n0 = sb.network("net0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("net1", ShmDriver::new(rt.clone()), &[2, 3, 4]);
    let n2 = sb.network("net2", ShmDriver::new(rt), &[4, 5, 6]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(2048),
            ..Default::default()
        },
    );

    let sizes2 = sizes.clone();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let me = node.rank().0;
        if senders.contains(&me) {
            for i in 0..MSGS_PER_PAIR {
                for &r in &receivers {
                    let len = sizes2[&(me, r, i)];
                    let data = payload(me, r, i, len);
                    let mut w = vc.begin_packing(NodeId(r)).unwrap();
                    // Stamp the message id as an express header so the
                    // receiver can match out-of-order arrivals per sender.
                    let hdr = [me as u8, i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            true
        } else {
            // Receivers: per-sender in-order delivery is guaranteed only
            // per channel, so track the next expected index per sender.
            let total = senders.len() as u32 * MSGS_PER_PAIR;
            let mut next: std::collections::HashMap<u32, u32> =
                senders.iter().map(|&s| (s, 0)).collect();
            for _ in 0..total {
                let mut r = vc.begin_unpacking().unwrap();
                let mut hdr = [0u8; 2];
                r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let (s, i) = (hdr[0] as u32, hdr[1] as u32);
                assert_eq!(next[&s], i, "per-sender ordering violated at receiver {me}");
                *next.get_mut(&s).unwrap() += 1;
                let len = sizes2[&(s, me, i)];
                let mut buf = vec![0u8; len];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(s, me, i, len), "payload {s}→{me}#{i}");
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Two plain channels over the same network are independent ordering
/// domains (paper §2.1.2: "in-order delivery is only enforced ... within
/// the same channel") — and traffic on one never leaks into the other.
#[test]
fn channels_are_isolated_worlds() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("alpha", net);
    sb.channel("beta", net);
    let ok = sb.run(|node| {
        let alpha = node.channel("alpha");
        let beta = node.channel("beta");
        if node.rank() == NodeId(0) {
            // Interleave sends across the two channels.
            for i in 0..20u8 {
                let a_byte = [i];
                let mut w = alpha.begin_packing(NodeId(1)).unwrap();
                w.pack(&a_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
                let b_byte = [100 + i];
                let mut w = beta.begin_packing(NodeId(1)).unwrap();
                w.pack(&b_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
            }
            true
        } else {
            // Drain beta entirely first: alpha's traffic must be untouched
            // and still in order afterwards.
            for i in 0..20u8 {
                let mut r = beta.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], 100 + i);
            }
            for i in 0..20u8 {
                let mut r = alpha.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], i);
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}
