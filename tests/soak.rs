//! Deterministic soak test: seeded random traffic over a three-cluster
//! topology, exercising direct paths, single- and double-gateway routes,
//! message interleaving from many senders, and checksum verification.

use mad_shm::ShmDriver;
use mad_sim::{LinkFault, SimTech, Testbed};
use mad_util::rng::Rng;
use madeleine::error::MadError;
use madeleine::gateway::GatewayConfig;
use madeleine::session::VcOptions;
use madeleine::{MultipathConfig, NodeId, RecvMode, SendMode, SessionBuilder};
use vtime::SimDuration;

/// Root seed of the randomized soaks; override with `MAD_SOAK_SEED=<u64>`
/// to explore other schedules (CI pins one fixed value).
fn soak_seed() -> u64 {
    std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4D41_4445)
}

/// Per-(sender, receiver) deterministic payload.
fn payload(from: u32, to: u32, idx: u32, len: usize) -> Vec<u8> {
    let seed = from
        .wrapping_mul(0x9E37)
        .wrapping_add(to.wrapping_mul(31))
        .wrapping_add(idx) as u8;
    (0..len)
        .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
        .collect()
}

/// Topology: net0 {0,1,2}, net1 {2,3,4}, net2 {4,5,6}; gateways 2 and 4.
/// Every even rank sends a fixed schedule of messages to every odd rank;
/// receivers know the schedule (deterministic sizes from a seeded RNG) and
/// verify every byte.
#[test]
fn random_traffic_soak() {
    const MSGS_PER_PAIR: u32 = 6;
    let senders = [0u32, 2, 4, 6];
    let receivers = [1u32, 3, 5];

    // Pre-generate the schedule (same on all nodes): sizes per (s,r,idx).
    let mut rng = Rng::new(soak_seed());
    let mut sizes = std::collections::HashMap::new();
    for &s in &senders {
        for &r in &receivers {
            for i in 0..MSGS_PER_PAIR {
                sizes.insert((s, r, i), rng.gen_range(1..40_000usize));
            }
        }
    }
    let sizes = std::sync::Arc::new(sizes);

    let mut sb = SessionBuilder::new(7);
    let rt = sb.runtime().clone();
    let n0 = sb.network("net0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("net1", ShmDriver::new(rt.clone()), &[2, 3, 4]);
    let n2 = sb.network("net2", ShmDriver::new(rt), &[4, 5, 6]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(2048),
            ..Default::default()
        },
    );

    let sizes2 = sizes.clone();
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let me = node.rank().0;
        if senders.contains(&me) {
            for i in 0..MSGS_PER_PAIR {
                for &r in &receivers {
                    let len = sizes2[&(me, r, i)];
                    let data = payload(me, r, i, len);
                    let mut w = vc.begin_packing(NodeId(r)).unwrap();
                    // Stamp the message id as an express header so the
                    // receiver can match out-of-order arrivals per sender.
                    let hdr = [me as u8, i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
            }
            true
        } else {
            // Receivers: per-sender in-order delivery is guaranteed only
            // per channel, so track the next expected index per sender.
            let total = senders.len() as u32 * MSGS_PER_PAIR;
            let mut next: std::collections::HashMap<u32, u32> =
                senders.iter().map(|&s| (s, 0)).collect();
            for _ in 0..total {
                let mut r = vc.begin_unpacking().unwrap();
                let mut hdr = [0u8; 2];
                r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let (s, i) = (hdr[0] as u32, hdr[1] as u32);
                assert_eq!(next[&s], i, "per-sender ordering violated at receiver {me}");
                *next.get_mut(&s).unwrap() += 1;
                let len = sizes2[&(s, me, i)];
                let mut buf = vec![0u8; len];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(s, me, i, len), "payload {s}→{me}#{i}");
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// Concurrent long and short messages through one gateway: the engine now
/// interleaves streams at fragment granularity, so many small messages and
/// a few bulk ones share the gateway without corrupting or reordering each
/// other. Sizes are seeded (`MAD_SOAK_SEED`); each (sender, receiver) pair
/// checks every byte and strict per-sender ordering.
#[test]
fn hol_soak_short_messages_share_gateway_with_bulk() {
    const BULK_MSGS: u32 = 3;
    const SHORT_MSGS: u32 = 40;

    let mut rng = Rng::new(soak_seed() ^ 0x484F_4C21);
    let bulk_sizes: Vec<usize> = (0..BULK_MSGS)
        .map(|_| rng.gen_range(100_000..300_000usize))
        .collect();
    let short_sizes: Vec<usize> = (0..SHORT_MSGS)
        .map(|_| rng.gen_range(1..256usize))
        .collect();
    let bulk_sizes = std::sync::Arc::new(bulk_sizes);
    let short_sizes = std::sync::Arc::new(short_sizes);

    // net0 {0,1,2}, net1 {2,3,4}: rank 2 is the only gateway; both senders
    // live on net0, both receivers on net1, so every message funnels
    // through the same engine.
    let mut sb = SessionBuilder::new(5);
    let rt = sb.runtime().clone();
    let n0 = sb.network("net0", ShmDriver::new(rt.clone()), &[0, 1, 2]);
    let n1 = sb.network("net1", ShmDriver::new(rt), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(1024),
            ..Default::default()
        },
    );

    let (bulk2, short2) = (bulk_sizes.clone(), short_sizes.clone());
    let ok = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for (i, &len) in bulk2.iter().enumerate() {
                    let data = payload(0, 3, i as u32, len);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => {
                for (i, &len) in short2.iter().enumerate() {
                    let data = payload(1, 4, i as u32, len);
                    let mut w = vc.begin_packing(NodeId(4)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            2 => {
                // The gateway node watches its own engine mid-run through
                // the cheap snapshot API: totals must grow monotonically
                // and eventually account for every relayed message.
                let stats = node.gateway_stats("vc").expect("gateway stats").clone();
                let mut last = stats.totals();
                loop {
                    let t = stats.totals();
                    assert!(t.messages >= last.messages, "messages went backwards");
                    assert!(t.fragments >= last.fragments, "fragments went backwards");
                    assert!(
                        t.fragment_bytes >= last.fragment_bytes,
                        "fragment_bytes went backwards"
                    );
                    if t.messages >= (BULK_MSGS + SHORT_MSGS) as u64 {
                        break;
                    }
                    last = t;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                true
            }
            3 => {
                for (i, &len) in bulk2.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, 3, i as u32, len), "bulk #{i}");
                }
                true
            }
            4 => {
                for (i, &len) in short2.iter().enumerate() {
                    let mut buf = vec![0u8; len];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(1, 4, i as u32, len), "short #{i}");
                }
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x));
}

/// The delay bound, on the deterministic virtual clock: a 1 KB message
/// entering the gateway while a multi-megabyte bulk transfer is mid-relay
/// must come out in bounded time — a couple of fragment slots, not the
/// remainder of the bulk message. (Before fragment-granular scheduling the
/// short message waited for the entire bulk relay to finish.)
#[test]
fn short_message_delay_is_bounded_during_bulk_relay() {
    const BULK: usize = 4 << 20;
    const PING: usize = 1024;

    let tb = Testbed::new(5);
    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1, 2]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            ..Default::default()
        },
    );
    let stamps = sb.run(|node| {
        let rt = node.runtime().clone();
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let data = vec![0x5Au8; BULK];
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                0
            }
            1 => {
                // Let the bulk transfer get well underway (its relay takes
                // ~80 virtual ms), then inject the short message.
                rt.charge_overhead(10_000_000);
                let data = vec![0xA5u8; PING];
                let t0 = rt.now_nanos();
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            2 => 0,
            3 => {
                let mut buf = vec![0u8; BULK];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0x5A));
                rt.now_nanos()
            }
            4 => {
                let mut buf = vec![0u8; PING];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0xA5));
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    let ping_ns = stamps[4].saturating_sub(stamps[1]);
    let bulk_done = stamps[3];
    assert!(
        bulk_done > stamps[1] + 20_000_000,
        "bulk relay must still be in flight when the ping lands \
         (bulk done at {bulk_done} ns)"
    );
    assert!(
        ping_ns < 5_000_000,
        "1 KB message delayed {ping_ns} ns behind a bulk relay — \
         head-of-line blocking is back"
    );
}

/// The credit window bounds gateway occupancy. A 4 MB transfer funnels
/// from fast Myrinet (70 MB/s) into slow Fast-Ethernet (12.5 MB/s)
/// through one gateway whose pipeline is deep enough (64 buffers) to soak
/// up the rate mismatch; without flow control the engine's resident-bytes
/// high-water mark grows far past the window bound, with an 8-fragment
/// credit window it stays under `window × (MTU + prelude)` — at a
/// bulk-bandwidth cost of at most 5%. (A PIO-send outbound network like
/// SCI would *not* stay within 5%: pacing the inbound DMA to the outbound
/// rate keeps both NICs concurrently active, and the paper's §3.4.1 bus
/// arbitration then throttles the PIO sends — that interaction is
/// measured by the A4 flow-control ablation, not asserted here.)
#[test]
fn credit_window_bounds_gateway_occupancy() {
    const TOTAL: usize = 4 << 20;
    const MTU: usize = 32 * 1024;
    const WINDOW: u32 = 8;

    fn run_one(window: Option<u32>) -> (u64, madeleine::gateway::GatewayTotals) {
        let tb = Testbed::new(3);
        let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
        let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
        let n1 = sb.network("fe", tb.driver(SimTech::FastEthernet), &[1, 2]);
        sb.vchannel(
            "vc",
            &[n0, n1],
            VcOptions {
                mtu: Some(MTU),
                gateway: GatewayConfig {
                    pipeline_depth: 64,
                    credit_window: window,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let (stamps, stats) = sb.run_with_gateway_stats(move |node| {
            let rt = node.runtime().clone();
            let vc = node.vchannel("vc");
            node.barrier().wait();
            match node.rank().0 {
                0 => {
                    let t0 = rt.now_nanos();
                    let data = vec![0x5Au8; TOTAL];
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                    t0
                }
                1 => 0,
                2 => {
                    let mut buf = vec![0u8; TOTAL];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert!(buf.iter().all(|&b| b == 0x5A), "payload corrupted");
                    rt.now_nanos()
                }
                _ => unreachable!(),
            }
        });
        assert_eq!(stats.len(), 1);
        (stamps[2] - stamps[0], stats[0].2.totals())
    }

    let (t_uncapped, uncapped) = run_one(None);
    let (t_capped, capped) = run_one(Some(WINDOW));

    // A fragment packet is the payload plus the 15-byte GTM prelude; allow
    // a little slack on top of the window bound.
    let bound = WINDOW as i64 * (MTU as i64 + 64) + 4096;
    assert!(
        capped.peak_held_bytes <= bound,
        "credit window violated: peak {} bytes > bound {bound}",
        capped.peak_held_bytes
    );
    assert!(
        uncapped.peak_held_bytes > bound,
        "uncapped run never exceeded the bound (peak {}), the assertion \
         above is vacuous",
        uncapped.peak_held_bytes
    );
    assert_eq!(
        capped.held_bytes, 0,
        "engine still holds bytes after teardown"
    );
    // Every relayed fragment grants a credit — except the tail ones whose
    // grants race the sender's exit (its conduits close once the message
    // is fully handed over), at most a window's worth.
    let frags = (TOTAL / MTU) as u64;
    assert!(
        capped.credits_granted >= frags - WINDOW as u64,
        "missing credit grants: granted {} of {frags} fragments",
        capped.credits_granted
    );
    assert_eq!(capped.cancelled, 0);
    assert_eq!(capped.credit_timeouts, 0);
    // Flow control must not cost meaningful bandwidth: the window (8)
    // comfortably covers the pipeline, so the bulk transfer stays within
    // 5% of the uncapped baseline on the virtual clock.
    assert!(
        t_capped as f64 <= t_uncapped as f64 * 1.05,
        "flow control cost too much bandwidth: {t_capped} ns vs {t_uncapped} ns"
    );
}

/// Fault-injection soak on the paper's two-cluster topology: jitter and
/// stalls on one inbound link, a silently dead receiver host behind the
/// gateway. The healthy stream must arrive intact; the stream toward the
/// dead host must degrade into a *typed* error at its sender (peer
/// unreachable or credit timeout, depending on how the cancel races); the
/// session must tear down without hanging and with clean gateway
/// accounting. Seeded via `MAD_SOAK_SEED`.
#[test]
fn fault_soak_stall_jitter_peer_death() {
    const HEALTHY: usize = 200_000;
    const DOOMED: usize = 128 * 1024;
    const MTU: usize = 4096;

    let tb = Testbed::new(5);
    // Perturb the healthy sender's first hop: seeded delivery jitter plus
    // occasional 1 ms stalls.
    tb.fault_link(
        0,
        2,
        LinkFault {
            jitter_max: SimDuration::from_micros(200),
            stall_prob: 0.05,
            stall: SimDuration::from_millis(1),
            seed: soak_seed(),
            ..Default::default()
        },
    );
    // Host 4 is dead from the start: every packet to or from it silently
    // vanishes after the send-side overhead — nobody is notified.
    tb.kill_host(4, 0);

    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(MTU),
            gateway: GatewayConfig {
                credit_window: Some(4),
                credit_timeout_ns: 50_000_000, // 50 virtual ms
                drain_timeout_ns: 100_000_000, // 100 virtual ms
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let (results, stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // Healthy stream 0 → 3, through the faulty (but alive) link.
                let data = payload(0, 3, 0, HEALTHY);
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                Ok(())
            }
            1 => {
                // Doomed stream 1 → 4: the gateway's retransmit toward the
                // dead host fails, the stream is cancelled, and the typed
                // error propagates back here through the credit machinery.
                let data = payload(1, 4, 0, DOOMED);
                (|| {
                    let mut w = vc.begin_packing(NodeId(4))?;
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper)?;
                    w.end_packing()
                })()
            }
            2 => Ok(()), // the gateway
            3 => {
                let mut buf = vec![0u8; HEALTHY];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(buf, payload(0, 3, 0, HEALTHY), "healthy stream corrupted");
                Ok(())
            }
            4 => Ok(()), // dead host: must not block on receives that never come
            _ => unreachable!(),
        }
    });

    assert!(
        results[0].is_ok(),
        "healthy sender failed: {:?}",
        results[0]
    );
    match &results[1] {
        Err(MadError::PeerUnreachable(peer)) => assert_eq!(*peer, NodeId(4)),
        Err(MadError::CreditTimeout { dest, .. }) => assert_eq!(*dest, NodeId(4)),
        other => panic!("doomed sender must fail typed, got {other:?}"),
    }
    assert!(results[3].is_ok());

    // Gateway accounting: the healthy stream relayed in full, the doomed
    // one cancelled, nothing left resident in the engine.
    assert_eq!(stats.len(), 1);
    let t = stats[0].2.totals();
    assert!(t.messages >= 1, "healthy message not relayed");
    assert!(t.cancelled >= 1, "the doomed stream was never cancelled");
    assert_eq!(t.held_bytes, 0, "engine leaked resident bytes");
    assert!(
        t.fragment_bytes >= HEALTHY as u64,
        "healthy payload not fully relayed"
    );
}

/// The pool tentpole, asserted end-to-end on the simulated backend: once
/// the recycle loop is warm, a fault-free forwarded workload performs
/// *zero* heap allocations per fragment — every staging, landing, and
/// control buffer is a pool hit. Warm-up rounds populate the size-class
/// free lists; after them the session-wide miss counter must not move,
/// while the get counter keeps growing with traffic. Runs with transmit
/// batching and flow control on, so grant/cancel control buffers and
/// batch-split copies are covered by the assertion too.
#[test]
fn pool_reaches_zero_miss_steady_state() {
    const ROUNDS: u32 = 12;
    const WARMUP: u32 = 4;
    const LEN: usize = 20_000;
    const MTU: usize = 1024;

    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("fe", tb.driver(SimTech::FastEthernet), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(MTU),
            gateway: GatewayConfig {
                pipeline_depth: 16,
                credit_window: Some(8),
                max_batch: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let marks = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        let mut warm = (0u64, 0u64);
        for i in 0..ROUNDS {
            match node.rank().0 {
                0 => {
                    let data = payload(0, 2, i, LEN);
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                1 => {} // the gateway: engine threads do the work
                2 => {
                    let mut buf = vec![0u8; LEN];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, 2, i, LEN), "round {i}");
                }
                _ => unreachable!(),
            }
            // Round boundary: the message is fully consumed end-to-end
            // before anyone snapshots or sends again.
            node.barrier().wait();
            if i + 1 == WARMUP {
                let s = rt.pool().stats();
                warm = (s.gets, s.misses);
            }
        }
        let s = rt.pool().stats();
        (warm, (s.gets, s.misses))
    });

    let ((warm_gets, warm_misses), (end_gets, end_misses)) = marks[1];
    assert!(
        end_gets > warm_gets + 100,
        "steady-state rounds barely touched the pool ({warm_gets} → {end_gets} \
         gets) — the assertion below would be vacuous"
    );
    assert_eq!(
        end_misses,
        warm_misses,
        "pool missed {} times after warm-up: the gateway/GTM path is \
         allocating per fragment again",
        end_misses - warm_misses
    );
}

/// Multi-path death soak, seeded: a width-3 parallel-gateway fabric
/// relays a schedule of bulk streams while one gateway — chosen by the
/// seed — silently dies at a seeded point mid-schedule. The routing
/// plane must retire the dead path (`deaths >= 1`), every stream must
/// arrive intact and exactly once on a surviving gateway, the plane's
/// byte accounting must balance, and the session must tear down with
/// zero hangs. Which streams need a mid-flight *failover* (vs. being
/// caught at their header send and merely re-routed) depends on the
/// schedule, so failovers are not asserted — delivery is.
#[test]
fn multipath_death_soak_delivers_every_stream() {
    const MSGS: u32 = 18;

    // Seeded schedule: bulk sizes, the victim gateway, and the kill time.
    let mut rng = Rng::new(soak_seed() ^ 0x4D50_4454); // "MPDT"
    let sizes: Vec<usize> = (0..MSGS)
        .map(|_| rng.gen_range(100_000..300_000usize))
        .collect();
    let victim = rng.gen_range(1..4usize) as u32; // one of gateways 1..3
    let kill_at_ns = 10_000_000 + rng.gen_range(0..20_000_000usize) as u64;
    let sizes = std::sync::Arc::new(sizes);

    // net0 {0,1,2,3} Myrinet, net1 {1,2,3,4} Sci: ranks 1–3 all span the
    // clusters, so the plan for 0 → 4 has width 3.
    let tb = Testbed::new(5);
    tb.kill_host(victim as usize, kill_at_ns);
    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2, 3]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(MultipathConfig::default()),
            gateway: GatewayConfig {
                drain_timeout_ns: 100_000_000, // dead engine must not hang teardown
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let sizes2 = sizes.clone();
    let deaths = sb.run(move |node| {
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for (i, &len) in sizes2.iter().enumerate() {
                    let data = payload(0, 4, i as u32, len);
                    let mut w = vc.begin_packing(NodeId(4)).unwrap();
                    // Streams on different paths may overtake each other,
                    // so stamp the index for the receiver.
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                let mp = vc.multipath().expect("multipath enabled");
                // Conservation: every delivered byte is accounted to the
                // path that actually carried it, replays included.
                let total: u64 = mp.path_bytes().iter().map(|&(_, b)| b).sum();
                let expect: u64 = sizes2.iter().map(|&l| l as u64 + 1).sum();
                assert_eq!(total, expect, "path accounting out of balance");
                mp.counters().deaths
            }
            4 => {
                let mut seen = vec![false; MSGS as usize];
                for _ in 0..MSGS {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let len = sizes2[i as usize];
                    let mut buf = vec![0u8; len];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(0, 4, i, len), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "missing streams: {seen:?}");
                0
            }
            _ => 0, // the three gateways (one of them doomed)
        }
    });
    assert!(
        deaths[0] >= 1,
        "gateway {victim} died at {kill_at_ns} ns but the routing plane never retired it"
    );
}

/// Two plain channels over the same network are independent ordering
/// domains (paper §2.1.2: "in-order delivery is only enforced ... within
/// the same channel") — and traffic on one never leaks into the other.
#[test]
fn channels_are_isolated_worlds() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm", ShmDriver::new(rt), &[0, 1]);
    sb.channel("alpha", net);
    sb.channel("beta", net);
    let ok = sb.run(|node| {
        let alpha = node.channel("alpha");
        let beta = node.channel("beta");
        if node.rank() == NodeId(0) {
            // Interleave sends across the two channels.
            for i in 0..20u8 {
                let a_byte = [i];
                let mut w = alpha.begin_packing(NodeId(1)).unwrap();
                w.pack(&a_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
                let b_byte = [100 + i];
                let mut w = beta.begin_packing(NodeId(1)).unwrap();
                w.pack(&b_byte, SendMode::Safer, RecvMode::Express).unwrap();
                w.end_packing().unwrap();
            }
            true
        } else {
            // Drain beta entirely first: alpha's traffic must be untouched
            // and still in order afterwards.
            for i in 0..20u8 {
                let mut r = beta.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], 100 + i);
            }
            for i in 0..20u8 {
                let mut r = alpha.begin_unpacking().unwrap();
                let mut b = [0u8; 1];
                r.unpack(&mut b, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(b[0], i);
            }
            true
        }
    });
    assert!(ok.into_iter().all(|x| x));
}
