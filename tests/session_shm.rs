//! End-to-end session tests over the real shared-memory driver: plain
//! channels, virtual channels, gateway forwarding, multi-gateway chains.

use mad_shm::ShmDriver;
use madeleine::gateway::GatewayConfig;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn plain_channel_ping_pong() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm0", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let results = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let data = payload(4096, 7);
            let mut msg = ch.begin_packing(NodeId(1)).unwrap();
            msg.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            msg.end_packing().unwrap();
            let mut back = vec![0u8; 4096];
            let mut r = ch.begin_unpacking().unwrap();
            r.unpack(&mut back, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            back == data
        } else {
            let mut buf = vec![0u8; 4096];
            let mut r = ch.begin_unpacking().unwrap();
            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            let mut msg = ch.begin_packing(NodeId(0)).unwrap();
            msg.pack(&buf, SendMode::Later, RecvMode::Cheaper).unwrap();
            msg.end_packing().unwrap();
            true
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn multi_block_message_with_mixed_flags() {
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm0", ShmDriver::new(rt), &[0, 1]);
    sb.channel("ch", net);
    let results = sb.run(|node| {
        let ch = node.channel("ch");
        if node.rank() == NodeId(0) {
            let a = payload(100, 1);
            let b = payload(5000, 2);
            let c = payload(3, 3);
            let d = payload(64 * 1024, 4);
            let mut msg = ch.begin_packing(NodeId(1)).unwrap();
            msg.pack(&a, SendMode::Safer, RecvMode::Express).unwrap();
            msg.pack(&b, SendMode::Later, RecvMode::Cheaper).unwrap();
            msg.pack(&c, SendMode::Cheaper, RecvMode::Cheaper).unwrap();
            msg.pack(&d, SendMode::Later, RecvMode::Express).unwrap();
            msg.end_packing().unwrap();
            true
        } else {
            let mut a = vec![0u8; 100];
            let mut b = vec![0u8; 5000];
            let mut c = vec![0u8; 3];
            let mut d = vec![0u8; 64 * 1024];
            let mut r = ch.begin_unpacking().unwrap();
            r.unpack(&mut a, SendMode::Safer, RecvMode::Express)
                .unwrap();
            assert_eq!(a, payload(100, 1), "express data valid immediately");
            r.unpack(&mut b, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.unpack(&mut c, SendMode::Cheaper, RecvMode::Cheaper)
                .unwrap();
            r.unpack(&mut d, SendMode::Later, RecvMode::Express)
                .unwrap();
            r.end_unpacking().unwrap();
            a == payload(100, 1)
                && b == payload(5000, 2)
                && c == payload(3, 3)
                && d == payload(64 * 1024, 4)
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn vchannel_direct_delivery() {
    // Two nodes on one network: the virtual channel must not forward.
    let mut sb = SessionBuilder::new(2);
    let rt = sb.runtime().clone();
    let net = sb.network("shm0", ShmDriver::new(rt), &[0, 1]);
    sb.vchannel("vc", &[net], VcOptions::default());
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        if node.rank() == NodeId(0) {
            assert!(!vc.is_forwarded(NodeId(1)).unwrap());
            let data = payload(10_000, 9);
            let mut w = vc.begin_packing(NodeId(1)).unwrap();
            assert!(!w.is_forwarded());
            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            true
        } else {
            let mut r = vc.begin_unpacking().unwrap();
            assert!(!r.is_forwarded());
            assert_eq!(r.source(), NodeId(0));
            let mut buf = vec![0u8; 10_000];
            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                .unwrap();
            r.end_unpacking().unwrap();
            buf == payload(10_000, 9)
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn vchannel_forwarded_through_one_gateway() {
    // net0: {0, 1}; net1: {1, 2}. Node 1 is the gateway; 0 → 2 forwarded.
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(4096),
            ..Default::default()
        },
    );
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                assert!(vc.is_forwarded(NodeId(2)).unwrap());
                let small = payload(10, 1);
                let big = payload(100_000, 2);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                assert!(w.is_forwarded());
                w.pack(&small, SendMode::Safer, RecvMode::Express).unwrap();
                w.pack(&big, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true, // gateway: engine threads do the work
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                assert!(r.is_forwarded());
                assert_eq!(r.source(), NodeId(0));
                let mut small = vec![0u8; 10];
                let mut big = vec![0u8; 100_000];
                r.unpack(&mut small, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                r.unpack(&mut big, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                small == payload(10, 1) && big == payload(100_000, 2)
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn vchannel_two_gateway_chain() {
    // net0: {0,1}; net1: {1,2}; net2: {2,3}. Message 0 → 3 crosses both
    // gateways — the multi-gateway disambiguation case of §2.2.2.
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt.clone()), &[1, 2]);
    let n2 = sb.network("shm2", ShmDriver::new(rt), &[2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1, n2],
        VcOptions {
            mtu: Some(1024),
            ..Default::default()
        },
    );
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = payload(50_000, 5);
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                // And a reply comes back the other way.
                let mut r = vc.begin_unpacking().unwrap();
                assert_eq!(r.source(), NodeId(3));
                let mut ack = vec![0u8; 16];
                r.unpack(&mut ack, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                ack == payload(16, 6)
            }
            1 | 2 => true,
            3 => {
                let mut r = vc.begin_unpacking().unwrap();
                assert_eq!(r.source(), NodeId(0));
                let mut buf = vec![0u8; 50_000];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                let ok = buf == payload(50_000, 5);
                let ack = payload(16, 6);
                let mut w = vc.begin_packing(NodeId(0)).unwrap();
                w.pack(&ack, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                ok
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn gateway_node_also_receives_its_own_messages() {
    // The gateway is a regular node too (paper §2.2.2): messages addressed
    // to it arrive on the regular channel and must not enter the engine.
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel("vc", &[n0, n1], VcOptions::default());
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = payload(1000, 3);
                let mut w = vc.begin_packing(NodeId(1)).unwrap();
                assert!(!w.is_forwarded(), "0→1 share net0: direct");
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => {
                let mut r = vc.begin_unpacking().unwrap();
                assert!(!r.is_forwarded());
                assert_eq!(r.source(), NodeId(0));
                let mut buf = vec![0u8; 1000];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(1000, 3)
            }
            2 => true,
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn many_messages_keep_order_per_connection() {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(512),
            ..Default::default()
        },
    );
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                for i in 0..50u32 {
                    let data = payload(1 + (i as usize * 37) % 2000, i as u8);
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => true,
            2 => {
                for i in 0..50u32 {
                    let expect = payload(1 + (i as usize * 37) % 2000, i as u8);
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut buf = vec![0u8; expect.len()];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, expect, "message {i} out of order or corrupt");
                }
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn pipeline_depth_one_still_correct() {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(2048),
            gateway: GatewayConfig {
                pipeline_depth: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let results = sb.run(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                let data = payload(30_000, 8);
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                true
            }
            1 => true,
            2 => {
                let mut r = vc.begin_unpacking().unwrap();
                let mut buf = vec![0u8; 30_000];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                buf == payload(30_000, 8)
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn barrier_synchronizes_phases() {
    let mut sb = SessionBuilder::new(4);
    let rt = sb.runtime().clone();
    let net = sb.network("shm0", ShmDriver::new(rt), &[0, 1, 2, 3]);
    sb.channel("ch", net);
    let results = sb.run(|node| {
        for _ in 0..10 {
            node.barrier().wait();
        }
        node.rank().0
    });
    let mut sorted = results.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3]);
}

#[test]
fn gateway_stats_count_relayed_traffic() {
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(1000),
            ..Default::default()
        },
    );
    let (results, stats) = sb.run_with_gateway_stats(|node| {
        let vc = node.vchannel("vc");
        match node.rank().0 {
            0 => {
                // Two messages: 2500 bytes (3 fragments) + 10 bytes (1).
                for len in [2500usize, 10] {
                    let data = payload(len, 7);
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => true,
            2 => {
                for len in [2500usize, 10] {
                    let mut buf = vec![0u8; len];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(len, 7));
                }
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|ok| ok));
    assert_eq!(stats.len(), 1, "one gateway engine");
    let (vc_name, gw, s) = &stats[0];
    assert_eq!(vc_name, "vc");
    assert_eq!(*gw, NodeId(1));
    let (messages, fragments, bytes) = s.snapshot();
    assert_eq!(messages, 2);
    assert_eq!(fragments, 3 + 1);
    assert_eq!(bytes, 2510);
    // The same traffic, resolved per (source, destination) stream pair.
    let per = s.per_stream();
    assert_eq!(per.len(), 1, "all traffic is one 0→2 pair");
    let ((src, dest), c) = per[0];
    assert_eq!((src, dest), (NodeId(0), NodeId(2)));
    assert_eq!(c.messages, 2);
    assert_eq!(c.fragments, 4);
    assert_eq!(c.bytes, 2510);
}
