#!/usr/bin/env bash
# Regenerate every figure, table, ablation and extension of the paper's
# evaluation. Tables print to stdout; CSVs land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."

# Gate first: nothing below is worth trusting if the build or tests are red.
./scripts/ci.sh

BINS=(
  table1_raw_networks
  fig5_pipeline_trace
  fig6_sci_to_myri
  fig7_myri_to_sci
  fig8_conflict_trace
  table2_pipeline_period
  table3_peak_vs_bus
  ablation_forwarding_strategies
  ablation_zero_copy
  ablation_pipeline_depth
  ablation_flow_control
  ablation_switch_overhead
  ablation_hol_blocking
  ablation_batching
  ext_mpi_collectives
  ext_copy_matrix
  ext_bidirectional
  ext_gateway_chain
)

cargo build --release -p mad-bench --bins
for b in "${BINS[@]}"; do
  echo
  echo "################ $b ################"
  cargo run --release -q -p mad-bench --bin "$b"
done

echo
echo "################ microbenches (mad_util::microbench) ################"
cargo bench -p mad-bench --bench microbench
