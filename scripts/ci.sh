#!/usr/bin/env bash
# Tier-1 verification gate, runnable with zero network access.
#
# The workspace has no crates.io dependencies (see crates/mad-util), so
# `--offline` is not a restriction but a statement of fact: if resolution
# ever needs the network, that is a regression and must fail loudly here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo
echo "== cargo test -q --offline"
cargo test -q --offline

# The randomized soaks, pinned to a fixed seed so CI failures reproduce
# byte-for-byte (developers can explore other schedules by exporting
# their own MAD_SOAK_SEED). This includes the fault-injection soak:
# seeded jitter/stall on a live link plus a silently dead host, which
# must surface as typed errors — zero hangs, zero panics.
echo
echo "== soak + fault-injection tests (MAD_SOAK_SEED=20010914)"
MAD_SOAK_SEED=20010914 cargo test -q --offline --release --test soak

# The same soaks — plus the teardown-drain and multi-path suites — under
# the reactor engine core. MAD_ENGINE=reactor flips every
# GatewayConfig::engine default, so the identical test bodies exercise
# the poll-driven engine; byte-identical forwarding between the two
# cores is property-checked by tests/prop_engine.rs in the main pass.
echo
echo "== soak + drain + multipath suites, reactor engine (MAD_ENGINE=reactor)"
MAD_SOAK_SEED=20010914 MAD_ENGINE=reactor cargo test -q --offline --release --test soak
MAD_ENGINE=reactor cargo test -q --offline --release --test gateway_drain
MAD_ENGINE=reactor cargo test -q --offline --release --test multipath
MAD_ENGINE=reactor cargo test -q --offline --release --test metrics

# The dynamic-membership suite under both engine cores: the seeded churn
# soak (join/leave/rejoin under bulk traffic — zero hangs, zero lost
# acknowledged streams, zero stale-incarnation drops) plus the
# self-tuning controller's starvation response.
echo
echo "== membership suite, both engine cores (MAD_SOAK_SEED=20010914)"
MAD_SOAK_SEED=20010914 cargo test -q --offline --release --test membership
MAD_SOAK_SEED=20010914 MAD_ENGINE=reactor cargo test -q --offline --release --test membership

# One traced run on each backend (sim, fault-injected sim with a credit
# window, shm), then validate the exported JSONL against the schema
# checker: every line must parse, carry the required keys, and keep
# per-thread timestamps monotone — under fault injection too.
echo
echo "== traced runs (incl. fault-injected) + JSONL schema validation"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q --release --offline --example trace_dump -- "$trace_dir/ci"

# A7 smoke: a reduced transmit-batching sweep (including its occupancy-
# bound assertion) with a traced batched run. Smoke mode skips the CSVs
# so it never clobbers the committed full-grid results.
echo
echo "== ablation_batching --smoke (gateway transmit batching)"
cargo run -q --release --offline -p mad-bench --bin ablation_batching -- \
  --smoke --trace "$trace_dir/a7.jsonl"

# A8 smoke: multi-path gateway scaling (with its >=1.6x two-path
# aggregate-bandwidth assertion) plus the seeded gateway-death soak, with
# a traced 2-gateway run — the one trace that must carry the `route:`
# track, which trace_check enforces via --require-route.
echo
echo "== multipath_scaling --smoke (multi-path gateway fabrics)"
cargo run -q --release --offline -p mad-bench --bin multipath_scaling -- \
  --smoke --trace "$trace_dir/a8.jsonl"

# A9 smoke: the reactor engine core — channel scaling at the 32-thread
# budget (with its >=8x assertion) and single-stream bulk parity (within
# 5% of the threaded engine, asserted). Smoke mode skips the CSVs.
echo
echo "== reactor_scaling --smoke (reactor engine core)"
cargo run -q --release --offline -p mad-bench --bin reactor_scaling -- --smoke

# A10 smoke: the telemetry plane's price — registry primitive costs plus
# the forwarded bulk/short-message runs with metrics off vs on, asserting
# the modeled throughput moves < 2% and the per-fragment registry cost
# stays < 2% of the forwarding time. Smoke mode skips the CSVs.
echo
echo "== metrics_overhead --smoke (A10 telemetry-plane overhead)"
cargo run -q --release --offline -p mad-bench --bin metrics_overhead -- --smoke

# mad_top, once per engine core: a metrics-enabled run whose mid-run
# in-band kind-10 pull must reach all 5 nodes (asserted by the binary)
# and whose exported trace must carry the metrics: track — enforced via
# trace_check --require-metrics below.
echo
echo "== mad_top --once, both engine cores, traced (in-band metrics pull)"
cargo run -q --release --offline -p mad-bench --bin mad_top -- \
  --once --trace "$trace_dir/madtop.jsonl"
MAD_ENGINE=reactor cargo run -q --release --offline -p mad-bench --bin mad_top -- \
  --once --trace "$trace_dir/madtop-reactor.jsonl"

# The same multi-path traced run under the reactor engine: its export
# must still carry the route: track (enforced via --require-route below)
# and now also the rt: thread-budget track the schema validates.
echo
echo "== multipath_scaling --smoke, reactor engine, traced"
MAD_ENGINE=reactor cargo run -q --release --offline -p mad-bench --bin multipath_scaling -- \
  --smoke --trace "$trace_dir/a8-reactor.jsonl"

# A11 smoke, both engine cores: the seeded membership-churn soak with its
# in-binary delivery/readmission/stale-drop assertions, traced — the
# exports must carry the member: and ctl: tracks, enforced via
# trace_check --require-membership below.
echo
echo "== membership_churn --smoke, both engine cores, traced (A11 dynamic membership)"
MAD_SOAK_SEED=20010914 cargo run -q --release --offline -p mad-bench --bin membership_churn -- \
  --smoke --trace "$trace_dir/a11.jsonl"
MAD_SOAK_SEED=20010914 MAD_ENGINE=reactor cargo run -q --release --offline -p mad-bench --bin membership_churn -- \
  --smoke --trace "$trace_dir/a11-reactor.jsonl"

# A12 smoke, both engine cores: the eager/rendezvous crossover sweep
# (bulk rendezvous must beat eager, eager must never handshake) plus the
# paced mixed-protocol leg with its >=80% idle-placement and
# zero-steady-state-pool-miss assertions, traced — the exports must
# carry the proto: track, enforced via trace_check --require-proto
# below.
echo
echo "== a12_protocol_crossover --smoke, both engine cores, traced (A12 protocol switch)"
cargo run -q --release --offline -p mad-bench --bin a12_protocol_crossover -- \
  --smoke --trace "$trace_dir/a12.jsonl"
MAD_ENGINE=reactor cargo run -q --release --offline -p mad-bench --bin a12_protocol_crossover -- \
  --smoke --trace "$trace_dir/a12-reactor.jsonl"

cargo run -q --release --offline -p mad-bench --bin trace_check -- \
  "$trace_dir/ci.sim.jsonl" "$trace_dir/ci.fault.jsonl" "$trace_dir/ci.shm.jsonl" \
  "$trace_dir/a7.jsonl"
cargo run -q --release --offline -p mad-bench --bin trace_check -- \
  --require-route "$trace_dir/a8.jsonl" "$trace_dir/a8-reactor.jsonl"
cargo run -q --release --offline -p mad-bench --bin trace_check -- \
  --require-metrics "$trace_dir/madtop.jsonl" "$trace_dir/madtop-reactor.jsonl"
cargo run -q --release --offline -p mad-bench --bin trace_check -- \
  --require-membership "$trace_dir/a11.jsonl" "$trace_dir/a11-reactor.jsonl"
cargo run -q --release --offline -p mad-bench --bin trace_check -- \
  --require-proto "$trace_dir/a12.jsonl" "$trace_dir/a12-reactor.jsonl"

# Lints gate only when clippy is actually installed (sealed containers
# may ship a toolchain without the component).
if cargo clippy --version >/dev/null 2>&1; then
  echo
  echo "== cargo clippy -q --all-targets"
  cargo clippy -q --all-targets --offline -- -D warnings
else
  echo
  echo "== cargo clippy skipped (clippy not installed)"
fi

# Formatting is checked only when a rustfmt binary is actually present:
# minimal toolchains in sealed containers may lack the component.
if cargo fmt --version >/dev/null 2>&1; then
  echo
  echo "== cargo fmt --check"
  cargo fmt --check
else
  echo
  echo "== cargo fmt --check skipped (rustfmt not installed)"
fi

echo
echo "ci: all gates passed"
