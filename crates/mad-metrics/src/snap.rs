//! Plain snapshots of a [`crate::Registry`], their compact wire
//! encoding (the payload of Madeleine's kind-10 metrics packets), and
//! the Prometheus-style / CSV exposition renderers.

use crate::HistSnapshot;

/// Wire format version of [`Snapshot::encode_into`].
const WIRE_VERSION: u8 = 1;

/// A point-in-time copy of one node's instruments, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, count)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value, peak)` per gauge.
    pub gauges: Vec<(String, i64, i64)>,
    /// `(name, buckets)` per histogram.
    pub hists: Vec<(String, HistSnapshot)>,
    /// True when an encode dropped entries to fit its byte budget (or
    /// the decoded wire image said so).
    pub truncated: bool,
}

/// Why a wire image failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The image is shorter than its own length fields claim.
    Truncated,
    /// Unknown wire version byte.
    Version(u8),
    /// A name is not UTF-8.
    BadName,
    /// A histogram bucket index is out of range.
    BadBucket(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "metrics image shorter than its length fields"),
            DecodeError::Version(v) => write!(f, "unknown metrics wire version {v}"),
            DecodeError::BadName => write!(f, "metrics name is not UTF-8"),
            DecodeError::BadBucket(i) => write!(f, "histogram bucket index {i} out of range"),
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(DecodeError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| DecodeError::BadName)
    }
}

impl Snapshot {
    /// Encode into `out` (cleared first), dropping whole trailing
    /// entries rather than exceed `budget` bytes; a drop sets the
    /// `truncated` flag in the image. Histograms ship only their
    /// non-zero buckets, so a quiet histogram costs its name plus 17
    /// bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>, budget: usize) {
        out.clear();
        out.push(WIRE_VERSION);
        out.push(0); // truncated flag, patched below
        let mut truncated = self.truncated;
        let mut scratch = Vec::new();

        // Three u16 section counts are accounted up front so a section
        // never loses its header to an earlier section's entries.
        let reserved = 3 * 2usize;
        let fits = |out: &Vec<u8>, extra: usize, headers_left: usize| {
            out.len() + extra + headers_left <= budget
        };

        let count_at = out.len();
        put_u16(out, 0);
        let mut n = 0u16;
        for (name, v) in &self.counters {
            scratch.clear();
            put_name(&mut scratch, name);
            put_u64(&mut scratch, *v);
            if !fits(out, scratch.len(), reserved - 2) || n == u16::MAX {
                truncated = true;
                break;
            }
            out.extend_from_slice(&scratch);
            n += 1;
        }
        out[count_at..count_at + 2].copy_from_slice(&n.to_le_bytes());

        let count_at = out.len();
        put_u16(out, 0);
        let mut n = 0u16;
        for (name, v, peak) in &self.gauges {
            scratch.clear();
            put_name(&mut scratch, name);
            put_u64(&mut scratch, *v as u64);
            put_u64(&mut scratch, *peak as u64);
            if !fits(out, scratch.len(), reserved - 4) || n == u16::MAX {
                truncated = true;
                break;
            }
            out.extend_from_slice(&scratch);
            n += 1;
        }
        out[count_at..count_at + 2].copy_from_slice(&n.to_le_bytes());

        let count_at = out.len();
        put_u16(out, 0);
        let mut n = 0u16;
        for (name, h) in &self.hists {
            scratch.clear();
            put_name(&mut scratch, name);
            put_u64(&mut scratch, h.sum);
            put_u64(&mut scratch, h.max);
            let nonzero: Vec<(u8, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i as u8, c))
                .collect();
            scratch.push(nonzero.len() as u8);
            for (i, c) in nonzero {
                scratch.push(i);
                put_u64(&mut scratch, c);
            }
            if !fits(out, scratch.len(), 0) || n == u16::MAX {
                truncated = true;
                break;
            }
            out.extend_from_slice(&scratch);
            n += 1;
        }
        out[count_at..count_at + 2].copy_from_slice(&n.to_le_bytes());

        if truncated {
            out[1] = 1;
        }
    }

    /// Decode a wire image produced by [`Snapshot::encode_into`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut c = Cursor { buf: bytes, at: 0 };
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(DecodeError::Version(version));
        }
        let truncated = c.u8()? != 0;

        let n = c.u16()?;
        let mut counters = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = c.name()?;
            counters.push((name, c.u64()?));
        }

        let n = c.u16()?;
        let mut gauges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = c.name()?;
            let v = c.u64()? as i64;
            let peak = c.u64()? as i64;
            gauges.push((name, v, peak));
        }

        let n = c.u16()?;
        let mut hists = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = c.name()?;
            let mut h = HistSnapshot {
                sum: c.u64()?,
                max: c.u64()?,
                ..Default::default()
            };
            let nonzero = c.u8()?;
            for _ in 0..nonzero {
                let idx = c.u8()?;
                let count = c.u64()?;
                *h.buckets
                    .get_mut(idx as usize)
                    .ok_or(DecodeError::BadBucket(idx))? = count;
            }
            hists.push((name, h));
        }

        Ok(Snapshot {
            counters,
            gauges,
            hists,
            truncated,
        })
    }

    /// Look a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look a gauge up by name: `(value, peak)`.
    pub fn gauge(&self, name: &str) -> Option<(i64, i64)> {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, v, p)| (v, p))
    }

    /// Look a histogram up by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Render Prometheus-style exposition text. Every series carries
    /// `labels` (e.g. `[("node", "3")]`); histograms expose `_count`,
    /// `_sum`, `_max` and `{quantile=...}` series from the log2
    /// buckets.
    pub fn render_prometheus(&self, out: &mut String, labels: &[(&str, &str)]) {
        use std::fmt::Write;
        let label_str = |extra: Option<(&str, &str)>| {
            let mut s = String::new();
            let mut first = true;
            for (k, v) in labels.iter().copied().chain(extra) {
                s.push(if first { '{' } else { ',' });
                first = false;
                let _ = write!(s, "{k}=\"{v}\"");
            }
            if !first {
                s.push('}');
            }
            s
        };
        let sane = |name: &str| {
            name.chars()
                .map(|ch| if ch.is_ascii_alphanumeric() { ch } else { '_' })
                .collect::<String>()
        };
        for (name, v) in &self.counters {
            let name = sane(name);
            let _ = writeln!(out, "# TYPE mad_{name} counter");
            let _ = writeln!(out, "mad_{name}{} {v}", label_str(None));
        }
        for (name, v, peak) in &self.gauges {
            let name = sane(name);
            let _ = writeln!(out, "# TYPE mad_{name} gauge");
            let _ = writeln!(out, "mad_{name}{} {v}", label_str(None));
            let _ = writeln!(out, "mad_{name}_peak{} {peak}", label_str(None));
        }
        for (name, h) in &self.hists {
            let name = sane(name);
            let _ = writeln!(out, "# TYPE mad_{name} summary");
            for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "mad_{name}{} {}",
                    label_str(Some(("quantile", qs))),
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "mad_{name}_count{} {}", label_str(None), h.count());
            let _ = writeln!(out, "mad_{name}_sum{} {}", label_str(None), h.sum);
            let _ = writeln!(out, "mad_{name}_max{} {}", label_str(None), h.max);
        }
    }

    /// Render one CSV block: `kind,name,value,peak_or_sum,max,p50,p90,p99`.
    pub fn render_csv(&self, out: &mut String) {
        use std::fmt::Write;
        if out.is_empty() {
            out.push_str("kind,name,value,peak_or_sum,max,p50,p90,p99\n");
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},{v},,,,,");
        }
        for (name, v, peak) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},{v},{peak},,,,");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist,{name},{},{},{},{},{},{}",
                h.count(),
                h.sum,
                h.max,
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = Snapshot::default();
        let mut wire = Vec::new();
        s.encode_into(&mut wire, 64);
        assert_eq!(Snapshot::decode(&wire).unwrap(), s);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Snapshot::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Snapshot::decode(&[9, 0]), Err(DecodeError::Version(9)));
        // A counter section claiming an entry the image doesn't have.
        assert_eq!(Snapshot::decode(&[1, 0, 5, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn exposition_renders() {
        let r = crate::Registry::new();
        r.counter("degradations").add(2);
        r.gauge("queue_depth").set(7);
        r.histogram("gw_forward_ns").record(4096);
        let snap = r.snapshot();
        let mut prom = String::new();
        snap.render_prometheus(&mut prom, &[("node", "2")]);
        assert!(prom.contains("mad_queue_depth{node=\"2\"}"));
        assert!(prom.contains("# TYPE mad_gw_forward_ns summary"));
        let mut csv = String::new();
        snap.render_csv(&mut csv);
        assert!(csv.starts_with("kind,name,"));
        assert!(csv.contains("gauge,queue_depth,"));
    }
}
