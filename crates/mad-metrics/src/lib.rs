//! # mad-metrics — the live, lock-free metrics registry
//!
//! Where `mad-trace` (PR 3) answers "what happened?" after a run
//! flushes, this crate answers "what is happening *right now*?": a
//! std-only, per-node [`Registry`] of named counters, gauges, and
//! log2-bucketed latency histograms ([`mad_util::hist`]) whose hot-path
//! handles are plain `Arc`'d relaxed atomics — recording a sample is a
//! handful of uncontended atomic adds, never a lock, never an
//! allocation. The registry's name table *is* behind a mutex, but only
//! handle creation (wiring time) and snapshots (sampling time) touch
//! it.
//!
//! A [`Snapshot`] is a plain copy of every instrument, taken while the
//! node runs. Snapshots encode to a compact length-prefixed wire form
//! ([`Snapshot::encode_into`], budget-bounded with a `truncated` flag)
//! so Madeleine's GTM layer can carry them across clusters in a single
//! control packet (the kind-10 in-band pull), and render to
//! Prometheus-style exposition text or CSV for scraping and offline
//! diffing.
//!
//! The `noop` cargo feature compiles every recording call to nothing
//! (same contract as `mad-trace/noop`): [`COMPILED_IN`] flips to
//! `false`, handle methods become empty inlinable bodies, and the A10
//! overhead bench uses exactly this to bound the compiled-out cost.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use mad_util::hist::AtomicHistogram;
use mad_util::sync::Mutex;

mod snap;

pub use mad_util::hist::{bucket_bounds, bucket_index, HistSnapshot, BUCKETS};
pub use snap::{DecodeError, Snapshot};

/// Whether recording is compiled in (`false` under the `noop` feature).
pub const COMPILED_IN: bool = cfg!(not(feature = "noop"));

/// A monotonically increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if COMPILED_IN {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level with a high-water mark. `add`/`set`
/// keep the peak in step, so a queue-depth gauge reports both the level
/// right now and the deepest it has ever been.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// Move the level by `d` (negative to drop).
    #[inline]
    pub fn add(&self, d: i64) {
        if COMPILED_IN {
            let now = self.0.value.fetch_add(d, Ordering::Relaxed).wrapping_add(d);
            self.0.peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Set the level outright (sampled gauges: thread counts, pool
    /// counters mirrored from another subsystem).
    #[inline]
    pub fn set(&self, v: i64) {
        if COMPILED_IN {
            self.0.value.store(v, Ordering::Relaxed);
            self.0.peak.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set or reached.
    pub fn peak(&self) -> i64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram handle ([`mad_util::hist::AtomicHistogram`]).
#[derive(Debug, Clone)]
pub struct Hist(Arc<AtomicHistogram>);

impl Hist {
    /// Record one sample (typically a nanosecond duration).
    #[inline]
    pub fn record(&self, value: u64) {
        if COMPILED_IN {
            self.0.record(value);
        }
    }

    /// The shared histogram itself, for subsystems that record through
    /// `mad_util` directly (the reactor's poll hook).
    pub fn shared(&self) -> Arc<AtomicHistogram> {
        self.0.clone()
    }

    /// Copy the current buckets out.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

/// One node's named instruments. Handle lookup interns the name behind
/// a short-lived lock; the returned [`Counter`]/[`Gauge`]/[`Hist`] is a
/// plain `Arc` the caller caches at wiring time, so steady-state
/// recording never sees the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    hists: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Counter(c.clone()),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_string(), c.clone());
                Counter(c)
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Gauge(g.clone()),
            None => {
                let g = Arc::new(GaugeCell::default());
                map.insert(name.to_string(), g.clone());
                Gauge(g)
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Hist {
        let mut map = self.hists.lock();
        match map.get(name) {
            Some(h) => Hist(h.clone()),
            None => {
                let h = Arc::new(AtomicHistogram::new());
                map.insert(name.to_string(), h.clone());
                Hist(h)
            }
        }
    }

    /// Copy every instrument into a plain [`Snapshot`], sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.value.load(Ordering::Relaxed),
                    v.peak.load(Ordering::Relaxed),
                )
            })
            .collect();
        let hists = self
            .hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            hists,
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_util::prop;

    #[test]
    fn registry_handles_share_state() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("x").get(), if COMPILED_IN { 7 } else { 0 });

        let g = r.gauge("depth");
        g.add(5);
        g.add(-2);
        if COMPILED_IN {
            assert_eq!(g.get(), 3);
            assert_eq!(g.peak(), 5);
        }

        let h = r.histogram("lat");
        h.record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.hists.len(), 1);
    }

    /// The ISSUE-mandated histogram property: record/merge preserve the
    /// exact count and sum, every reported quantile lies within its
    /// bucket's bounds, and the saturating top bucket never panics.
    #[test]
    fn prop_histogram_count_sum_and_quantile_bounds() {
        let cfg = prop::Config::default();
        prop::check(
            "hist_count_sum_quantiles",
            &cfg,
            |rng| {
                let n = (rng.next_u64() % 200) as usize;
                let vals: Vec<u64> = (0..n)
                    .map(|_| {
                        // Mix magnitudes: small, mid, and near-max values so
                        // the saturating top bucket is exercised.
                        let shift = rng.next_u64() % 64;
                        rng.next_u64() >> shift
                    })
                    .collect();
                prop::NoShrink(vals)
            },
            |prop::NoShrink(vals)| {
                let h = AtomicHistogram::new();
                let mid = vals.len() / 2;
                let h2 = AtomicHistogram::new();
                for &v in &vals[..mid] {
                    h.record(v);
                }
                for &v in &vals[mid..] {
                    h2.record(v);
                }
                let mut s = h.snapshot();
                s.merge(&h2.snapshot());
                if s.count() != vals.len() as u64 {
                    return Err(format!("count {} != {}", s.count(), vals.len()));
                }
                let want_sum = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
                if s.sum != want_sum {
                    return Err(format!("sum {} != {}", s.sum, want_sum));
                }
                for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                    let v = s.quantile(q);
                    if vals.is_empty() {
                        if v != 0 {
                            return Err("empty quantile not 0".into());
                        }
                        continue;
                    }
                    let (lo, hi) = bucket_bounds(bucket_index(v));
                    if v < lo || v > hi {
                        return Err(format!("q{q} = {v} outside its bucket [{lo}, {hi}]"));
                    }
                    // The quantile's bucket must be non-empty: the value
                    // reported is the bound of a bucket that actually
                    // holds samples (or the clamped max, same bucket).
                    if s.buckets[bucket_index(v)] == 0 && v != s.max {
                        return Err(format!("q{q} = {v} names an empty bucket"));
                    }
                    if v > s.max {
                        return Err(format!("q{q} = {v} exceeds max {}", s.max));
                    }
                }
                Ok(())
            },
        );
    }

    /// Wire roundtrip: an untruncated encode decodes back to the exact
    /// same snapshot.
    #[test]
    fn prop_snapshot_wire_roundtrip() {
        let cfg = prop::Config::default();
        prop::check(
            "snapshot_wire_roundtrip",
            &cfg,
            |rng| {
                let r = Registry::new();
                for i in 0..(rng.next_u64() % 6) {
                    r.counter(&format!("c{i}")).add(rng.next_u64() % 1_000_000);
                }
                for i in 0..(rng.next_u64() % 4) {
                    let g = r.gauge(&format!("g{i}"));
                    g.set((rng.next_u64() % 1000) as i64 - 500);
                }
                for i in 0..(rng.next_u64() % 3) {
                    let h = r.histogram(&format!("h{i}"));
                    for _ in 0..(rng.next_u64() % 50) {
                        h.record(rng.next_u64() >> (rng.next_u64() % 64));
                    }
                }
                prop::NoShrink(r.snapshot())
            },
            |prop::NoShrink(snap)| {
                let mut wire = Vec::new();
                snap.encode_into(&mut wire, usize::MAX);
                let back = Snapshot::decode(&wire).map_err(|e| format!("{e:?}"))?;
                if &back != snap {
                    return Err("decode != original".into());
                }
                Ok(())
            },
        );
    }

    #[test]
    fn truncated_encode_stays_in_budget_and_decodes() {
        let r = Registry::new();
        for i in 0..64 {
            r.counter(&format!("counter_with_a_long_name_{i:03}"))
                .add(i);
            let h = r.histogram(&format!("hist_with_a_long_name_{i:03}"));
            for v in 0..40u64 {
                h.record(1 << (v % 40));
            }
        }
        let snap = r.snapshot();
        let mut wire = Vec::new();
        snap.encode_into(&mut wire, 512);
        assert!(wire.len() <= 512, "encode blew its budget: {}", wire.len());
        let back = Snapshot::decode(&wire).unwrap();
        assert!(back.truncated, "a 512-byte budget must truncate");
        if COMPILED_IN {
            assert!(
                !back.counters.is_empty(),
                "budget fits at least some entries"
            );
        }
    }
}
