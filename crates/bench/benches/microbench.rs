//! Microbenchmarks of the library's real (wall-clock) hot paths, on the
//! in-tree `mad_util::microbench` harness.
//!
//! The figure binaries measure *modeled* 2001 hardware; these benches
//! measure what the Rust implementation itself costs on today's machine:
//! message packing/unpacking, GTM control framing, the shared-memory
//! transport, and an end-to-end gateway pipeline on real threads.

use mad_util::microbench::Harness;

use mad_shm::ShmDriver;
use madeleine::conduit::Driver;
use madeleine::flags::{RecvMode, SendMode};
use madeleine::gtm;
use madeleine::plan;
use madeleine::runtime::StdRuntime;
use madeleine::session::VcOptions;
use madeleine::types::NodeId;
use madeleine::SessionBuilder;

fn bench_pack_unpack(h: &mut Harness) {
    let mut g = h.group("pack_unpack_shm");
    for &size in &[4 * 1024usize, 64 * 1024, 1 << 20] {
        g.throughput_bytes(size as u64);
        g.bench_function(format!("single_block/{size}"), |b| {
            let rt = StdRuntime::shared();
            let driver = ShmDriver::new(rt.clone());
            let (mut tx, mut rx) = driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event());
            let data = vec![7u8; size];
            let mut buf = vec![0u8; size];
            b.iter(|| {
                tx.send(&[&data]).unwrap();
                rx.recv_into(&mut buf).unwrap();
                std::hint::black_box(&buf);
            });
        });
    }
    g.finish();
}

fn bench_gtm_codec(h: &mut Harness) {
    let mut g = h.group("gtm_codec");
    let tag = gtm::StreamTag {
        src: NodeId(3),
        dest: NodeId(9),
        msg_id: 41,
    };
    g.bench_function("encode_decode_header", |b| {
        let h = gtm::GtmHeader::new(tag, 16 * 1024, false);
        b.iter(|| {
            let pkt = gtm::encode_header(std::hint::black_box(&h));
            std::hint::black_box(gtm::decode_packet(&pkt).unwrap())
        });
    });
    g.bench_function("encode_decode_part", |b| {
        let d = gtm::GtmPartDesc {
            len: 123_456,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        b.iter(|| {
            let pkt = gtm::encode_part(std::hint::black_box(&tag), std::hint::black_box(&d));
            std::hint::black_box(gtm::decode_packet(&pkt).unwrap())
        });
    });
    // The in-place variant the hot paths use: same wire bytes, no
    // allocation — the scratch Vec is reused across iterations exactly as
    // a pooled buffer is reused across fragments.
    g.bench_function("encode_credit_into_reused", |b| {
        let mut scratch = Vec::with_capacity(64);
        b.iter(|| {
            scratch.clear();
            gtm::encode_credit_into(&mut scratch, std::hint::black_box(&tag), 3);
            std::hint::black_box(gtm::decode_packet(&scratch).unwrap())
        });
    });
    // A gateway transmit train: frame 8 fragment packets as one batch,
    // validate, and split it back into sub-packets (what the next hop's
    // relay / assembler does).
    g.bench_function("batch_frame_roundtrip_8x1KB", |b| {
        let prelude = gtm::frag_prelude(&tag);
        let frags: Vec<Vec<u8>> = (0..8)
            .map(|i| {
                let mut p = prelude.to_vec();
                p.extend(std::iter::repeat_n(i as u8, 1024));
                p
            })
            .collect();
        let refs: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
        b.iter(|| {
            let frame = gtm::encode_batch(std::hint::black_box(&refs));
            let mut n = 0usize;
            for sub in gtm::batch_packets(&frame).unwrap() {
                n += sub.len();
            }
            std::hint::black_box(n)
        });
    });
    g.finish();
}

fn bench_pool(h: &mut Harness) {
    use mad_util::pool::BufferPool;
    let mut g = h.group("buffer_pool");
    // Steady-state recycling: after the first iteration every get is a
    // hit, so this measures the per-fragment pool cost on the hot path.
    for &size in &[1024usize, 64 * 1024] {
        g.bench_function(format!("get_put_warm/{size}"), |b| {
            let pool = BufferPool::new();
            drop(pool.get(size)); // warm the class
            b.iter(|| {
                let mut buf = pool.get(std::hint::black_box(size));
                buf.vec().push(7);
                std::hint::black_box(&buf);
            });
        });
    }
    // The wire handoff cycle: a received Vec is adopted into the pool and
    // recycled on drop (every conduit recv path does this per packet).
    g.bench_function("adopt_drop_recycle", |b| {
        let pool = BufferPool::new();
        let mut v = Some(pool.get(4096).detach());
        b.iter(|| {
            let adopted = pool.adopt(v.take().unwrap());
            std::hint::black_box(&adopted);
            drop(adopted);
            v = Some(pool.get(4096).detach());
        });
    });
    g.finish();
}

fn bench_packetize(h: &mut Harness) {
    let mut g = h.group("plan_packetize");
    g.bench_function("mixed_blocks", |b| {
        let lens: Vec<usize> = (0..64).map(|i| 100 + i * 777).collect();
        b.iter(|| std::hint::black_box(plan::packetize(&lens, 16 * 1024, 16)));
    });
    g.finish();
}

fn bench_gateway_pipeline_real(h: &mut Harness) {
    // End-to-end: a 3-node session over real shared memory with a forwarding
    // gateway, eight 1 MB messages per iteration. Exercises GTM framing, the
    // pipeline threads, and teardown-free steady state — but rebuilds the
    // session each iteration, so use modest sample counts.
    let mut g = h.group("gateway_pipeline_shm");
    g.sample_size(10);
    g.throughput_bytes(8 << 20);
    g.bench_function("forward_1MB_x8", |b| {
        b.iter(|| {
            let mut sb = SessionBuilder::new(3);
            let rt = sb.runtime().clone();
            let n0 = sb.network("a", ShmDriver::new(rt.clone()), &[0, 1]);
            let n1 = sb.network("b", ShmDriver::new(rt), &[1, 2]);
            sb.vchannel(
                "vc",
                &[n0, n1],
                VcOptions {
                    mtu: Some(64 * 1024),
                    ..Default::default()
                },
            );
            let results = sb.run(|node| {
                let vc = node.vchannel("vc");
                match node.rank().0 {
                    0 => {
                        let data = vec![1u8; 1 << 20];
                        for _ in 0..8 {
                            let mut w = vc.begin_packing(NodeId(2)).unwrap();
                            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                            w.end_packing().unwrap();
                        }
                        0u8
                    }
                    1 => 0,
                    2 => {
                        let mut buf = vec![0u8; 1 << 20];
                        for _ in 0..8 {
                            let mut r = vc.begin_unpacking().unwrap();
                            r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                                .unwrap();
                            r.end_unpacking().unwrap();
                        }
                        buf[0]
                    }
                    _ => unreachable!(),
                }
            });
            std::hint::black_box(results)
        });
    });
    g.finish();
}

fn bench_rt_queue(h: &mut Harness) {
    use madeleine::runtime::RtQueue;
    let mut g = h.group("rt_queue");
    g.bench_function("push_pop_unbounded", |b| {
        let rt = StdRuntime::default();
        let (tx, rx) = RtQueue::<u64>::with_capacity(&rt, usize::MAX);
        b.iter(|| {
            tx.push(42).unwrap();
            std::hint::black_box(rx.try_pop().unwrap())
        });
    });
    g.finish();
}

fn bench_vtime_clock(h: &mut Harness) {
    let mut g = h.group("vtime");
    g.sample_size(10);
    g.bench_function("two_actor_handshake_1000", |b| {
        // 1000 virtual-time message handoffs between two actors, measuring
        // the real cost of the conservative clock (the simulator's main
        // overhead driver).
        b.iter(|| {
            let clock = vtime::Clock::new();
            let (tx, rx) = vtime::mailbox::<u32>(&clock);
            let setup = clock.freeze();
            let p = clock.spawn("p", move |a| {
                for i in 0..1000u32 {
                    a.sleep(vtime::SimDuration::from_nanos(10));
                    tx.send(i).unwrap();
                }
            });
            let q = clock.spawn("c", move |a| {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv(a) {
                    sum += v as u64;
                }
                sum
            });
            drop(setup);
            p.join().unwrap();
            std::hint::black_box(q.join().unwrap())
        });
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_pack_unpack(&mut h);
    bench_gtm_codec(&mut h);
    bench_pool(&mut h);
    bench_packetize(&mut h);
    bench_gateway_pipeline_real(&mut h);
    bench_rt_queue(&mut h);
    bench_vtime_clock(&mut h);
}
