//! Tiny command-line conveniences shared by the bench binaries.
//!
//! Every trace-capable binary accepts `--trace <path>` (or
//! `--trace=<path>`): the run's unified event snapshot is exported there,
//! as JSONL when the path ends in `.jsonl` and as a Chrome
//! `trace_event` JSON (load in Perfetto or `chrome://tracing`) otherwise.

use std::path::{Path, PathBuf};

/// The `--trace` output path, if the binary was invoked with one.
pub fn trace_path() -> Option<PathBuf> {
    trace_path_from(std::env::args().skip(1))
}

/// True when the bare flag `name` (e.g. `--smoke`) is present.
pub fn flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// The gateway transmit-batching depth from `--max-batch <n>` (or
/// `--max-batch=<n>`), defaulting to 1 (batching off) — accepted by the
/// forwarded-route bench binaries.
pub fn max_batch() -> usize {
    opt_value("--max-batch")
        .map(|v| v.parse().expect("--max-batch takes a positive integer"))
        .unwrap_or(1)
}

/// The protocol-switch threshold in bytes from `--rendezvous-threshold
/// <n>` (or `--rendezvous-threshold=<n>`), defaulting to 0 — eager-only,
/// the pre-switch ablation. Accepted by the forwarded-route bench
/// binaries; blocks of at least this many bytes run the kind-12 RTS/CTS
/// rendezvous handshake instead of per-fragment eager credits.
pub fn rendezvous_threshold() -> usize {
    opt_value("--rendezvous-threshold")
        .map(|v| {
            v.parse()
                .expect("--rendezvous-threshold takes a byte count")
        })
        .unwrap_or(0)
}

fn opt_value(name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

fn trace_path_from(args: impl Iterator<Item = String>) -> Option<PathBuf> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Export `snap` to `path` in the format its extension selects (`.jsonl`
/// → JSONL event stream, anything else → Chrome trace JSON) and report
/// where it went.
pub fn export_trace(snap: &mad_trace::Snapshot, path: &Path) {
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let res = if jsonl {
        snap.save_jsonl(path)
    } else {
        snap.save_chrome(path)
    };
    match res {
        Ok(()) => println!(
            "trace: {} events on {} tracks -> {} ({})",
            snap.event_count(),
            snap.threads.len(),
            path.display(),
            if jsonl { "jsonl" } else { "chrome trace" }
        ),
        Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_flag_forms() {
        let two = |v: &[&str]| trace_path_from(v.iter().map(|s| s.to_string()));
        assert_eq!(two(&["--trace", "out.jsonl"]), Some("out.jsonl".into()));
        assert_eq!(two(&["--trace=out.json"]), Some("out.json".into()));
        assert_eq!(two(&["--size", "4"]), None);
        assert_eq!(two(&["--trace"]), None);
    }
}
