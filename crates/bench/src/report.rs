//! Table printing and CSV emission for the figure/table binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Locate the workspace `results/` directory (next to the top Cargo.toml).
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("results");
    fs::create_dir_all(&dir).expect("creating results directory");
    dir
}

/// A simple column-aligned table that also serializes to CSV.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print the table to stdout, column-aligned.
    pub fn print(&self) {
        println!("\n== {}", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write the table as CSV to `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let path = results_dir().join(format!("{name}.csv"));
        self.write_csv_to(&path);
        println!("(csv written to {})", path.display());
    }

    fn write_csv_to(&self, path: &Path) {
        let mut f = fs::File::create(path).expect("creating csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).unwrap();
        }
    }
}

/// Format a byte count compactly (the paper's axis labels).
pub fn fmt_bytes(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}MB", n >> 20)
    } else if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}KB", n >> 10)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(8 * 1024), "8KB");
        assert_eq!(fmt_bytes(16 << 20), "16MB");
        assert_eq!(fmt_bytes(1536), "1536B");
    }

    #[test]
    fn table_accepts_matching_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
