//! Reusable experiment runners over the simulated testbed.
//!
//! Every runner builds a fresh 3-node cluster-of-clusters (rank 0 on the
//! source network, rank 1 the gateway with both NICs, rank 2 on the
//! destination network), exactly the paper's §3 setup, and measures the
//! one-way transmission time of a single message on the shared virtual
//! clock. The paper derived one-way times from a ping with a Fast-Ethernet
//! ack of known latency; with a global deterministic clock we read the
//! one-way time directly, which is the same quantity without the
//! subtraction step.

use mad_sim::{SimDriver, SimTech, Testbed};
use madeleine::baseline;
use madeleine::gateway::GatewayConfig;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use simnet::{calibration, NetParams, TraceLog};

/// Result of one one-way transfer.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Payload bytes moved.
    pub bytes: usize,
    /// One-way time in (virtual) seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Achieved bandwidth in MB/s (the paper's unit: 1e6 bytes/second).
    pub fn mbps(&self) -> f64 {
        self.bytes as f64 / self.seconds / 1e6
    }

    /// One-way time in microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }
}

/// Gateway-path configuration of a forwarded-transfer experiment.
#[derive(Debug, Clone, Copy)]
pub struct GwSetup {
    /// GTM fragment size (the paper's "paquet size").
    pub mtu: usize,
    /// Pipeline buffers per direction (2 = the paper's double-buffering).
    pub pipeline_depth: usize,
    /// Zero-copy buffer handoff at the gateway.
    pub zero_copy: bool,
    /// Per-fragment buffer-switch software cost.
    pub switch_overhead_ns: u64,
    /// Optional cap (bytes/s) on the inbound network's device rate at every
    /// NIC — the flow-control probe of the paper's future work (§4).
    pub inbound_rate_cap: Option<f64>,
    /// Optional replacement parameters for the outbound network — used to
    /// model the paper's proposed workaround of driving SCI sends with the
    /// NIC's DMA engine instead of CPU PIO (§3.4.1).
    pub outbound_override: Option<NetParams>,
    /// Per-stream credit window in fragments at the gateway; `None`
    /// disables flow control (unbounded gateway occupancy).
    pub credit_window: Option<u32>,
    /// Max packets the gateway coalesces into one batched wire send
    /// (1 = batching off).
    pub max_batch: usize,
    /// Blocks of at least this many bytes run the kind-12 RTS/CTS
    /// rendezvous handshake (whole-window grant, pre-reserved landing)
    /// instead of per-fragment eager credits; 0 keeps every block eager.
    /// Only meaningful with a `credit_window`.
    pub rendezvous_threshold: usize,
}

impl Default for GwSetup {
    fn default() -> Self {
        GwSetup {
            mtu: calibration::CROSSOVER_PACKET,
            pipeline_depth: 2,
            zero_copy: true,
            switch_overhead_ns: calibration::gateway_switch_overhead().as_nanos(),
            inbound_rate_cap: None,
            outbound_override: None,
            credit_window: None,
            max_batch: 1,
            rendezvous_threshold: 0,
        }
    }
}

impl GwSetup {
    /// Same setup with a different fragment size.
    pub fn with_mtu(mtu: usize) -> Self {
        GwSetup {
            mtu,
            ..Default::default()
        }
    }
}

fn capped_params(tech: SimTech, cap: Option<f64>) -> NetParams {
    let mut p = tech.params();
    if let Some(c) = cap {
        p.dev_in_bps = p.dev_in_bps.min(c);
    }
    p
}

/// One-way transfer of `total` bytes, rank 0 → rank 2 via the gateway.
pub fn forwarded_oneway(from: SimTech, to: SimTech, total: usize, setup: GwSetup) -> Measurement {
    let tb = Testbed::new(3);
    run_forwarded(&tb, from, to, total, setup)
}

/// Like [`forwarded_oneway`] but recording the unified event trace —
/// driver spans for the fig. 5 / fig. 8 timelines plus Madeleine's own
/// hot-path spans and counters, ready for the exporters.
pub fn forwarded_oneway_traced(
    from: SimTech,
    to: SimTech,
    total: usize,
    setup: GwSetup,
) -> (Measurement, mad_trace::Snapshot) {
    let trace = TraceLog::new();
    let tb = Testbed::with_trace(3, trace.clone());
    let m = run_forwarded(&tb, from, to, total, setup);
    (m, trace.tracer().snapshot())
}

fn run_forwarded(
    tb: &Testbed,
    from: SimTech,
    to: SimTech,
    total: usize,
    setup: GwSetup,
) -> Measurement {
    run_forwarded_stats(tb, from, to, total, setup).0
}

fn run_forwarded_stats(
    tb: &Testbed,
    from: SimTech,
    to: SimTech,
    total: usize,
    setup: GwSetup,
) -> (Measurement, madeleine::gateway::GatewayTotals) {
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(3).with_runtime(rt);
    let in_driver = SimDriver::with_params(
        from,
        capped_params(from, setup.inbound_rate_cap),
        tb.net().clone(),
        tb.hosts().to_vec(),
        tb.runtime(),
    );
    let n_in = sb.network("net-in", in_driver, &[0, 1]);
    let out_driver = match setup.outbound_override {
        Some(params) => SimDriver::with_params(
            to,
            params,
            tb.net().clone(),
            tb.hosts().to_vec(),
            tb.runtime(),
        ),
        None => tb.driver(to),
    };
    let n_out = sb.network("net-out", out_driver, &[1, 2]);
    sb.vchannel(
        "vc",
        &[n_in, n_out],
        VcOptions {
            mtu: Some(setup.mtu),
            gateway: GatewayConfig {
                pipeline_depth: setup.pipeline_depth,
                switch_overhead_ns: setup.switch_overhead_ns,
                zero_copy: setup.zero_copy,
                credit_window: setup.credit_window,
                max_batch: setup.max_batch,
                rendezvous_threshold: setup.rendezvous_threshold,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let (stamps, gw_stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                let data = vec![0x5Au8; total];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            1 => 0,
            2 => {
                let mut buf = vec![0u8; total];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(
                    buf.iter().all(|&b| b == 0x5A),
                    "payload corrupted in flight"
                );
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    let totals = gw_stats
        .first()
        .map(|(_, _, st)| st.totals())
        .unwrap_or_default();
    (
        Measurement {
            bytes: total,
            seconds: (stamps[2] - stamps[0]) as f64 / 1e9,
        },
        totals,
    )
}

/// Like [`forwarded_oneway`] but also returning the gateway engine's
/// forwarding counters — credit grants, cancellations, and the peak number
/// of payload bytes held in the forwarding pipeline (the occupancy a
/// credit window is supposed to bound).
pub fn forwarded_oneway_stats(
    from: SimTech,
    to: SimTech,
    total: usize,
    setup: GwSetup,
) -> (Measurement, madeleine::gateway::GatewayTotals) {
    let tb = Testbed::new(3);
    run_forwarded_stats(&tb, from, to, total, setup)
}

/// Outcome of one mixed-protocol round workload (see
/// [`protocol_mix_stats`]).
#[derive(Debug, Clone, Copy)]
pub struct MixOutcome {
    /// Aggregate measurement over every round.
    pub m: Measurement,
    /// The gateway engine's forwarding counters, including the
    /// copy-placement split (`copies_recv` / `copies_flush` /
    /// `copy_idle_hits`) and the rendezvous handshake totals.
    pub totals: madeleine::gateway::GatewayTotals,
    /// Buffer-pool misses incurred *after* the first (warm-up) round.
    /// The rendezvous pre-reservation exists to keep this at zero: every
    /// landing class a bulk block needs is announced before its
    /// fragments arrive.
    pub steady_pool_misses: u64,
}

/// Mixed eager/rendezvous workload through the E3 gateway: `rounds`
/// rounds of the `pattern` message sizes, rank 0 → rank 2, with a
/// barrier between rounds so each round starts from a drained pipeline.
/// Sizes on both sides of `setup.rendezvous_threshold` keep both
/// protocols live on the same gateway, which is what the copy-placement
/// scheduler and the steady-state pool invariant are measured against.
///
/// `pace_ns` is a sender-side gap charged before each message: it models
/// an application that computes between sends, so the gateway pipeline
/// has drained by the time the next message arrives. A zero pace is a
/// saturation workload where every stage stays busy and the placement
/// question is moot (there is no idle stage to find).
pub fn protocol_mix_stats(
    from: SimTech,
    to: SimTech,
    pattern: &[usize],
    rounds: u32,
    pace_ns: u64,
    setup: GwSetup,
) -> MixOutcome {
    let tb = Testbed::new(3);
    run_protocol_mix(&tb, from, to, pattern, rounds, pace_ns, setup)
}

/// Like [`protocol_mix_stats`] but recording the unified event trace —
/// the teardown flush lands the `proto:` handshake totals and the `rt:`
/// copy-placement accounting on their own tracks.
pub fn protocol_mix_traced(
    from: SimTech,
    to: SimTech,
    pattern: &[usize],
    rounds: u32,
    pace_ns: u64,
    setup: GwSetup,
) -> (MixOutcome, mad_trace::Snapshot) {
    let trace = TraceLog::new();
    let tb = Testbed::with_trace(3, trace.clone());
    let run = run_protocol_mix(&tb, from, to, pattern, rounds, pace_ns, setup);
    (run, trace.tracer().snapshot())
}

fn run_protocol_mix(
    tb: &Testbed,
    from: SimTech,
    to: SimTech,
    pattern: &[usize],
    rounds: u32,
    pace_ns: u64,
    setup: GwSetup,
) -> MixOutcome {
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(3).with_runtime(rt);
    let in_driver = SimDriver::with_params(
        from,
        capped_params(from, setup.inbound_rate_cap),
        tb.net().clone(),
        tb.hosts().to_vec(),
        tb.runtime(),
    );
    let n_in = sb.network("net-in", in_driver, &[0, 1]);
    let n_out = sb.network("net-out", tb.driver(to), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n_in, n_out],
        VcOptions {
            mtu: Some(setup.mtu),
            gateway: GatewayConfig {
                pipeline_depth: setup.pipeline_depth,
                switch_overhead_ns: setup.switch_overhead_ns,
                zero_copy: setup.zero_copy,
                credit_window: setup.credit_window,
                max_batch: setup.max_batch,
                rendezvous_threshold: setup.rendezvous_threshold,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sizes: Vec<usize> = pattern.to_vec();
    let (results, gw_stats) = sb.run_with_gateway_stats(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        let mut out = (0u64, 0u64, 0u64); // (t0, t_end, steady misses)
        let mut warm_misses = 0u64;
        for round in 0..rounds {
            match node.rank().0 {
                0 => {
                    if round == 0 {
                        out.0 = rt.now_nanos();
                    }
                    for (i, &len) in sizes.iter().enumerate() {
                        if pace_ns > 0 {
                            rt.charge_overhead(pace_ns);
                        }
                        let data = stream_payload(round.wrapping_mul(31) ^ i as u32, len);
                        let mut w = vc.begin_packing(NodeId(2)).unwrap();
                        w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                        w.end_packing().unwrap();
                    }
                }
                2 => {
                    for (i, &len) in sizes.iter().enumerate() {
                        let mut buf = vec![0u8; len];
                        let mut r = vc.begin_unpacking().unwrap();
                        r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                            .unwrap();
                        r.end_unpacking().unwrap();
                        assert_eq!(
                            buf,
                            stream_payload(round.wrapping_mul(31) ^ i as u32, len),
                            "round {round} message #{i} corrupted"
                        );
                    }
                    out.1 = rt.now_nanos();
                }
                _ => {}
            }
            // Every round drains fully before the next begins, so round 0
            // warms every pool class the workload can touch and the later
            // rounds must run miss-free.
            node.barrier().wait();
            if node.rank() == NodeId(0) {
                if round == 0 {
                    warm_misses = rt.pool().stats().misses;
                } else {
                    out.2 = rt.pool().stats().misses - warm_misses;
                }
            }
        }
        out
    });
    let totals = gw_stats
        .first()
        .map(|(_, _, st)| st.totals())
        .unwrap_or_default();
    let bytes: usize = pattern.iter().sum::<usize>() * rounds as usize;
    MixOutcome {
        m: Measurement {
            bytes,
            seconds: (results[2].1 - results[0].0) as f64 / 1e9,
        },
        totals,
        steady_pool_misses: results[0].2,
    }
}

/// One-way transfer of `total` bytes between two directly connected nodes,
/// sent as packets of `packet` bytes (the paper's raw Madeleine ping).
pub fn raw_oneway(tech: SimTech, total: usize, packet: usize) -> Measurement {
    let tb = Testbed::new(2);
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(2).with_runtime(rt);
    let net = sb.network("net", tb.driver(tech), &[0, 1]);
    sb.channel("ch", net);
    let stamps = sb.run(move |node| {
        let ch = node.channel("ch");
        let rt = node.runtime().clone();
        node.barrier().wait();
        if node.rank() == NodeId(0) {
            let t0 = rt.now_nanos();
            let data = vec![0x33u8; total];
            let mut w = ch.begin_packing(NodeId(1)).unwrap();
            // SendMode::Safer flushes each block as its own wire packet,
            // which is exactly "a ping with packets of size S".
            for chunk in data.chunks(packet) {
                w.pack(chunk, SendMode::Safer, RecvMode::Cheaper).unwrap();
            }
            w.end_packing().unwrap();
            t0
        } else {
            let mut buf = vec![0u8; total];
            let mut r = ch.begin_unpacking().unwrap();
            for chunk in buf.chunks_mut(packet) {
                r.unpack(chunk, SendMode::Safer, RecvMode::Cheaper).unwrap();
            }
            r.end_unpacking().unwrap();
            rt.now_nanos()
        }
    });
    Measurement {
        bytes: total,
        seconds: (stamps[1] - stamps[0]) as f64 / 1e9,
    }
}

/// One-way time of a single `size`-byte message (latency regime).
pub fn raw_latency_micros(tech: SimTech, size: usize) -> f64 {
    raw_oneway(tech, size, size.max(1)).micros()
}

/// One-way transfer through an *application-level* relay (the Nexus/PACX
/// baseline): rank 1 runs [`madeleine::baseline::run_relay`] — whole-message
/// store-and-forward, no pipelining, relay code in the application.
pub fn appfwd_oneway(from: SimTech, to: SimTech, total: usize) -> Measurement {
    let tb = Testbed::new(3);
    let rt = tb.runtime();
    let mut sb = SessionBuilder::new(3).with_runtime(rt);
    let n_in = sb.network("net-in", tb.driver(from), &[0, 1]);
    let n_out = sb.network("net-out", tb.driver(to), &[1, 2]);
    sb.channel("ch-in", n_in);
    sb.channel("ch-out", n_out);
    let stamps = sb.run(move |node| {
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let ch = node.channel("ch-in");
                let t0 = rt.now_nanos();
                let data = vec![0x77u8; total];
                baseline::send_via_relay(ch, NodeId(1), NodeId(2), &data).unwrap();
                t0
            }
            1 => {
                let relayed =
                    baseline::run_relay(node.channel("ch-in"), node.channel("ch-out"), |dest| {
                        (dest == NodeId(2)).then_some(NodeId(2))
                    })
                    .unwrap();
                assert_eq!(relayed, 1);
                0
            }
            2 => {
                let ch = node.channel("ch-out");
                let payload = baseline::recv_via_relay(ch, NodeId(2)).unwrap();
                assert_eq!(payload.len(), total);
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    Measurement {
        bytes: total,
        seconds: (stamps[2] - stamps[0]) as f64 / 1e9,
    }
}

/// The paper's §3.4.1 workaround: drive SCI sends with the Dolphin DMA
/// engine instead of CPU PIO. DMA setup costs more per packet and the
/// engine moves data slightly slower than streamed PIO writes, but as a
/// bus-master it no longer loses arbitration to the Myrinet NIC.
pub fn sci_with_dma_engine() -> NetParams {
    let mut p = SimTech::Sci.params();
    p.out_class = simnet::XferClass::Dma;
    p.dev_out_bps = 50.0e6;
    p.overhead_send = vtime::SimDuration::from_micros(35);
    p
}

/// Deterministic soak payload, distinct per stream index.
fn stream_payload(idx: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(7 * idx as u8))
        .collect()
}

/// Result of one multi-path aggregate transfer: the measurement plus the
/// per-gateway payload split recorded by the routing plane (empty when the
/// plan had width 1 and the legacy single-path writer ran).
#[derive(Debug, Clone)]
pub struct MultipathRun {
    /// Aggregate one-way measurement.
    pub m: Measurement,
    /// Payload bytes per gateway rank, from [`madeleine::multipath::MultiPath::path_bytes`].
    pub split: Vec<(u32, u64)>,
}

/// Wire a `gateways`-wide parallel relay fabric on `sb`: rank 0 on the
/// inbound network, ranks `1..=gateways` spanning both clusters, rank
/// `gateways + 1` on the outbound network — the E3 topology widened from
/// one relay box to `gateways` of them.
fn multipath_vchannel(
    sb: &mut SessionBuilder,
    tb: &Testbed,
    gateways: usize,
    mtu: usize,
    policy: madeleine::mad_route::StripePolicy,
    drain_timeout_ns: Option<u64>,
) {
    let inbound: Vec<u32> = (0..=gateways as u32).collect();
    let outbound: Vec<u32> = (1..=gateways as u32 + 1).collect();
    let n_in = sb.network("net-in", tb.driver(SimTech::Myrinet), &inbound);
    let n_out = sb.network("net-out", tb.driver(SimTech::Sci), &outbound);
    sb.vchannel(
        "vc",
        &[n_in, n_out],
        VcOptions {
            mtu: Some(mtu),
            multipath: Some(madeleine::MultipathConfig {
                policy,
                ..Default::default()
            }),
            gateway: GatewayConfig {
                switch_overhead_ns: calibration::gateway_switch_overhead().as_nanos(),
                drain_timeout_ns: drain_timeout_ns.unwrap_or(2_000_000_000),
                ..Default::default()
            },
            ..Default::default()
        },
    );
}

/// Stripe unit of the A8 scaling runs. Coarser than the paper's 16 KB
/// crossover MTU on purpose: striping wants fragments big enough to
/// amortize the sender's fixed per-packet cost, otherwise the sending
/// host — not the relay fabric — is the first bottleneck and extra paths
/// cannot show.
pub const STRIPE_MTU: usize = 128 * 1024;

fn run_multipath(
    tb: &Testbed,
    gateways: usize,
    total: usize,
    policy: madeleine::mad_route::StripePolicy,
) -> MultipathRun {
    let mut sb = SessionBuilder::new(gateways as u32 + 2).with_runtime(tb.runtime());
    multipath_vchannel(&mut sb, tb, gateways, STRIPE_MTU, policy, None);
    let sink = gateways as u32 + 1;
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                let data = vec![0x5Au8; total];
                let mut w = vc.begin_packing(NodeId(sink)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                let split = vc.multipath().expect("multipath enabled").path_bytes();
                (t0, split)
            }
            r if r == sink => {
                let mut buf = vec![0u8; total];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(
                    buf.iter().all(|&b| b == 0x5A),
                    "payload corrupted in flight"
                );
                (rt.now_nanos(), Vec::new())
            }
            _ => (0, Vec::new()), // the relay ranks
        }
    });
    MultipathRun {
        m: Measurement {
            bytes: total,
            seconds: (results[sink as usize].0 - results[0].0) as f64 / 1e9,
        },
        split: results[0].1.clone(),
    }
}

/// Aggregate one-way bandwidth of one bulk message through `gateways`
/// parallel relays (the A8 scaling curve; `gateways = 1` is the E3
/// baseline fabric with the routing plane enabled).
pub fn multipath_oneway(
    gateways: usize,
    total: usize,
    policy: madeleine::mad_route::StripePolicy,
) -> MultipathRun {
    let tb = Testbed::new(gateways + 2);
    run_multipath(&tb, gateways, total, policy)
}

/// Like [`multipath_oneway`] but recording the unified event trace — the
/// `route:` per-path byte splits and the `gw:` delta counters land on their
/// own tracks at session teardown.
pub fn multipath_oneway_traced(
    gateways: usize,
    total: usize,
    policy: madeleine::mad_route::StripePolicy,
) -> (MultipathRun, mad_trace::Snapshot) {
    let trace = TraceLog::new();
    let tb = Testbed::with_trace(gateways + 2, trace.clone());
    let run = run_multipath(&tb, gateways, total, policy);
    (run, trace.tracer().snapshot())
}

fn run_multipath_aggregate(
    tb: &Testbed,
    gateways: usize,
    pairs: usize,
    msgs: u32,
    len: usize,
) -> MultipathRun {
    let nodes = (pairs * 2 + gateways) as u32;
    let mut sb = SessionBuilder::new(nodes).with_runtime(tb.runtime());
    // Senders 0..pairs, gateways pairs..pairs+gateways, receivers after.
    let gw0 = pairs as u32;
    let rx0 = (pairs + gateways) as u32;
    let inbound: Vec<u32> = (0..gw0 + gateways as u32).collect();
    let outbound: Vec<u32> = (gw0..nodes).collect();
    let n_in = sb.network("net-in", tb.driver(SimTech::Myrinet), &inbound);
    let n_out = sb.network("net-out", tb.driver(SimTech::Sci), &outbound);
    sb.vchannel(
        "vc",
        &[n_in, n_out],
        VcOptions {
            mtu: Some(STRIPE_MTU),
            multipath: Some(madeleine::MultipathConfig::default()),
            gateway: GatewayConfig {
                switch_overhead_ns: calibration::gateway_switch_overhead().as_nanos(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        let rank = node.rank().0;
        let out = if rank < gw0 {
            // Sender `rank`, paired with receiver `rx0 + rank`.
            let t0 = rt.now_nanos();
            for i in 0..msgs {
                let data = stream_payload(rank.wrapping_mul(101).wrapping_add(i), len);
                let mut w = vc.begin_packing(NodeId(rx0 + rank)).unwrap();
                let hdr = [i as u8];
                w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
            }
            (t0, 0, Vec::new())
        } else if rank >= rx0 {
            let from = rank - rx0;
            let mut seen = vec![false; msgs as usize];
            for _ in 0..msgs {
                let mut r = vc.begin_unpacking().unwrap();
                let mut hdr = [0u8; 1];
                r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                    .unwrap();
                let i = hdr[0] as u32;
                let mut buf = vec![0u8; len];
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert_eq!(
                    buf,
                    stream_payload(from.wrapping_mul(101).wrapping_add(i), len),
                    "pair {from} stream #{i} corrupted"
                );
                assert!(!seen[i as usize], "pair {from} stream #{i} delivered twice");
                seen[i as usize] = true;
            }
            (0, rt.now_nanos(), Vec::new())
        } else {
            (0, 0, Vec::new()) // the relay ranks
        };
        // Second barrier: every stream has ended (and been accounted to its
        // path) before rank 0 snapshots the session-wide split.
        node.barrier().wait();
        if rank == 0 {
            let split = vc.multipath().expect("multipath enabled").path_bytes();
            (out.0, out.1, split)
        } else {
            out
        }
    });
    let t0 = results[..pairs].iter().map(|r| r.0).min().unwrap();
    let t_end = results[rx0 as usize..].iter().map(|r| r.1).max().unwrap();
    MultipathRun {
        m: Measurement {
            bytes: pairs * msgs as usize * (len + 1),
            seconds: (t_end - t0) as f64 / 1e9,
        },
        split: results[0].2.clone(),
    }
}

/// Aggregate inter-cluster bandwidth of `pairs` concurrent sender/receiver
/// pairs whose streams share `gateways` parallel relays (per-stream
/// adaptive routing). This is the A8 scaling curve proper: with several
/// endpoint pairs offering load, the relay fabric — not a single host's
/// serial receive path — is the bottleneck, so aggregate bandwidth tracks
/// the gateway count.
pub fn multipath_aggregate(gateways: usize, pairs: usize, msgs: u32, len: usize) -> MultipathRun {
    let tb = Testbed::new(pairs * 2 + gateways);
    run_multipath_aggregate(&tb, gateways, pairs, msgs, len)
}

/// Like [`multipath_aggregate`] but recording the unified event trace.
pub fn multipath_aggregate_traced(
    gateways: usize,
    pairs: usize,
    msgs: u32,
    len: usize,
) -> (MultipathRun, mad_trace::Snapshot) {
    let trace = TraceLog::new();
    let tb = Testbed::with_trace(pairs * 2 + gateways, trace.clone());
    let run = run_multipath_aggregate(&tb, gateways, pairs, msgs, len);
    (run, trace.tracer().snapshot())
}

/// Outcome of one seeded gateway-death soak schedule.
#[derive(Debug, Clone, Copy)]
pub struct DeathSoakRun {
    /// Streams the sink received intact (must equal the schedule length).
    pub delivered: u32,
    /// Streams the routing plane re-issued on a surviving path.
    pub failovers: u64,
    /// Gateways the routing plane retired (must be >= 1: the kill was
    /// detected). Zero failovers with a death means every affected stream
    /// was caught at its header send, before any payload needed replaying.
    pub deaths: u64,
    /// Wall (virtual) time of the whole schedule.
    pub seconds: f64,
}

/// Seeded death soak: push `msgs` streams of `len` bytes through a
/// `gateways`-wide fabric while gateway rank 1 silently dies at
/// `kill_at_ns`. Every stream must still arrive intact, exactly once —
/// streams caught on the dead path are re-issued on survivors.
pub fn multipath_death_soak(
    gateways: usize,
    msgs: u32,
    len: usize,
    kill_at_ns: u64,
) -> DeathSoakRun {
    assert!(gateways >= 2, "a death soak needs a surviving path");
    let tb = Testbed::new(gateways + 2);
    tb.kill_host(1, kill_at_ns);
    let mut sb = SessionBuilder::new(gateways as u32 + 2).with_runtime(tb.runtime());
    multipath_vchannel(
        &mut sb,
        &tb,
        gateways,
        calibration::CROSSOVER_PACKET,
        madeleine::mad_route::StripePolicy::PerStream,
        Some(100_000_000), // the dead engine must not hang teardown
    );
    let sink = gateways as u32 + 1;
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                for i in 0..msgs {
                    let data = stream_payload(i, len);
                    let mut w = vc.begin_packing(NodeId(sink)).unwrap();
                    // Index stamp: streams on different paths may overtake.
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                let c = vc.multipath().expect("multipath enabled").counters();
                (t0, 0u32, c.failovers, c.deaths)
            }
            r if r == sink => {
                let mut seen = vec![false; msgs as usize];
                for _ in 0..msgs {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let mut buf = vec![0u8; len];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, stream_payload(i, len), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                let delivered = seen.iter().filter(|&&s| s).count() as u32;
                (rt.now_nanos(), delivered, 0, 0)
            }
            _ => (0, 0, 0, 0),
        }
    });
    DeathSoakRun {
        delivered: results[sink as usize].1,
        failovers: results[0].2,
        deaths: results[0].3,
        seconds: (results[sink as usize].0 - results[0].0) as f64 / 1e9,
    }
}

/// Outcome of one seeded membership-churn soak schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSoakRun {
    /// Streams the sink received intact (must equal the schedule length).
    pub delivered: u32,
    /// Leave → rejoin episodes the churning gateway completed.
    pub episodes: u32,
    /// Times the routing plane readmitted the retired path (>= episodes:
    /// every graceful rejoin re-plans before its ack).
    pub readmissions: u64,
    /// Paths the routing plane retired across the schedule.
    pub deaths: u64,
    /// Stale-incarnation packets dropped, summed over every plane (must
    /// be zero: graceful churn is epoch-monotone).
    pub stale_drops: u64,
    /// The churning gateway's incarnation epoch after the last rejoin.
    pub final_epoch: u64,
    /// Wall (virtual) time of the whole schedule.
    pub seconds: f64,
}

/// Seeded membership-churn soak (A11): rank 0 streams
/// `rounds * msgs_per_round` messages of `len` bytes to rank 3 over the
/// two-gateway parallel fabric (net0 {0,1,2}, net1 {1,2,3}) while
/// gateway rank 1 cycles leave → seeded linger → rejoin `rounds` times.
/// Membership, multi-path routing, the metrics plane, and the
/// self-tuning controller are all live: every stream must arrive intact
/// exactly once, every episode must retire and readmit the path, and no
/// packet may be dropped as stale.
fn run_membership_churn(
    tb: &Testbed,
    rounds: u32,
    msgs_per_round: u32,
    len: usize,
    seed: u64,
) -> ChurnSoakRun {
    const JOIN_TIMEOUT: u64 = 2_000_000_000;
    let mut sb = SessionBuilder::new(4).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2, 3]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            multipath: Some(madeleine::MultipathConfig::default()),
            membership: Some(madeleine::MembershipOptions::default()),
            metrics: Some(madeleine::MetricsOptions::default()),
            controller: Some(madeleine::ControllerConfig::default()),
            gateway: GatewayConfig {
                credit_window: Some(8),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        let me = node.rank().0;
        let peers: Vec<NodeId> = (0..4).filter(|&r| r != me).map(NodeId).collect();
        let plane = vc.membership().expect("membership enabled").clone();
        node.barrier().wait();
        plane.join(&peers, JOIN_TIMEOUT).expect("join failed");
        node.barrier().wait();

        let total = rounds * msgs_per_round;
        let out = match me {
            0 => {
                // The sender never pauses: streams are in flight across
                // every leave and rejoin below.
                let t0 = rt.now_nanos();
                for i in 0..total {
                    let data = stream_payload(i, len);
                    let mut w = vc.begin_packing(NodeId(3)).unwrap();
                    let hdr = [i as u8];
                    w.pack(&hdr, SendMode::Safer, RecvMode::Express).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                (t0, 0u32, 0u64, 0u64, 0u64)
            }
            3 => {
                let mut seen = vec![false; total as usize];
                for _ in 0..total {
                    let mut r = vc.begin_unpacking().unwrap();
                    let mut hdr = [0u8; 1];
                    r.unpack(&mut hdr, SendMode::Safer, RecvMode::Express)
                        .unwrap();
                    let i = hdr[0] as u32;
                    let mut buf = vec![0u8; len];
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, stream_payload(i, len), "stream #{i} corrupted");
                    assert!(!seen[i as usize], "stream #{i} delivered twice");
                    seen[i as usize] = true;
                }
                let delivered = seen.iter().filter(|&&s| s).count() as u32;
                (rt.now_nanos(), delivered, 0, 0, 0)
            }
            1 => {
                // The churning gateway: leave, seeded linger, rejoin.
                let mut s = seed | 1;
                let mut epoch = 1;
                for _ in 0..rounds {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    rt.charge_overhead(2_000_000 + s % 4_000_000);
                    plane.leave(&peers);
                    rt.charge_overhead(2_000_000 + (s >> 8) % 4_000_000);
                    epoch = plane.rejoin(&peers, JOIN_TIMEOUT).expect("rejoin failed");
                }
                let c = vc.multipath().expect("multipath enabled").counters();
                (0, 0, c.readmissions, c.deaths, epoch)
            }
            _ => (0, 0, 0, 0, 0),
        };
        node.barrier().wait();
        (out, plane.stale_drops())
    });
    ChurnSoakRun {
        delivered: results[3].0 .1,
        episodes: rounds,
        readmissions: results[1].0 .2,
        deaths: results[1].0 .3,
        stale_drops: results.iter().map(|r| r.1).sum(),
        final_epoch: results[1].0 .4,
        seconds: (results[3].0 .0 - results[0].0 .0) as f64 / 1e9,
    }
}

/// See [`run_membership_churn`].
pub fn membership_churn_soak(
    rounds: u32,
    msgs_per_round: u32,
    len: usize,
    seed: u64,
) -> ChurnSoakRun {
    let tb = Testbed::new(4);
    run_membership_churn(&tb, rounds, msgs_per_round, len, seed)
}

/// Like [`membership_churn_soak`] but recording the unified event trace
/// (the `member:`, `ctl:`, and `health:` tracks ride along with the
/// `route:` and `gw:` ones).
pub fn membership_churn_soak_traced(
    rounds: u32,
    msgs_per_round: u32,
    len: usize,
    seed: u64,
) -> (ChurnSoakRun, mad_trace::Snapshot) {
    let trace = TraceLog::new();
    let tb = Testbed::with_trace(4, trace.clone());
    let run = run_membership_churn(&tb, rounds, msgs_per_round, len, seed);
    (run, trace.tracer().snapshot())
}

/// The standard figure sweep grids.
pub mod grids {
    /// The paper's packet sizes (fig. 6/7 legends): 8 KB … 128 KB.
    pub const PACKET_SIZES: [usize; 5] = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024];

    /// Message sizes along the x-axis (up to 16 MB, log-spaced).
    pub const MESSAGE_SIZES: [usize; 7] = [
        64 * 1024,
        256 * 1024,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
    ];
}
