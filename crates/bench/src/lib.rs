//! # mad-bench — the paper's evaluation, regenerated
//!
//! Shared harness for every figure and table of the paper's §3 plus the
//! ablations listed in DESIGN.md. Binaries under `src/bin/` drive the
//! sweeps and emit a printed table plus a CSV under `results/`; Criterion
//! microbenches under `benches/` measure the real (wall-clock) costs of the
//! library's hot paths.

#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod report;
pub mod trace_view;
