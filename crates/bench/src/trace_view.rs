//! ASCII rendering and statistics of gateway pipeline traces
//! (figures 5 and 8).

use simnet::{TraceEvent, TraceKind};

use crate::report::Table;

/// Render the gateway's recv/send/overhead spans as a three-lane ASCII
/// timeline (the visual analogue of the paper's figures 5 and 8).
pub fn print_gateway_timeline(trace: &[TraceEvent], recv_label: &str, send_label: &str) {
    let spans: Vec<&TraceEvent> = trace
        .iter()
        .filter(|e| {
            (e.label == recv_label && e.kind == TraceKind::Recv)
                || (e.label == send_label && e.kind == TraceKind::Send)
                || (e.label == recv_label && e.kind == TraceKind::Overhead)
        })
        .collect();
    let Some(first) = spans.iter().map(|e| e.start.as_nanos()).min() else {
        println!("(no gateway spans recorded)");
        return;
    };
    let last = spans.iter().map(|e| e.end.as_nanos()).max().unwrap();
    let width = 100usize;
    let scale = |t: u64| {
        ((t - first) as f64 / (last - first).max(1) as f64 * (width - 1) as f64).round() as usize
    };
    let mut lines = [vec![' '; width], vec![' '; width], vec![' '; width]];
    for e in &spans {
        let (line, ch) = match e.kind {
            TraceKind::Recv => (0, 'R'),
            TraceKind::Send => (1, 'S'),
            TraceKind::Overhead => (2, 'o'),
            TraceKind::Copy => (2, 'c'),
        };
        let (a, b) = (scale(e.start.as_nanos()), scale(e.end.as_nanos()));
        for cell in &mut lines[line][a..=b.min(width - 1)] {
            *cell = ch;
        }
    }
    println!(
        "\ntimeline over {:.1} ms ({} spans):",
        (last - first) as f64 / 1e6,
        spans.len()
    );
    println!("recv  |{}|", lines[0].iter().collect::<String>());
    println!("send  |{}|", lines[1].iter().collect::<String>());
    println!("sw-ovh|{}|", lines[2].iter().collect::<String>());
}

/// Per-kind step duration statistics (the paper's 290 µs vs 540 µs step
/// analysis of §3.4.1). Returns (mean recv µs, mean send µs).
pub fn step_stats(
    trace: &[TraceEvent],
    recv_label: &str,
    send_label: &str,
    csv: &str,
) -> (f64, f64) {
    let mut table = Table::new(
        "gateway step durations (µs)",
        &["step", "count", "mean", "min", "max"],
    );
    let mut means = [0.0f64; 2];
    for (i, (name, label, kind)) in [
        ("recv", recv_label, TraceKind::Recv),
        ("send", send_label, TraceKind::Send),
        ("switch-overhead", recv_label, TraceKind::Overhead),
    ]
    .into_iter()
    .enumerate()
    {
        let durs: Vec<f64> = trace
            .iter()
            .filter(|e| e.label == label && e.kind == kind)
            .map(|e| e.end.since(e.start).as_micros_f64())
            .collect();
        if durs.is_empty() {
            continue;
        }
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        if i < 2 {
            means[i] = mean;
        }
        let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        table.row(vec![
            name.into(),
            durs.len().to_string(),
            format!("{mean:.1}"),
            format!("{min:.1}"),
            format!("{max:.1}"),
        ]);
    }
    table.print();
    table.write_csv(csv);
    (means[0], means[1])
}
