//! ASCII rendering and statistics of gateway pipeline traces
//! (figures 5 and 8).
//!
//! Both renderers consume a unified [`mad_trace::Snapshot`] and look only
//! at `driver` spans (link/PCI activity recorded by the simulator or a
//! real driver), so sim and real traces go through the same code path.

use mad_trace::{EventKind, Snapshot};

use crate::report::Table;

/// `(start_ns, end_ns)` of every `driver/<name>` span on `track`.
fn driver_spans(snap: &Snapshot, track: &str, name: &str) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for t in &snap.threads {
        if t.name != track {
            continue;
        }
        for e in &t.events {
            if e.kind == EventKind::Span && e.cat == "driver" && e.name == name {
                out.push((e.ts_ns, e.ts_ns + e.dur_ns));
            }
        }
    }
    out
}

/// Render the gateway's recv/send/copy/overhead spans as a four-lane ASCII
/// timeline (the visual analogue of the paper's figures 5 and 8). Copies
/// get their own lane: they used to share the overhead lane and overwrite
/// its marks, hiding the buffer-switch gaps the figures are about.
pub fn print_gateway_timeline(snap: &Snapshot, recv_label: &str, send_label: &str) {
    let lanes: [(&str, char, Vec<(u64, u64)>); 4] = [
        ("recv  ", 'R', driver_spans(snap, recv_label, "recv")),
        ("send  ", 'S', driver_spans(snap, send_label, "send")),
        ("copy  ", 'c', driver_spans(snap, recv_label, "copy")),
        ("sw-ovh", 'o', driver_spans(snap, recv_label, "overhead")),
    ];
    let all: Vec<(u64, u64)> = lanes.iter().flat_map(|l| l.2.iter().copied()).collect();
    let Some(first) = all.iter().map(|s| s.0).min() else {
        println!("(no gateway spans recorded)");
        return;
    };
    let last = all.iter().map(|s| s.1).max().unwrap();
    let width = 100usize;
    let scale = |t: u64| {
        ((t - first) as f64 / (last - first).max(1) as f64 * (width - 1) as f64).round() as usize
    };
    println!(
        "\ntimeline over {:.1} ms ({} spans):",
        (last - first) as f64 / 1e6,
        all.len()
    );
    for (name, ch, spans) in &lanes {
        let mut cells = vec![' '; width];
        for &(a, b) in spans {
            for cell in &mut cells[scale(a)..=scale(b).min(width - 1)] {
                *cell = *ch;
            }
        }
        println!("{name}|{}|", cells.iter().collect::<String>());
    }
}

/// Per-kind step duration statistics (the paper's 290 µs vs 540 µs step
/// analysis of §3.4.1). Returns (mean recv µs, mean send µs).
pub fn step_stats(snap: &Snapshot, recv_label: &str, send_label: &str, csv: &str) -> (f64, f64) {
    let mut table = Table::new(
        "gateway step durations (µs)",
        &["step", "count", "mean", "min", "max"],
    );
    let mut means = [0.0f64; 2];
    for (i, (name, label, kind)) in [
        ("recv", recv_label, "recv"),
        ("send", send_label, "send"),
        ("copy", recv_label, "copy"),
        ("switch-overhead", recv_label, "overhead"),
    ]
    .into_iter()
    .enumerate()
    {
        let durs: Vec<f64> = driver_spans(snap, label, kind)
            .iter()
            .map(|&(a, b)| (b - a) as f64 / 1e3)
            .collect();
        if durs.is_empty() {
            continue;
        }
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        if i < 2 {
            means[i] = mean;
        }
        let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        table.row(vec![
            name.into(),
            durs.len().to_string(),
            format!("{mean:.1}"),
            format!("{min:.1}"),
            format!("{max:.1}"),
        ]);
    }
    table.print();
    table.write_csv(csv);
    (means[0], means[1])
}
