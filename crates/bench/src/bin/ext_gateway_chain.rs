//! Extension E4: bandwidth across chains of gateways.
//!
//! The paper's §2.2.2 designs the protocol for multi-gateway
//! configurations but only evaluates one hop. Here: 16 MB transfers over
//! 0, 1 and 2 gateways (alternating SCI and Myrinet segments), measuring
//! how much each store-and-forward-free relay stage actually costs.

use mad_bench::report::Table;
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use simnet::calibration;

const TOTAL: usize = 16 << 20;
const MTU: usize = 32 * 1024;

/// Transfer across `hops` gateways; nodes alternate SCI/Myrinet segments.
fn chain_bandwidth(hops: usize) -> f64 {
    let n = hops + 2; // endpoints + gateways
    let tb = Testbed::new(n);
    let mut sb = SessionBuilder::new(n as u32).with_runtime(tb.runtime());
    let mut nets = Vec::new();
    for seg in 0..hops + 1 {
        let tech = if seg % 2 == 0 {
            SimTech::Sci
        } else {
            SimTech::Myrinet
        };
        let members = [seg as u32, seg as u32 + 1];
        nets.push(sb.network(format!("seg{seg}"), tb.driver(tech), &members));
    }
    let mut opts = VcOptions {
        mtu: Some(MTU),
        ..Default::default()
    };
    opts.gateway.switch_overhead_ns = calibration::gateway_switch_overhead().as_nanos();
    sb.vchannel("vc", &nets, opts);
    let last = (n - 1) as u32;
    let stamps = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                let data = vec![0x42u8; TOTAL];
                let mut w = vc.begin_packing(NodeId(last)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            r if r == last => {
                let mut buf = vec![0u8; TOTAL];
                let mut rd = vc.begin_unpacking().unwrap();
                rd.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                rd.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0x42));
                rt.now_nanos()
            }
            _ => 0, // gateways
        }
    });
    TOTAL as f64 / ((stamps[n - 1] - stamps[0]) as f64 / 1e9) / 1e6
}

fn main() {
    let mut table = Table::new(
        "E4 — 16 MB transfer bandwidth (MB/s) vs gateway chain length",
        &["gateways", "path", "MB/s"],
    );
    let paths = ["SCI direct", "SCI→gw→Myrinet", "SCI→gw→Myrinet→gw→SCI"];
    for (hops, path) in paths.iter().enumerate() {
        table.row(vec![
            hops.to_string(),
            path.to_string(),
            format!("{:.1}", chain_bandwidth(hops)),
        ]);
    }
    table.print();
    table.write_csv("ext_gateway_chain");
    println!(
        "\nshape check: each pipelined relay stage costs a little (its slowest\n\
         stage bounds the stream), but bandwidth does not halve per hop the way\n\
         store-and-forward would — the pipeline keeps all segments busy at once."
    );
}
