//! A8 — multi-path gateway fabrics: aggregate inter-cluster bandwidth as
//! the parallel-gateway count goes 1 → 2 → 4, plus a seeded gateway-death
//! soak.
//!
//! Two measurements, deliberately separated:
//!
//! 1. **Aggregate fabric bandwidth** — several sender/receiver pairs offer
//!    load concurrently and their per-stream-routed streams share the
//!    relay fabric. The relays are the bottleneck, so this is where path
//!    count pays: the single-gateway row is the E3 baseline fabric and the
//!    acceptance bar (≥ 1.6× at 2 paths) is asserted here.
//! 2. **Single-stream per-fragment striping** — one bulk message striped
//!    across every path. Honest but endpoint-bound: one sender (and one
//!    receiver) serializes per-fragment host costs, so extra paths only
//!    help until the endpoints saturate (the same effect the paper hits in
//!    §3.4.1 on a single relay's bus).
//!
//! `--smoke` shrinks the grids for CI; `--trace <path>` re-runs the
//! 2-gateway aggregate point with the unified event trace (the `route:`
//! and `gw:` tracks) exported.

use mad_bench::cli;
use mad_bench::experiments::{
    multipath_aggregate, multipath_aggregate_traced, multipath_death_soak, multipath_oneway,
};
use mad_bench::report::{fmt_bytes, Table};
use madeleine::mad_route::StripePolicy;

/// One xorshift64 step — enough to spread the soak seed over a kill window.
fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

fn split_cell(split: &[(u32, u64)]) -> String {
    if split.is_empty() {
        "- (single path, legacy writer)".to_string()
    } else {
        split
            .iter()
            .map(|&(gw, b)| format!("gw{gw}:{}", fmt_bytes(b as usize)))
            .collect::<Vec<_>>()
            .join("  ")
    }
}

fn main() {
    let smoke = cli::flag("--smoke");

    // 1. Aggregate fabric bandwidth: 4 concurrent pairs, adaptive
    //    per-stream routing over k shared gateways.
    const PAIRS: usize = 4;
    let (msgs, len) = if smoke {
        (4u32, 256 * 1024)
    } else {
        (8u32, 1 << 20)
    };
    let mut agg = Table::new(
        format!(
            "A8 aggregate inter-cluster bandwidth — {PAIRS} pairs x {msgs} x {}, per-stream adaptive routing",
            fmt_bytes(len)
        ),
        &["gateways", "MB/s", "speedup", "per-path payload split"],
    );
    let mut base = 0.0;
    let mut speedup_at_2 = 0.0;
    for k in [1usize, 2, 4] {
        let run = multipath_aggregate(k, PAIRS, msgs, len);
        let mbps = run.m.mbps();
        if k == 1 {
            base = mbps;
        }
        if k == 2 {
            speedup_at_2 = mbps / base;
        }
        agg.row(vec![
            k.to_string(),
            format!("{mbps:.1}"),
            format!("{:.2}x", mbps / base),
            split_cell(&run.split),
        ]);
    }
    agg.print();
    if !smoke {
        agg.write_csv("a8_multipath_scaling");
    }
    println!("2-path aggregate speedup over the single-gateway E3 baseline: {speedup_at_2:.2}x");
    assert!(
        speedup_at_2 >= 1.6,
        "2 parallel gateways must aggregate >= 1.6x the single-relay bandwidth, got {speedup_at_2:.2}x"
    );

    // 2. Single-stream per-fragment striping: one bulk message, every
    //    fragment round-robined over the live paths.
    let total: usize = if smoke { 4 << 20 } else { 32 << 20 };
    let mut one = Table::new(
        format!(
            "A8 single-stream striping — one {} message, per-fragment",
            fmt_bytes(total)
        ),
        &["gateways", "MB/s", "speedup", "per-path payload split"],
    );
    let mut one_base = 0.0;
    for k in [1usize, 2, 4] {
        let run = multipath_oneway(k, total, StripePolicy::PerFragment);
        let mbps = run.m.mbps();
        if k == 1 {
            one_base = mbps;
        }
        one.row(vec![
            k.to_string(),
            format!("{mbps:.1}"),
            format!("{:.2}x", mbps / one_base),
            split_cell(&run.split),
        ]);
    }
    one.print();
    if !smoke {
        one.write_csv("a8_multipath_striping");
    }

    // 3. Seeded death soak: one of two gateways silently dies
    //    mid-schedule; every stream must still arrive intact, exactly
    //    once, with no hang.
    let seed: u64 = std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20010914);
    let (soak_msgs, soak_len) = if smoke {
        (8u32, 128 * 1024)
    } else {
        (16u32, 512 * 1024)
    };
    let kill_at_ns = 10_000_000 + xorshift(seed) % 20_000_000; // 10–30 virtual ms
    let soak = multipath_death_soak(2, soak_msgs, soak_len, kill_at_ns);
    println!(
        "death soak (seed {seed}): gateway killed at {:.1} virtual ms — {}/{soak_msgs} streams of {} delivered, {} failed over, {} path(s) retired, schedule took {:.1} virtual ms",
        kill_at_ns as f64 / 1e6,
        soak.delivered,
        fmt_bytes(soak_len),
        soak.failovers,
        soak.deaths,
        soak.seconds * 1e3,
    );
    assert_eq!(soak.delivered, soak_msgs, "death soak lost streams");
    assert!(
        soak.deaths >= 1,
        "gateway died mid-schedule but the routing plane never retired it"
    );

    if let Some(path) = cli::trace_path() {
        let (_, snap) = multipath_aggregate_traced(2, PAIRS, msgs.min(4), len.min(256 * 1024));
        cli::export_trace(&snap, &path);
    }
}
