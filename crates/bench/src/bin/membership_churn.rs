//! A11 — dynamic membership under traffic: a seeded churn soak where a
//! gateway cycles leave → rejoin while bulk streams keep flowing, with
//! the self-tuning controller governing the shared credit window.
//!
//! The schedule asserts the robustness contract end to end: zero lost
//! acknowledged streams, every episode retires *and* readmits the path
//! (the rejoin handshake re-plans before its final ack, so `rejoin`
//! returning inside its timeout IS the bounded-re-plan bound), and zero
//! stale-incarnation drops — graceful churn is epoch-monotone, so any
//! stale drop would mean the epoch filter misfired.
//!
//! `--smoke` shrinks the schedule for CI; `--trace <path>` re-runs one
//! seeded schedule with the unified event trace (the `member:`, `ctl:`,
//! and `health:` tracks alongside `route:`/`gw:`) exported.

use mad_bench::cli;
use mad_bench::experiments::{membership_churn_soak, membership_churn_soak_traced};
use mad_bench::report::{fmt_bytes, Table};

/// One xorshift64 step — spreads the root seed over per-row schedules.
fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

fn main() {
    let smoke = cli::flag("--smoke");
    let seed: u64 = std::env::var("MAD_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20010914);

    let (grid, len): (&[u32], usize) = if smoke {
        (&[2, 3], 64 * 1024)
    } else {
        (&[2, 4, 8], 256 * 1024)
    };
    let msgs_per_round: u32 = if smoke { 4 } else { 6 };

    let mut table = Table::new(
        format!(
            "A11 membership churn soak (seed {seed}) — {msgs_per_round} x {} per round, gateway 1 cycles leave -> rejoin",
            fmt_bytes(len)
        ),
        &[
            "episodes",
            "delivered",
            "readmissions",
            "retirements",
            "stale drops",
            "final epoch",
            "virtual ms",
        ],
    );
    let mut s = seed;
    for &rounds in grid {
        s = xorshift(s);
        let run = membership_churn_soak(rounds, msgs_per_round, len, s);
        assert_eq!(
            run.delivered,
            rounds * msgs_per_round,
            "churn soak lost streams"
        );
        assert!(
            run.readmissions >= rounds as u64,
            "every churn episode must readmit the path: {run:?}"
        );
        assert_eq!(run.stale_drops, 0, "graceful churn produced stale drops");
        assert_eq!(
            run.final_epoch,
            rounds as u64 + 1,
            "each rejoin must bump the incarnation epoch by one"
        );
        table.row(vec![
            rounds.to_string(),
            format!("{}/{}", run.delivered, rounds * msgs_per_round),
            run.readmissions.to_string(),
            run.deaths.to_string(),
            run.stale_drops.to_string(),
            run.final_epoch.to_string(),
            format!("{:.1}", run.seconds * 1e3),
        ]);
    }
    table.print();
    if !smoke {
        table.write_csv("a11_membership_churn");
    }
    println!("all schedules delivered every acknowledged stream with zero stale drops");

    if let Some(path) = cli::trace_path() {
        let (_, snap) =
            membership_churn_soak_traced(2, msgs_per_round.min(4), len.min(64 * 1024), seed);
        cli::export_trace(&snap, &path);
    }
}
