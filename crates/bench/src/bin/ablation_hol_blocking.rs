//! Ablation A6: head-of-line blocking at the gateway — message-at-a-time
//! relay vs fragment-granular stream interleaving.
//!
//! A 1 KB message and a 16 MB bulk transfer enter the same gateway from
//! different senders. With the old discipline (modeled by the engine's
//! `exclusive_streams` knob) the gateway drains the bulk message to
//! completion before touching the short one, so the short message's
//! latency is the *remaining bulk relay time* — hundreds of milliseconds.
//! With version-2 per-packet stream tags the engine round-robins across
//! inbound connections at fragment granularity and the short message slips
//! between bulk fragments, paying only a few fragment slots.
//!
//! The bulk bandwidth column shows the price of interleaving: the same
//! per-fragment pipeline, so effectively none.

use mad_bench::report::{fmt_bytes, Table};
use mad_sim::{SimTech, Testbed};
use madeleine::gateway::GatewayConfig;
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use simnet::calibration;

const BULK: usize = 16 << 20;
const PING: usize = 1024;

/// One run; returns (ping one-way µs, bulk MB/s). When `trace` is given,
/// the run records the unified event trace into it.
fn run(exclusive: bool, mtu: usize, trace: Option<simnet::TraceLog>) -> (f64, f64) {
    let tb = match trace {
        Some(t) => Testbed::with_trace(5, t),
        None => Testbed::new(5),
    };
    let mut sb = SessionBuilder::new(5).with_runtime(tb.runtime());
    // SCI cluster {0,1,2} feeds Myrinet cluster {2,3,4} through gateway 2,
    // the paper's §3 testbed with one extra host on each side.
    let n0 = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1, 2]);
    let n1 = sb.network("myri", tb.driver(SimTech::Myrinet), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(mtu),
            gateway: GatewayConfig {
                switch_overhead_ns: calibration::gateway_switch_overhead().as_nanos(),
                exclusive_streams: exclusive,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let stamps = sb.run(|node| {
        let rt = node.runtime().clone();
        let vc = node.vchannel("vc");
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                // Bulk sender, 0 → 3.
                let t0 = rt.now_nanos();
                let data = vec![0x5Au8; BULK];
                let mut w = vc.begin_packing(NodeId(3)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            1 => {
                // Ping sender, 1 → 4: inject once the bulk is mid-relay.
                rt.charge_overhead(20_000_000);
                let t0 = rt.now_nanos();
                let data = vec![0xA5u8; PING];
                let mut w = vc.begin_packing(NodeId(4)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            2 => 0,
            3 => {
                let mut buf = vec![0u8; BULK];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                rt.now_nanos()
            }
            4 => {
                let mut buf = vec![0u8; PING];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    let ping_us = stamps[4].saturating_sub(stamps[1]) as f64 / 1e3;
    let bulk_s = stamps[3].saturating_sub(stamps[0]) as f64 / 1e9;
    (ping_us, BULK as f64 / bulk_s / 1e6)
}

fn main() {
    let mut table = Table::new(
        "A6 — 1 KB message latency through a gateway busy relaying 16 MB, \
         message-at-a-time vs interleaved",
        &[
            "packet",
            "excl ping us",
            "intl ping us",
            "speedup",
            "excl bulk MB/s",
            "intl bulk MB/s",
        ],
    );
    for mtu in [8 * 1024usize, 32 * 1024, 128 * 1024] {
        let (excl_ping, excl_bulk) = run(true, mtu, None);
        let (intl_ping, intl_bulk) = run(false, mtu, None);
        table.row(vec![
            fmt_bytes(mtu),
            format!("{excl_ping:.0}"),
            format!("{intl_ping:.0}"),
            format!("{:.0}x", excl_ping / intl_ping),
            format!("{excl_bulk:.1}"),
            format!("{intl_bulk:.1}"),
        ]);
    }
    table.print();
    table.write_csv("ablation_hol_blocking");
    println!(
        "\npaper shape check: under message-at-a-time relay the short message\n\
         waits out the rest of the bulk transfer (latency ~ remaining relay\n\
         time, hundreds of ms); interleaved relay cuts it to a few fragment\n\
         slots (>=5x, typically orders of magnitude) while the bulk bandwidth\n\
         columns stay within noise of each other."
    );
    if let Some(path) = mad_bench::cli::trace_path() {
        // Re-run the interleaved 32 KB case with tracing on and export it:
        // the gateway's stall instants and round-robin relay spans are the
        // interesting part of this ablation.
        let trace = simnet::TraceLog::new();
        run(false, 32 * 1024, Some(trace.clone()));
        mad_bench::cli::export_trace(&trace.tracer().snapshot(), &path);
    }
}
