//! Ablation A7: gateway transmit batching.
//!
//! Small forwarded fragments pay one per-send software overhead each on
//! the outbound wire, plus the gateway's per-fragment buffer switch
//! (§3.3.1). Coalescing up to `max_batch` consecutive same-destination
//! packets into one batched wire frame amortizes the per-send cost while
//! fragment granularity — and with it the pipelining the paper's §2.3
//! design is built on — is preserved end-to-end: the frame is split back
//! into fragments at the next hop.
//!
//! The sweep crosses batch depth with fragment size and the modeled
//! buffer-switch overhead on the overhead-dominated SCI→FastEthernet
//! route. Expected shape: sub-KB fragments gain the most (their wire time
//! is small next to the 50 µs per-send overhead), while bulk fragments at
//! the route MTU never fit a batch frame under the frame budget and ride
//! the unchanged zero-copy path — batching must cost them nothing.
//!
//! Part two re-checks the A4c invariant under batching: the credit window
//! still bounds peak gateway occupancy (credits are taken per fragment
//! *before* it may join a train, so a batch cannot overdraw the window).

use mad_bench::cli;
use mad_bench::experiments::{forwarded_oneway_stats, forwarded_oneway_traced, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let smoke = cli::flag("--smoke");
    let batches: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    // (fragment size, message size): smaller messages for tiny fragments
    // keep the event count — and the run time — flat across rows.
    let frags: &[(usize, usize)] = if smoke {
        &[(1024, 1 << 20)]
    } else {
        &[(256, 256 * 1024), (1024, 1 << 20), (32 * 1024, 16 << 20)]
    };
    let overheads_us: &[u64] = if smoke { &[40] } else { &[0, 40, 80] };

    let mut header = vec!["frag".to_string(), "switch_us".to_string()];
    header.extend(batches.iter().map(|b| format!("b{b}_MB/s")));
    header.push("best_gain_%".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "A7 — SCI→FastEthernet forwarded bandwidth (MB/s) vs gateway transmit batching",
        &header_refs,
    );

    for &(frag, total) in frags {
        for &overhead in overheads_us {
            let mut row = vec![fmt_bytes(frag), format!("{overhead}")];
            let mut base = 0.0f64;
            let mut best = 0.0f64;
            for &max_batch in batches {
                let setup = GwSetup {
                    mtu: frag,
                    pipeline_depth: 32,
                    switch_overhead_ns: overhead * 1000,
                    max_batch,
                    ..Default::default()
                };
                let (m, _) =
                    forwarded_oneway_stats(SimTech::Sci, SimTech::FastEthernet, total, setup);
                let bw = m.mbps();
                if max_batch == 1 {
                    base = bw;
                }
                best = best.max(bw);
                row.push(format!("{bw:.2}"));
            }
            row.push(format!("{:+.1}", (best / base - 1.0) * 100.0));
            table.row(row);
        }
    }
    table.print();
    if !smoke {
        table.write_csv("ablation_batching");
    }
    println!(
        "\nshape check: ≤1KB fragments gain well over 25% with max_batch ≥ 4 at\n\
         the calibrated 40us switch overhead (one 50us per-send overhead is\n\
         amortized over the train), while 32KB fragments exceed the batch\n\
         frame budget, stay on the unbatched zero-copy path, and land within\n\
         measurement noise of the b1 column."
    );

    // Part two: the A4c occupancy bound must survive batching. Credits are
    // taken per fragment before it may join a train, so peak held bytes
    // stay under window × MTU regardless of batch depth.
    let mut bound_tbl = Table::new(
        "A7b — credit-window occupancy bound under batching (1KB fragments)",
        &[
            "window_frags",
            "max_batch",
            "fwd_MB/s",
            "peak_held_KB",
            "bound_KB",
        ],
    );
    let windows: &[u32] = if smoke { &[8] } else { &[8, 16] };
    let bound_batches: &[usize] = if smoke { &[8] } else { &[1, 4, 16] };
    for &window in windows {
        for &max_batch in bound_batches {
            let setup = GwSetup {
                mtu: 1024,
                pipeline_depth: 64,
                credit_window: Some(window),
                max_batch,
                ..Default::default()
            };
            let (m, totals) =
                forwarded_oneway_stats(SimTech::Sci, SimTech::FastEthernet, 1 << 20, setup);
            // A held fragment is payload plus the GTM prelude; same slack
            // formula as the tier-1 occupancy test.
            let bound = window as i64 * (1024 + 64) + 4096;
            assert!(
                totals.peak_held_bytes <= bound,
                "occupancy bound violated under batching: held {} > bound {}",
                totals.peak_held_bytes,
                bound
            );
            bound_tbl.row(vec![
                format!("{window}"),
                format!("{max_batch}"),
                format!("{:.2}", m.mbps()),
                format!("{:.1}", totals.peak_held_bytes as f64 / 1024.0),
                format!("{}", bound / 1024),
            ]);
        }
    }
    bound_tbl.print();
    if !smoke {
        bound_tbl.write_csv("ablation_batching_occupancy");
    }
    println!(
        "\nshape check: peak occupancy never exceeds window × MTU at any batch\n\
         depth (asserted above, not just eyeballed)."
    );

    if let Some(path) = cli::trace_path() {
        let (_, snap) = forwarded_oneway_traced(
            SimTech::Sci,
            SimTech::FastEthernet,
            1 << 20,
            GwSetup {
                mtu: 1024,
                pipeline_depth: 32,
                max_batch: 8,
                ..Default::default()
            },
        );
        cli::export_trace(&snap, &path);
    }
}
