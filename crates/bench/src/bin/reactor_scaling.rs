//! A9 — reactor engine scaling: concurrent channel count vs thread
//! budget, and single-stream bandwidth parity between the engine cores.
//!
//! Two measurements:
//!
//! 1. **Channel scaling at a fixed thread budget** — N virtual channels
//!    share one gateway node over real shared-memory transports; the
//!    metric is the number of threads the session spawns through its
//!    runtime. The threaded engine burns 4 gateway threads per channel
//!    (2 nets × (1 polling + 1 forwarding)); the reactor engine runs every
//!    channel on the node's fixed 2-worker pool, so its thread count is
//!    flat in N. The acceptance bar: within a 32-thread budget the
//!    reactor sustains ≥ 8× more channels than the threaded engine.
//! 2. **Single-stream bulk parity** — one 16 MB transfer through a
//!    simulated Myrinet→SCI gateway under each engine, on the virtual
//!    clock (deterministic, so a single run suffices). The reactor must
//!    stay within 5% of the threaded engine's bandwidth: poll-driven
//!    scheduling is a thread-economics change, not a data-path change.
//!
//! `--smoke` shrinks the channel sweep for CI.

use mad_bench::cli;
use mad_bench::report::{fmt_bytes, Table};
use mad_shm::ShmDriver;
use mad_sim::{SimTech, Testbed};
use madeleine::gateway::{EngineKind, GatewayConfig};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};

/// Thread budget the channel sweep is judged against.
const THREAD_BUDGET: u64 = 32;

fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Threaded => "threaded",
        EngineKind::Reactor => "reactor",
    }
}

/// Run `channels` virtual channels through one gateway node (chain
/// 0-1-2 over two shm networks), one message per channel, and return the
/// number of threads the session spawned through its runtime.
fn channel_sweep_run(channels: usize, engine: EngineKind) -> u64 {
    const MSG: usize = 64 * 1024;
    let mut sb = SessionBuilder::new(3);
    let rt = sb.runtime().clone();
    let n0 = sb.network("shm0", ShmDriver::new(rt.clone()), &[0, 1]);
    let n1 = sb.network("shm1", ShmDriver::new(rt.clone()), &[1, 2]);
    for i in 0..channels {
        sb.vchannel(
            format!("vc{i}"),
            &[n0, n1],
            VcOptions {
                mtu: Some(16 * 1024),
                gateway: GatewayConfig {
                    engine,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    let ok = sb.run(move |node| {
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for i in 0..channels {
                    let data = vec![i as u8; MSG];
                    let vc = node.vchannel(&format!("vc{i}"));
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                true
            }
            1 => true,
            2 => {
                let mut all_ok = true;
                for i in 0..channels {
                    let vc = node.vchannel(&format!("vc{i}"));
                    let mut buf = vec![0u8; MSG];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    all_ok &= buf.iter().all(|&b| b == i as u8);
                }
                all_ok
            }
            _ => unreachable!(),
        }
    });
    assert!(ok.into_iter().all(|x| x), "payload corrupted");
    rt.threads_spawned()
}

/// One 16 MB transfer through a simulated Myrinet→SCI gateway; returns
/// virtual-time bandwidth in MB/s.
fn bulk_run(engine: EngineKind, total: usize) -> f64 {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(32 * 1024),
            gateway: GatewayConfig {
                engine,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let stamps = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                let data = vec![0x5Au8; total];
                let mut w = vc.begin_packing(NodeId(2)).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                t0
            }
            1 => 0,
            2 => {
                let mut buf = vec![0u8; total];
                let mut r = vc.begin_unpacking().unwrap();
                r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                r.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == 0x5A), "payload corrupted");
                rt.now_nanos()
            }
            _ => unreachable!(),
        }
    });
    let seconds = (stamps[2] - stamps[0]) as f64 / 1e9;
    total as f64 / 1e6 / seconds
}

fn main() {
    let smoke = cli::flag("--smoke");

    // 1. Channel count × engine mode at a fixed thread budget.
    let sweep: &[usize] = if smoke { &[4, 32] } else { &[1, 4, 16, 64] };
    let mut table = Table::new(
        format!(
            "A9 channel scaling — N channels through one gateway, thread budget {THREAD_BUDGET}"
        ),
        &["channels", "engine", "threads_spawned", "within_budget"],
    );
    let mut sustained = [
        (EngineKind::Threaded, 0usize),
        (EngineKind::Reactor, 0usize),
    ];
    for &n in sweep {
        for (engine, best) in &mut sustained {
            let threads = channel_sweep_run(n, *engine);
            let fits = threads <= THREAD_BUDGET;
            if fits {
                *best = (*best).max(n);
            }
            table.row(vec![
                n.to_string(),
                engine_name(*engine).to_string(),
                threads.to_string(),
                fits.to_string(),
            ]);
        }
    }
    table.print();
    if !smoke {
        table.write_csv("a9_reactor_scaling");
    }
    let threaded_max = sustained[0].1.max(1);
    let reactor_max = sustained[1].1;
    let factor = reactor_max as f64 / threaded_max as f64;
    println!(
        "  sustained at {THREAD_BUDGET}-thread budget: threaded {threaded_max}, \
         reactor {reactor_max} ({factor:.0}x)"
    );
    assert!(
        factor >= 8.0,
        "reactor must sustain >= 8x more channels than threaded at the \
         {THREAD_BUDGET}-thread budget (got {factor:.1}x)"
    );

    // 2. Single-stream bulk bandwidth parity on the virtual clock.
    let total = if smoke { 4 << 20 } else { 16 << 20 };
    let mut bulk = Table::new(
        format!(
            "A9 single-stream bulk parity — Myrinet->SCI, {}",
            fmt_bytes(total)
        ),
        &["engine", "MB/s", "vs threaded"],
    );
    let t_mbps = bulk_run(EngineKind::Threaded, total);
    let r_mbps = bulk_run(EngineKind::Reactor, total);
    bulk.row(vec![
        "threaded".to_string(),
        format!("{t_mbps:.1}"),
        "1.000".to_string(),
    ]);
    bulk.row(vec![
        "reactor".to_string(),
        format!("{r_mbps:.1}"),
        format!("{:.3}", r_mbps / t_mbps),
    ]);
    bulk.print();
    if !smoke {
        bulk.write_csv("a9_reactor_bulk");
    }
    let ratio = r_mbps / t_mbps;
    assert!(
        (ratio - 1.0).abs() <= 0.05,
        "reactor bulk bandwidth must stay within 5% of threaded \
         (threaded {t_mbps:.1} MB/s, reactor {r_mbps:.1} MB/s)"
    );
    println!("  bulk parity: reactor/threaded = {ratio:.3} (bar: within 5%)");
}
