//! Ablation A4: inbound flow control on the gateway (the paper's §4 future
//! work: "some sophisticated bandwidth control mechanism is needed to
//! regulate the incoming communication flow on gateways").
//!
//! Part one throttles the inbound (Myrinet) device rate and shows that
//! naive rate capping *cannot* help under burst-priority arbitration: a
//! slower DMA burst occupies the bus longer, starving the SCI PIO sends
//! even more. Part two models the workaround the paper actually proposes
//! in §3.4.1 — driving SCI sends with the NIC's DMA engine — which removes
//! the arbitration asymmetry and recovers the lost bandwidth.

use mad_bench::experiments::{
    forwarded_oneway, forwarded_oneway_stats, sci_with_dma_engine, GwSetup,
};
use mad_bench::report::Table;
use mad_sim::SimTech;

fn main() {
    let mut table = Table::new(
        "A4 — Myrinet→SCI bandwidth (MB/s) vs inbound rate cap, 16 MB messages, 32 KB packets",
        &["inbound_cap_MB/s", "fwd_MB/s"],
    );
    let caps: [Option<f64>; 7] = [
        None,
        Some(60.0e6),
        Some(50.0e6),
        Some(40.0e6),
        Some(30.0e6),
        Some(20.0e6),
        Some(10.0e6),
    ];
    let mut best = (String::new(), 0.0f64);
    for cap in caps {
        let setup = GwSetup {
            mtu: 32 * 1024,
            inbound_rate_cap: cap,
            ..Default::default()
        };
        let bw = forwarded_oneway(SimTech::Myrinet, SimTech::Sci, 16 << 20, setup).mbps();
        let label = cap.map_or("none (70)".to_string(), |c| format!("{:.0}", c / 1e6));
        if bw > best.1 {
            best = (label.clone(), bw);
        }
        table.row(vec![label, format!("{bw:.1}")]);
    }
    table.print();
    table.write_csv("ablation_flow_control");
    println!(
        "\nnegative result, faithfully reproduced: naive rate caps only *lengthen*\n\
         the DMA's bus occupancy, so every cap loses to the baseline ({} MB/s cap\n\
         was best at {:.1} MB/s). The structural fix the paper proposes in §3.4.1 —\n\
         \"using the SCI DMA engine instead of PIO operations\" — does work:",
        best.0, best.1
    );

    let mut fix = Table::new(
        "A4b — the paper's proposed workaround: SCI sends via the DMA engine",
        &["sci_send_path", "fwd_MB/s"],
    );
    let pio = forwarded_oneway(
        SimTech::Myrinet,
        SimTech::Sci,
        16 << 20,
        GwSetup::with_mtu(32 * 1024),
    )
    .mbps();
    let dma = forwarded_oneway(
        SimTech::Myrinet,
        SimTech::Sci,
        16 << 20,
        GwSetup {
            mtu: 32 * 1024,
            outbound_override: Some(sci_with_dma_engine()),
            ..Default::default()
        },
    )
    .mbps();
    fix.row(vec!["cpu_pio (default)".into(), format!("{pio:.1}")]);
    fix.row(vec!["dma_engine (workaround)".into(), format!("{dma:.1}")]);
    fix.print();
    fix.write_csv("ablation_flow_control_dma_workaround");
    println!(
        "\nshape check: as a bus master the SCI DMA engine no longer loses\n\
         arbitration to the Myrinet NIC, so the collapse disappears."
    );

    // Part three: the mechanism that *does* regulate the incoming flow —
    // per-stream credit windows. The gateway stops pulling from an inbound
    // stream once `window` fragments are in flight through it, so its peak
    // buffer occupancy is bounded by window × MTU while the grant traffic
    // keeps the pipeline overlapped. The sweep shows the occupancy bound
    // tightening linearly with the window while bandwidth stays put. (On
    // this Myrinet→SCI pair the pacing keeps the inbound DMA active
    // alongside the outbound PIO for the whole transfer, so the §3.4.1
    // arbitration asymmetry charges every windowed run the same flat tax —
    // the coupling parts one and two measure.)
    let mut sweep = Table::new(
        "A4c — credit-window sweep, Myrinet→SCI, 16 MB messages, 32 KB packets",
        &[
            "window_frags",
            "fwd_MB/s",
            "peak_held_KB",
            "bound_KB",
            "credits_granted",
        ],
    );
    let windows: [Option<u32>; 6] = [None, Some(32), Some(16), Some(8), Some(4), Some(2)];
    for window in windows {
        // A deep forwarding pipeline: without credits the gateway will
        // happily queue up to `pipeline_depth` fragments per hop, so the
        // window is what actually bounds occupancy.
        let setup = GwSetup {
            mtu: 32 * 1024,
            pipeline_depth: 64,
            credit_window: window,
            ..Default::default()
        };
        let (m, totals) = forwarded_oneway_stats(SimTech::Myrinet, SimTech::Sci, 16 << 20, setup);
        let label = window.map_or("none".to_string(), |w| w.to_string());
        let bound = window.map_or("-".to_string(), |w| {
            format!("{}", w as i64 * (32 * 1024) / 1024)
        });
        sweep.row(vec![
            label,
            format!("{:.1}", m.mbps()),
            format!("{:.1}", totals.peak_held_bytes as f64 / 1024.0),
            bound,
            format!("{}", totals.credits_granted),
        ]);
    }
    sweep.print();
    sweep.write_csv("ablation_flow_control_credit_window");
    println!(
        "\nshape check: peak occupancy sits exactly on the window × MTU bound\n\
         (uncapped, the gateway buffers ~2 MB — whatever the 70 MB/s inbound\n\
         side gets ahead of the slower outbound side). The bandwidth cost is\n\
         flat across windows: pacing keeps the inbound DMA concurrently\n\
         active with the outbound PIO sends, so the §3.4.1 arbitration\n\
         asymmetry taxes every windowed run alike — the bound is bought for\n\
         one arbitration tax, not a per-window penalty."
    );
}
