//! Ablation A2: the zero-copy buffer handoff (paper §2.3).
//!
//! With zero-copy disabled the gateway always receives into a plain
//! temporary buffer, paying whatever extraction copy the inbound driver
//! charges (SCI: one segment→memory copy per fragment) before
//! retransmitting. The paper: "one of our priorities is to avoid copying
//! messages, which can take as much time as the reception of a message."

use mad_bench::experiments::{forwarded_oneway, grids, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let mut table = Table::new(
        "A2 — gateway zero-copy vs extra-copy, 16 MB messages (MB/s)",
        &[
            "packet",
            "s2m_zero_copy",
            "s2m_extra_copy",
            "m2s_zero_copy",
            "m2s_extra_copy",
        ],
    );
    for &packet in &grids::PACKET_SIZES {
        let mut row = vec![fmt_bytes(packet)];
        for (from, to) in [
            (SimTech::Sci, SimTech::Myrinet),
            (SimTech::Myrinet, SimTech::Sci),
        ] {
            for zero_copy in [true, false] {
                let setup = GwSetup {
                    mtu: packet,
                    zero_copy,
                    ..Default::default()
                };
                row.push(format!(
                    "{:.1}",
                    forwarded_oneway(from, to, 16 << 20, setup).mbps()
                ));
            }
        }
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_zero_copy");
    println!(
        "\npaper shape check: SCI→Myrinet should lose clearly without zero-copy\n\
         (each fragment pays a segment-extraction memcpy on the gateway's CPU);\n\
         Myrinet→SCI is already PIO-starved, so the extra copy hides behind the\n\
         slow send steps."
    );
}
