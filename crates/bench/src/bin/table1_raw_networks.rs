//! Table 1 (from §3.2.2 prose): raw single-network Madeleine performance.
//!
//! Per network: one-way latency of a tiny message and bandwidth versus
//! packet size. The paper's narrative: SCI wins small packets, Myrinet wins
//! large ones, and they perform comparably around 16 KB — which is why
//! 16 KB is the suggested route MTU.

use mad_bench::experiments::{grids, raw_latency_micros, raw_oneway};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let techs = [
        ("myrinet/bip", SimTech::Myrinet),
        ("sci/sisci", SimTech::Sci),
        ("fast-ethernet/tcp", SimTech::FastEthernet),
    ];

    let mut lat = Table::new(
        "Table 1a — one-way latency of a 16-byte message (µs)",
        &["network", "latency_us"],
    );
    for (name, tech) in techs {
        lat.row(vec![
            name.into(),
            format!("{:.1}", raw_latency_micros(tech, 16)),
        ]);
    }
    lat.print();
    lat.write_csv("table1a_raw_latency");

    let mut header = vec!["packet".to_string()];
    header.extend(techs.iter().map(|(n, _)| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut bw = Table::new(
        "Table 1b — raw one-way bandwidth (MB/s) of an 8 MB message vs packet size",
        &header_refs,
    );
    for &packet in &grids::PACKET_SIZES {
        let mut row = vec![fmt_bytes(packet)];
        for (_, tech) in techs {
            let m = raw_oneway(tech, 8 << 20, packet);
            row.push(format!("{:.1}", m.mbps()));
        }
        bw.row(row);
    }
    bw.print();
    bw.write_csv("table1b_raw_bandwidth");
    println!(
        "\npaper shape check: SCI should lead at 8KB, Myrinet should lead at 64KB+\n\
         and exceed 60 MB/s; around 16KB the two should be comparable (the\n\
         crossover motivating the default MTU)."
    );
}
