//! `mad_top` — live cluster-wide telemetry viewer over the in-band
//! kind-10 metrics pull (DESIGN §13.3).
//!
//! Builds the simulated cluster-of-clusters (Myrinet {0,1,2} bridged to
//! SCI {2,3,4} by gateway 2), starts a bulk transfer 0 → 4, and has the
//! idle endpoint 1 act as the operator console: every refresh it pulls a
//! live snapshot from *every* node — requests and replies ride the
//! virtual channel's own special conduits, crossing the gateway like any
//! other control packet — and renders one per-node table: forward-latency
//! quantiles, outbound-queue occupancy, open relay streams, held bytes,
//! pool hit rate, thread budget, and watchdog degradations.
//!
//! By default the view refreshes several times while the transfer is in
//! flight (clearing the screen between frames, `top`-style). `--once`
//! renders a single mid-run frame with no screen clearing — the mode CI
//! uses. `--trace <path>` additionally exports the unified event trace,
//! whose teardown flush carries the `metrics:` track (`trace_check
//! --require-metrics` validates it). Exits non-zero if any node fails to
//! answer a pull.

use mad_bench::cli;
use mad_bench::report::fmt_bytes;
use mad_metrics::Snapshot;
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{MetricsOptions, NodeId, RecvMode, SendMode, SessionBuilder};
use simnet::TraceLog;

const NODES: u32 = 5;
const MSGS: u32 = 16;
const LEN: usize = 512 * 1024;
/// Virtual time between console refreshes.
const REFRESH_NS: u64 = 10_000_000;

fn payload(idx: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(idx as u8))
        .collect()
}

/// One rendered frame: a row per node that answered the pull.
fn render(frame: usize, now_ns: u64, pulled: &std::collections::BTreeMap<NodeId, Snapshot>) {
    println!(
        "mad_top — frame {frame} @ {:.2} virtual ms, {} / {NODES} nodes answering",
        now_ns as f64 / 1e6,
        pulled.len()
    );
    println!(
        "{:>4}  {:>9} {:>9} {:>9} {:>7}  {:>11}  {:>4}  {:>9}  {:>5}  {:>3}  {:>4}",
        "node",
        "fwd p50",
        "fwd p99",
        "fwd max",
        "fwds",
        "queue cur/pk",
        "open",
        "held",
        "pool%",
        "thr",
        "degr"
    );
    for (node, snap) in pulled {
        let us = |v: u64| format!("{:.1}us", v as f64 / 1e3);
        let fwd = snap.hist("gw_forward_ns");
        let (q, qp) = snap.gauge("queue_depth").unwrap_or((0, 0));
        let (open, _) = snap.gauge("open_streams").unwrap_or((0, 0));
        let (held, _) = snap.gauge("gw_held_bytes").unwrap_or((0, 0));
        let gets = snap.gauge("pool_gets").map_or(0, |(v, _)| v);
        let hits = snap.gauge("pool_hits").map_or(0, |(v, _)| v);
        let pool = if gets > 0 {
            format!("{:.0}%", 100.0 * hits as f64 / gets as f64)
        } else {
            "-".to_string()
        };
        let thr = snap.gauge("rt_threads_spawned").map_or(0, |(v, _)| v);
        let degr = snap.counter("degradations").unwrap_or(0);
        println!(
            "{:>4}  {:>9} {:>9} {:>9} {:>7}  {:>11}  {:>4}  {:>9}  {:>5}  {:>3}  {:>4}",
            node.0,
            fwd.map_or("-".into(), |h| us(h.quantile(0.5))),
            fwd.map_or("-".into(), |h| us(h.quantile(0.99))),
            fwd.map_or("-".into(), |h| us(h.max)),
            fwd.map_or(0, |h| h.count()),
            format!("{q}/{qp}"),
            open,
            fmt_bytes(held.max(0) as usize),
            pool,
            thr,
            degr
        );
    }
    println!();
}

fn main() {
    let once = cli::flag("--once");
    let frames = if once { 1usize } else { 6 };
    let trace_to = cli::trace_path();

    // With `--trace <path>` the run also records the unified event trace,
    // whose teardown flush carries the `metrics:` track trace_check
    // validates (`--require-metrics` in CI).
    let trace = trace_to.as_ref().map(|_| TraceLog::new());
    let tb = match &trace {
        Some(t) => Testbed::with_trace(NODES as usize, t.clone()),
        None => Testbed::new(NODES as usize),
    };
    let mut sb = SessionBuilder::new(NODES).with_runtime(tb.runtime());
    let n0 = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2]);
    let n1 = sb.network("sci", tb.driver(SimTech::Sci), &[2, 3, 4]);
    sb.vchannel(
        "vc",
        &[n0, n1],
        VcOptions {
            mtu: Some(8 * 1024),
            metrics: Some(MetricsOptions::default()),
            ..Default::default()
        },
    );

    // Per-rank result: (nodes answering the last pull, peak forward-
    // latency sample count observed across the rendered frames).
    let results = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                for i in 0..MSGS {
                    let data = payload(i, LEN);
                    let mut w = vc.begin_packing(NodeId(4)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                (0usize, 0usize)
            }
            1 => {
                // The operator console: pull everyone, render, sleep a
                // refresh interval of virtual time, repeat — all while
                // the bulk transfer is crossing the gateway.
                let plane = vc.metrics_plane().expect("metrics enabled").clone();
                let targets: Vec<NodeId> = (0..NODES).map(NodeId).collect();
                let busy = |pulled: &std::collections::BTreeMap<NodeId, Snapshot>| {
                    pulled
                        .values()
                        .any(|s| s.hist("gw_forward_ns").is_some_and(|h| h.count() > 0))
                };
                // In the single-frame CI mode, wait until the gateway has
                // actually forwarded something so the one rendered frame
                // is genuinely mid-run.
                if once {
                    for _ in 0..200 {
                        if busy(&plane.pull(&targets, 1_000_000_000)) {
                            break;
                        }
                        let ev = rt.event();
                        ev.wait_past_timeout(ev.epoch(), REFRESH_NS / 10);
                    }
                }
                let mut answered = 0usize;
                let mut fwds_seen = 0u64;
                for f in 0..frames {
                    let pulled = plane.pull(&targets, 1_000_000_000);
                    if !once {
                        // top-style repaint: clear and home.
                        print!("\x1b[2J\x1b[H");
                    }
                    render(f, rt.now_nanos(), &pulled);
                    answered = pulled.len();
                    fwds_seen = fwds_seen.max(
                        pulled
                            .values()
                            .filter_map(|s| s.hist("gw_forward_ns"))
                            .map(|h| h.count())
                            .max()
                            .unwrap_or(0),
                    );
                    if f + 1 < frames {
                        let ev = rt.event();
                        ev.wait_past_timeout(ev.epoch(), REFRESH_NS);
                    }
                }
                (answered, fwds_seen as usize)
            }
            4 => {
                for i in 0..MSGS {
                    let mut buf = vec![0u8; LEN];
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                    assert_eq!(buf, payload(i, LEN), "payload #{i} corrupted");
                }
                (0, 0)
            }
            _ => (0, 0),
        }
    });

    let (answered, fwds) = results[1];
    println!(
        "mad_top: {frames} frame(s), last pull answered by {answered}/{NODES} nodes, \
         {fwds} forwards observed"
    );
    assert_eq!(
        answered, NODES as usize,
        "a node failed to answer the in-band pull"
    );
    assert!(fwds > 0, "no frame caught the gateway mid-forwarding");
    if let (Some(t), Some(path)) = (&trace, &trace_to) {
        cli::export_trace(&t.tracer().snapshot(), path);
    }
}
