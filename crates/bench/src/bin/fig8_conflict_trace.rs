//! Figure 8: the PCI-conflicted pipeline on the gateway.
//!
//! Myrinet→SCI direction: the Myrinet receive DMA outranks the CPU's SCI
//! PIO stores, so the send steps last far longer than the receive steps
//! (paper §3.4.1: ~540 µs vs ~290 µs for 16 KB packets) and the pipeline
//! degenerates.

use mad_bench::experiments::{forwarded_oneway_traced, GwSetup};
use mad_bench::trace_view::{print_gateway_timeline, step_stats};
use mad_sim::SimTech;

fn main() {
    let (m, trace) = forwarded_oneway_traced(
        SimTech::Myrinet,
        SimTech::Sci,
        512 * 1024,
        GwSetup::with_mtu(16 * 1024),
    );
    println!(
        "one 512KB message, 16KB packets, Myrinet→SCI: {:.1} MB/s",
        m.mbps()
    );
    print_gateway_timeline(&trace, "gw1-vc-in-net0", "gw1-vc-fwd-net0-net1");
    let (recv_us, send_us) = step_stats(
        &trace,
        "gw1-vc-in-net0",
        "gw1-vc-fwd-net0-net1",
        "fig8_conflict_trace",
    );
    println!(
        "\npaper shape check: send steps ({send_us:.0}us) should last roughly twice\n\
         the receive steps ({recv_us:.0}us) — the paper measured ~540us vs ~290us\n\
         at this packet size."
    );
    if let Some(path) = mad_bench::cli::trace_path() {
        mad_bench::cli::export_trace(&trace, &path);
    }
}
