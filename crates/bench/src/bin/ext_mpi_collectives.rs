//! Extension E1: the paper's "high-level mechanisms on top" claim,
//! quantified — MPI-style collectives over a cluster of clusters versus a
//! flat cluster.
//!
//! Six nodes: flat = all on one Myrinet; split = two 3-node clusters
//! (SCI + Myrinet) joined by a gateway. Same collective code both times;
//! the only difference is that some tree edges cross the gateway. Measures
//! completion time (virtual µs) of barrier, broadcast, allreduce.

use std::sync::Arc;

use mad_bench::report::{fmt_bytes, Table};
use mad_mpi::Communicator;
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::SessionBuilder;

fn run_world(split: bool, f: impl Fn(&Communicator) + Send + Sync + 'static) -> f64 {
    let tb = Testbed::new(6);
    let clock = tb.clock().clone();
    let mut sb = SessionBuilder::new(6).with_runtime(tb.runtime());
    if split {
        let sci = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1, 2]);
        let myri = sb.network("myri", tb.driver(SimTech::Myrinet), &[2, 3, 4, 5]);
        sb.vchannel("vc", &[sci, myri], VcOptions::default());
    } else {
        let myri = sb.network("myri", tb.driver(SimTech::Myrinet), &[0, 1, 2, 3, 4, 5]);
        sb.vchannel("vc", &[myri], VcOptions::default());
    }
    sb.run(move |node| {
        let comm = Communicator::new(Arc::clone(node.vchannel("vc")));
        f(&comm);
    });
    clock.now().as_micros_f64()
}

fn main() {
    let mut table = Table::new(
        "E1 — collective completion time (virtual µs), 6 ranks: flat Myrinet vs split clusters",
        &["collective", "payload", "flat_us", "split_us", "slowdown"],
    );
    type Op = (
        &'static str,
        usize,
        Box<dyn Fn(&Communicator) + Send + Sync>,
    );
    let ops: Vec<Op> = vec![
        (
            "barrier x10",
            0,
            Box::new(|c: &Communicator| {
                for _ in 0..10 {
                    c.barrier().unwrap();
                }
            }),
        ),
        (
            "broadcast",
            1 << 20,
            Box::new(|c: &Communicator| {
                let mut data = if c.rank() == 0 {
                    vec![7u8; 1 << 20]
                } else {
                    Vec::new()
                };
                c.broadcast(0, &mut data).unwrap();
                assert_eq!(data.len(), 1 << 20);
            }),
        ),
        (
            "allreduce",
            64 * 1024,
            Box::new(|c: &Communicator| {
                let mut data = vec![c.rank() as f64; 8 * 1024];
                c.allreduce_f64(&mut data, |a, b| a + b).unwrap();
                assert_eq!(data[0], 15.0); // 0+1+..+5
            }),
        ),
    ];
    // Box the closures once; reuse for both worlds via Arc.
    for (name, payload, op) in ops {
        let op = Arc::new(op);
        let op1 = op.clone();
        let flat = run_world(false, move |c| op1(c));
        let op2 = op.clone();
        let split = run_world(true, move |c| op2(c));
        table.row(vec![
            name.into(),
            if payload == 0 {
                "-".into()
            } else {
                fmt_bytes(payload)
            },
            format!("{flat:.0}"),
            format!("{split:.0}"),
            format!("{:.2}x", split / flat),
        ]);
    }
    table.print();
    table.write_csv("ext_mpi_collectives");
    println!(
        "\nshape check: the split world pays for gateway crossings (notably the\n\
         bulk broadcast, whose tree edges traverse the forwarding pipeline), but\n\
         stays the same order of magnitude — the paper's point that efficient\n\
         high-level layers can sit on top of transparent forwarding."
    );
}
