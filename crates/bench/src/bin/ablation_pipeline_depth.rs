//! Ablation A3: gateway pipeline depth (paper §2.2.2/Fig. 5).
//!
//! Depth 1 disables pipelining entirely (the polling thread retransmits
//! each fragment itself); depth 2 is the paper's double-buffering; deeper
//! pipelines test whether more buffering helps once receive and send
//! already overlap.

use mad_bench::experiments::{forwarded_oneway, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let depths = [1usize, 2, 4, 8];
    let mut header = vec!["packet".to_string()];
    header.extend(depths.iter().map(|d| format!("depth{d}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "A3 — SCI→Myrinet bandwidth (MB/s) vs gateway pipeline depth, 16 MB messages",
        &header_refs,
    );
    for packet in [8 * 1024, 32 * 1024, 128 * 1024] {
        let mut row = vec![fmt_bytes(packet)];
        for &depth in &depths {
            let setup = GwSetup {
                mtu: packet,
                pipeline_depth: depth,
                ..Default::default()
            };
            row.push(format!(
                "{:.1}",
                forwarded_oneway(SimTech::Sci, SimTech::Myrinet, 16 << 20, setup).mbps()
            ));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_pipeline_depth");
    println!(
        "\npaper shape check: depth 1 (no pipelining) should cost roughly the sum\n\
         of recv+send per fragment; depth 2 recovers the overlap; deeper queues\n\
         should add little (the stages are already busy)."
    );
}
