//! Ablation A1: forwarding strategies (the paper's §1 motivation).
//!
//! Compares, for SCI→Myrinet transfers of growing size:
//!   1. the GTM gateway (transparent, pipelined, zero-copy) — this paper;
//!   2. application-level store-and-forward relaying on the same fast link
//!      (the Nexus approach: no pipelining, relay code in the app);
//!   3. application-level relaying over Fast-Ethernet/TCP between the
//!      clusters (the PACX-MPI approach the paper calls "not acceptable
//!      for fast clusters of clusters").

use mad_bench::experiments::{appfwd_oneway, forwarded_oneway, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let mut table = Table::new(
        "A1 — forwarding strategies, SCI→Myrinet one-way bandwidth (MB/s)",
        &["message", "gtm_gateway", "app_relay", "pacx_style_tcp"],
    );
    for msg in [256 * 1024, 1 << 20, 4 << 20, 16 << 20] {
        let gtm = forwarded_oneway(SimTech::Sci, SimTech::Myrinet, msg, GwSetup::default());
        let relay = appfwd_oneway(SimTech::Sci, SimTech::Myrinet, msg);
        let pacx = appfwd_oneway(SimTech::Sci, SimTech::FastEthernet, msg);
        table.row(vec![
            fmt_bytes(msg),
            format!("{:.1}", gtm.mbps()),
            format!("{:.1}", relay.mbps()),
            format!("{:.1}", pacx.mbps()),
        ]);
    }
    table.print();
    table.write_csv("ablation_forwarding_strategies");
    println!(
        "\npaper shape check: the GTM gateway should roughly double the app-level\n\
         relay (store-and-forward halves pipeline bandwidth) and dwarf the\n\
         TCP/Fast-Ethernet inter-cluster path (capped at 12.5 MB/s wire rate)."
    );
}
