//! Validate JSONL trace files against the mad-trace schema.
//!
//! `trace_check [--require-route] [--require-metrics]
//! [--require-membership] <file.jsonl>...` — each line must parse
//! as a JSON object with the required keys (`ts`, `thread`, `kind`,
//! `cat`, `name` plus the kind-specific ones), timestamps must be
//! monotone per thread, and any routing-plane or runtime tracks
//! (`route:`/`gw:`/`rt:` prefixes) must carry only their known counter
//! events (`path_bytes` with its `gateway` arg, `switches`, `failovers`,
//! `deaths`, `readmissions`; the gateway totals and `delta_*` windows;
//! the `rt:` thread-budget totals; the `metrics:` registry flush and
//! `health:` watchdog verdicts; the `member:` protocol transitions and
//! `ctl:` retune decisions; the `proto:` rendezvous/eager totals). With
//! `--require-route`, a file with no `route:` events at all fails — the
//! flag guards traces that are supposed to come from a multi-path run.
//! With `--require-metrics`, a file with no `metrics:` events fails —
//! the flag guards traces from runs with the telemetry plane enabled.
//! With `--require-membership`, a file missing either `member:` or
//! `ctl:` events fails — the flag guards traces from dynamic-membership
//! runs with a self-tuning controller. With `--require-proto`, a file
//! with no `proto:` events fails — the flag guards traces from runs
//! with the rendezvous protocol switch enabled. Exits non-zero on the
//! first invalid file, so CI can gate on it.

use std::process::ExitCode;

use madeleine::mad_trace::schema::{validate_jsonl, validate_route_tracks};

fn main() -> ExitCode {
    let mut require_route = false;
    let mut require_metrics = false;
    let mut require_membership = false;
    let mut require_proto = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--require-route" {
            require_route = true;
        } else if arg == "--require-metrics" {
            require_metrics = true;
        } else if arg == "--require-membership" {
            require_membership = true;
        } else if arg == "--require-proto" {
            require_proto = true;
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: trace_check [--require-route] [--require-metrics]              [--require-membership] [--require-proto] <file.jsonl>..."
        );
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = match validate_jsonl(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        };
        let route = match validate_route_tracks(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: INVALID route/gw track — {e}");
                return ExitCode::FAILURE;
            }
        };
        if require_route && route.route_events == 0 {
            eprintln!("{path}: INVALID — no `route:` track events (expected a multi-path trace)");
            return ExitCode::FAILURE;
        }
        if require_metrics && route.metrics_events == 0 {
            eprintln!(
                "{path}: INVALID — no `metrics:` track events (expected a telemetry-enabled trace)"
            );
            return ExitCode::FAILURE;
        }
        if require_membership && (route.member_events == 0 || route.ctl_events == 0) {
            eprintln!(
                "{path}: INVALID — {} `member:` and {} `ctl:` track events (a                  dynamic-membership trace needs at least one of each)",
                route.member_events, route.ctl_events
            );
            return ExitCode::FAILURE;
        }
        if require_proto && route.proto_events == 0 {
            eprintln!(
                "{path}: INVALID — no `proto:` track events (expected a rendezvous-enabled trace)"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{path}: ok — {} lines, {} threads, {} spans, {} counts, {} instants, {} route events, {} gw events, {} rt events, {} metrics events, {} health events, {} member events, {} ctl events, {} proto events",
            base.lines,
            base.threads,
            base.spans,
            base.counts,
            base.instants,
            route.route_events,
            route.gw_events,
            route.rt_events,
            route.metrics_events,
            route.health_events,
            route.member_events,
            route.ctl_events,
            route.proto_events
        );
    }
    ExitCode::SUCCESS
}
