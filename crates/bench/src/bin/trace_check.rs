//! Validate a JSONL trace file against the mad-trace schema.
//!
//! `trace_check <file.jsonl>...` — each line must parse as a JSON object
//! with the required keys (`ts`, `thread`, `kind`, `cat`, `name` plus the
//! kind-specific ones), and timestamps must be monotone per thread. Exits
//! non-zero on the first invalid file, so CI can gate on it.

use std::process::ExitCode;

use madeleine::mad_trace::schema::validate_jsonl;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <file.jsonl>...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_jsonl(&text) {
            Ok(s) => println!(
                "{path}: ok — {} lines, {} threads, {} spans, {} counts, {} instants",
                s.lines, s.threads, s.spans, s.counts, s.instants
            ),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
