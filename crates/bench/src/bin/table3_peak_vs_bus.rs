//! Table 3 (abstract + §3.3): peak forwarded bandwidth against the PCI
//! ceiling.
//!
//! The paper's headline: with 128 KB packets the forwarded SCI→Myrinet
//! bandwidth approaches 60 MB/s, against a theoretical one-way maximum of
//! 66 MB/s on a single 33 MHz / 32-bit PCI bus.

use mad_bench::experiments::{forwarded_oneway, GwSetup};
use mad_bench::report::Table;
use mad_sim::SimTech;

fn main() {
    const PCI_ONE_WAY_CEILING_MBPS: f64 = 66.0;
    let mut table = Table::new(
        "Table 3 — peak forwarded bandwidth vs the PCI ceiling (16 MB messages, 128 KB packets)",
        &["direction", "MB/s", "% of 66 MB/s ceiling"],
    );
    for (name, from, to) in [
        ("SCI→Myrinet", SimTech::Sci, SimTech::Myrinet),
        ("Myrinet→SCI", SimTech::Myrinet, SimTech::Sci),
    ] {
        let bw = forwarded_oneway(from, to, 16 << 20, GwSetup::with_mtu(128 * 1024)).mbps();
        table.row(vec![
            name.into(),
            format!("{bw:.1}"),
            format!("{:.0}%", bw / PCI_ONE_WAY_CEILING_MBPS * 100.0),
        ]);
    }
    table.print();
    table.write_csv("table3_peak_vs_bus");
    println!(
        "\npaper shape check: SCI→Myrinet should deliver the large majority of the\n\
         bus ceiling (paper: ~90%); Myrinet→SCI should deliver roughly half."
    );
}
