//! Figure 5: the ideal packet-forwarding pipeline on the gateway.
//!
//! SCI→Myrinet direction: receive and send steps take comparable time, so
//! buffer k+1 is received while buffer k is retransmitted. This binary
//! prints the gateway's actual recv/send/overhead spans as an ASCII
//! timeline plus per-step statistics.

use mad_bench::experiments::{forwarded_oneway_traced, GwSetup};
use mad_bench::trace_view::{print_gateway_timeline, step_stats};
use mad_sim::SimTech;

fn main() {
    let (m, trace) = forwarded_oneway_traced(
        SimTech::Sci,
        SimTech::Myrinet,
        512 * 1024,
        GwSetup::with_mtu(32 * 1024),
    );
    println!(
        "one 512KB message, 32KB packets, SCI→Myrinet: {:.1} MB/s",
        m.mbps()
    );
    print_gateway_timeline(&trace, "gw1-vc-in-net0", "gw1-vc-fwd-net0-net1");
    let (recv_us, send_us) = step_stats(
        &trace,
        "gw1-vc-in-net0",
        "gw1-vc-fwd-net0-net1",
        "fig5_pipeline_trace",
    );
    println!(
        "\npaper shape check: recv and send spans should interleave (pipeline\n\
         overlap), with recv ({recv_us:.0}us) ≈ send ({send_us:.0}us) in this direction."
    );
    if let Some(path) = mad_bench::cli::trace_path() {
        mad_bench::cli::export_trace(&trace, &path);
    }
}
