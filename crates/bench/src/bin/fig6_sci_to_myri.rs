//! Figure 6: forwarding bandwidth, SCI → Myrinet, per packet size.
//!
//! Paper: asymptotic bandwidth grows from ~41 MB/s at 8 KB packets to
//! nearly 60 MB/s at 128 KB, against a 66 MB/s one-way PCI ceiling.

use mad_bench::experiments::{forwarded_oneway, forwarded_oneway_traced, grids, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    // Optional gateway transmit batching (A7): --max-batch <n>, default 1.
    let max_batch = mad_bench::cli::max_batch();
    // Optional protocol switch (A12): --rendezvous-threshold <bytes>,
    // default 0 = eager-only. The handshake needs flow control, so a
    // nonzero threshold also turns on the standard credit window.
    let rendezvous_threshold = mad_bench::cli::rendezvous_threshold();
    let credit_window = (rendezvous_threshold > 0).then_some(8);
    if rendezvous_threshold > 0 {
        println!("protocol switch on: rendezvous >= {rendezvous_threshold} B, credit window 8");
    }
    let mut header = vec!["message".to_string()];
    header.extend(grids::PACKET_SIZES.iter().map(|p| fmt_bytes(*p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 6 — SCI→Myrinet forwarding bandwidth (MB/s) vs message size, per packet size",
        &header_refs,
    );
    for &msg in &grids::MESSAGE_SIZES {
        let mut row = vec![fmt_bytes(msg)];
        for &packet in &grids::PACKET_SIZES {
            let m = forwarded_oneway(
                SimTech::Sci,
                SimTech::Myrinet,
                msg,
                GwSetup {
                    max_batch,
                    rendezvous_threshold,
                    credit_window,
                    ..GwSetup::with_mtu(packet)
                },
            );
            row.push(format!("{:.1}", m.mbps()));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig6_sci_to_myri");
    println!(
        "\npaper shape check: rightmost column should approach ~55-60 MB/s on the\n\
         largest messages; the 8KB column should sit markedly lower (paper: ~41)."
    );
    if let Some(path) = mad_bench::cli::trace_path() {
        // Re-run one representative point (512 KB / 32 KB packets) with
        // tracing on and export that run.
        let (_, snap) = forwarded_oneway_traced(
            SimTech::Sci,
            SimTech::Myrinet,
            512 * 1024,
            GwSetup {
                max_batch,
                rendezvous_threshold,
                credit_window,
                ..GwSetup::with_mtu(32 * 1024)
            },
        );
        mad_bench::cli::export_trace(&snap, &path);
    }
}
