//! Figure 7: forwarding bandwidth, Myrinet → SCI, per packet size.
//!
//! Paper: the collapse direction — the gateway's SCI PIO sends are starved
//! by Myrinet receive DMA; bandwidth never exceeds ~35 MB/s (asymptote
//! ~26 MB/s at 8 KB packets).

use mad_bench::experiments::{forwarded_oneway, forwarded_oneway_traced, grids, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    // Optional gateway transmit batching (A7): --max-batch <n>, default 1.
    let max_batch = mad_bench::cli::max_batch();
    // Optional protocol switch (A12): --rendezvous-threshold <bytes>,
    // default 0 = eager-only. The handshake needs flow control, so a
    // nonzero threshold also turns on the standard credit window.
    let rendezvous_threshold = mad_bench::cli::rendezvous_threshold();
    let credit_window = (rendezvous_threshold > 0).then_some(8);
    if rendezvous_threshold > 0 {
        println!("protocol switch on: rendezvous >= {rendezvous_threshold} B, credit window 8");
    }
    let mut header = vec!["message".to_string()];
    header.extend(grids::PACKET_SIZES.iter().map(|p| fmt_bytes(*p)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 7 — Myrinet→SCI forwarding bandwidth (MB/s) vs message size, per packet size",
        &header_refs,
    );
    for &msg in &grids::MESSAGE_SIZES {
        let mut row = vec![fmt_bytes(msg)];
        for &packet in &grids::PACKET_SIZES {
            let m = forwarded_oneway(
                SimTech::Myrinet,
                SimTech::Sci,
                msg,
                GwSetup {
                    max_batch,
                    rendezvous_threshold,
                    credit_window,
                    ..GwSetup::with_mtu(packet)
                },
            );
            row.push(format!("{:.1}", m.mbps()));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig7_myri_to_sci");
    println!(
        "\npaper shape check: every column should stay below ~35 MB/s — far under\n\
         Fig. 6 — because PCI DMA outranks the CPU's SCI PIO stores on the gateway."
    );
    if let Some(path) = mad_bench::cli::trace_path() {
        // Re-run one representative point (512 KB / 16 KB packets) with
        // tracing on and export that run.
        let (_, snap) = forwarded_oneway_traced(
            SimTech::Myrinet,
            SimTech::Sci,
            512 * 1024,
            GwSetup {
                max_batch,
                rendezvous_threshold,
                credit_window,
                ..GwSetup::with_mtu(16 * 1024)
            },
        );
        mad_bench::cli::export_trace(&snap, &path);
    }
}
