//! Table 2 (from §3.3.1 prose): the pipeline-period decomposition.
//!
//! For each packet size, compare the *expected* pipeline period (packet
//! size over the slower of the two raw network bandwidths) with the
//! *observed* period (packet size over the measured forwarding bandwidth).
//! The difference estimates the per-buffer-switch software overhead, which
//! the paper pegged at roughly 40 µs.

use mad_bench::experiments::{forwarded_oneway, grids, raw_oneway, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let mut table = Table::new(
        "Table 2 — SCI→Myrinet pipeline period analysis",
        &[
            "packet",
            "raw_sci_MB/s",
            "raw_myri_MB/s",
            "expected_us",
            "fwd_MB/s",
            "observed_us",
            "overhead_us",
        ],
    );
    for &packet in &grids::PACKET_SIZES {
        let raw_sci = raw_oneway(SimTech::Sci, 8 << 20, packet).mbps();
        let raw_myri = raw_oneway(SimTech::Myrinet, 8 << 20, packet).mbps();
        let expected_us = packet as f64 / raw_sci.min(raw_myri) / 1.0; // bytes / (MB/s) = µs
        let fwd = forwarded_oneway(
            SimTech::Sci,
            SimTech::Myrinet,
            16 << 20,
            GwSetup::with_mtu(packet),
        )
        .mbps();
        let observed_us = packet as f64 / fwd;
        table.row(vec![
            fmt_bytes(packet),
            format!("{raw_sci:.1}"),
            format!("{raw_myri:.1}"),
            format!("{:.0}", expected_us / 1.0e0),
            format!("{fwd:.1}"),
            format!("{observed_us:.0}"),
            format!("{:.0}", observed_us - expected_us),
        ]);
    }
    table.print();
    table.write_csv("table2_pipeline_period");
    println!(
        "\npaper shape check: the overhead column should hover around the modeled\n\
         ~40us buffer-switch cost (plus residual bus-contention effects), largely\n\
         independent of packet size — which is why small packets lose bandwidth."
    );
}
