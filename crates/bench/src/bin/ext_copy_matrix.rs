//! Extension E2: the full zero-copy handoff matrix of paper §2.3.
//!
//! For every (inbound, outbound) buffer-discipline pairing — including the
//! SBP-style network the paper names as its static-buffer example — compare
//! the gateway with zero-copy handoff against the naive temporary-buffer
//! path. The paper's table, measured:
//!
//! | in      | out     | copies (zero-copy) | copies (naive) |
//! | dynamic | dynamic | 0                  | 0              |
//! | dynamic | static  | 0                  | 1              |
//! | static  | dynamic | 0                  | 1              |
//! | static  | static  | 1                  | 2              |

use mad_bench::experiments::{forwarded_oneway, GwSetup};
use mad_bench::report::Table;
use mad_sim::SimTech;

fn main() {
    let techs = [
        ("myrinet (dyn)", SimTech::Myrinet),
        ("sci (static)", SimTech::Sci),
        ("sbp (static+staging)", SimTech::Sbp),
    ];
    let mut table = Table::new(
        "E2 — gateway copy matrix: forwarding bandwidth (MB/s), 8 MB messages, 32 KB packets",
        &["in → out", "zero_copy", "naive", "gain"],
    );
    for (in_name, from) in techs {
        for (out_name, to) in techs {
            let zc = forwarded_oneway(
                from,
                to,
                8 << 20,
                GwSetup {
                    mtu: 32 * 1024,
                    zero_copy: true,
                    ..Default::default()
                },
            )
            .mbps();
            let naive = forwarded_oneway(
                from,
                to,
                8 << 20,
                GwSetup {
                    mtu: 32 * 1024,
                    zero_copy: false,
                    ..Default::default()
                },
            )
            .mbps();
            table.row(vec![
                format!("{in_name} → {out_name}"),
                format!("{zc:.1}"),
                format!("{naive:.1}"),
                format!("{:+.0}%", (zc / naive - 1.0) * 100.0),
            ]);
        }
    }
    table.print();
    table.write_csv("ext_copy_matrix");
    println!(
        "\nshape check: pairings with a static inbound side and a dynamic outbound\n\
         side gain the most (~25-30%) — the naive path pays a segment-extraction\n\
         memcpy per fragment on the gateway CPU. All-dynamic pairs are\n\
         unaffected, and PIO-starved outbound sides (→sci) hide the copy behind\n\
         their slow sends. Curious and real: sbp→sbp can be *faster* naive,\n\
         because its two copies land on different pipeline threads and overlap,\n\
         while the zero-copy path serializes its single copy on the receive\n\
         step — copy placement matters as much as copy count."
    );
}
