//! Ablation A5: sensitivity to the gateway's buffer-switch software cost
//! (§3.3.1 — "the software overhead that we pay at each buffer switch is
//! almost 40 µs, which is not negligible").
//!
//! Sweeping the modeled overhead shows how much bandwidth the paper's
//! prototype was leaving on the table at small packet sizes, and why the
//! authors flag the overhead as significant: at 8 KB packets it is a large
//! fraction of the pipeline period.

use mad_bench::experiments::{forwarded_oneway, GwSetup};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

fn main() {
    let overheads_us = [0u64, 10, 20, 40, 80, 160];
    let mut header = vec!["packet".to_string()];
    header.extend(overheads_us.iter().map(|o| format!("{o}us")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "A5 — SCI→Myrinet bandwidth (MB/s) vs per-switch software overhead, 16 MB messages",
        &header_refs,
    );
    for packet in [8 * 1024usize, 32 * 1024, 128 * 1024] {
        let mut row = vec![fmt_bytes(packet)];
        for &overhead in &overheads_us {
            let setup = GwSetup {
                mtu: packet,
                switch_overhead_ns: overhead * 1000,
                ..Default::default()
            };
            row.push(format!(
                "{:.1}",
                forwarded_oneway(SimTech::Sci, SimTech::Myrinet, 16 << 20, setup).mbps()
            ));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_switch_overhead");
    println!(
        "\npaper shape check: small packets suffer disproportionately as the\n\
         overhead grows (it amortizes over fewer bytes); at 0us overhead the\n\
         packet-size curves nearly converge — confirming the paper's diagnosis\n\
         that the per-switch cost is what separates the Fig. 6 curves."
    );
}
