//! A10 — cost of the telemetry plane: the same forwarded traffic with
//! the metrics registry fully instrumented vs. disabled, plus the raw
//! per-operation price of the registry primitives.
//!
//! Two traffic shapes, both the paper's 3-node cluster-of-clusters
//! (SCI → gateway → Myrinet):
//!
//! 1. **fig. 6-style bulk** — one 8 MB message, the bandwidth-bound
//!    regime where a per-fragment histogram record is amortized over an
//!    8 KB copy.
//! 2. **short messages** — a train of 4 KB sends, the latency-bound
//!    regime where fixed per-fragment costs hurt most.
//!
//! Each shape runs with `metrics: None` (baseline — no registry, no
//! watchdog, no instrumentation reached) and `metrics: Some(default)`
//! (histograms + gauges + watchdog live). The modeled (virtual-clock)
//! throughput delta is asserted `< 2%`: instrumentation charges no
//! virtual cost, so any drift would mean the telemetry plane changed
//! the forwarding schedule itself. Host-side cost is bounded separately:
//! the measured ns/op of the registry primitives times the ops per
//! forwarded fragment must stay under 2% of the modeled per-fragment
//! forwarding time.
//!
//! Compiled with `--features mad-metrics/noop` the same binary measures
//! the compiled-out registry (every record is a no-op; the wire format
//! and handles survive) and writes its CSVs under `*_noop` names —
//! committing both runs documents the full on/noop/off ladder.
//! `--smoke` shrinks the grid and skips the CSVs.

use std::time::Instant;

use mad_bench::cli;
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{MetricsOptions, NodeId, RecvMode, SendMode, SessionBuilder};

/// Registry touches on the forwarding fast path per fragment: forward
/// histogram, credit-wait histogram, queue-depth add/sub, held-bytes
/// add/sub, and two pool gauges — a deliberate overcount.
const OPS_PER_FRAGMENT: f64 = 8.0;

/// One forwarded run: `msgs` messages of `len` bytes, rank 0 → rank 2
/// across the gateway. Returns (virtual seconds first-send → last-recv,
/// wall-clock seconds of the whole session).
fn run_forwarded(msgs: u32, len: usize, metrics_on: bool) -> (f64, f64) {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let n_in = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1]);
    let n_out = sb.network("myri", tb.driver(SimTech::Myrinet), &[1, 2]);
    sb.vchannel(
        "vc",
        &[n_in, n_out],
        VcOptions {
            mtu: Some(8 * 1024),
            metrics: metrics_on.then(MetricsOptions::default),
            ..Default::default()
        },
    );
    let wall = Instant::now();
    let stamps = sb.run(move |node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        match node.rank().0 {
            0 => {
                let t0 = rt.now_nanos();
                let data = vec![0xA5u8; len];
                for _ in 0..msgs {
                    let mut w = vc.begin_packing(NodeId(2)).unwrap();
                    w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                    w.end_packing().unwrap();
                }
                t0
            }
            2 => {
                let mut buf = vec![0u8; len];
                for _ in 0..msgs {
                    let mut r = vc.begin_unpacking().unwrap();
                    r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                        .unwrap();
                    r.end_unpacking().unwrap();
                }
                assert!(buf.iter().all(|&b| b == 0xA5), "payload corrupted");
                rt.now_nanos()
            }
            _ => 0,
        }
    });
    let virt = (stamps[2] - stamps[0]) as f64 / 1e9;
    (virt, wall.elapsed().as_secs_f64())
}

/// Best-of-`reps` for both clocks; the virtual time is deterministic
/// (identical every rep — asserted), the wall clock takes the minimum as
/// the standard noise-resistant estimator.
fn best_of(reps: usize, msgs: u32, len: usize, metrics_on: bool) -> (f64, f64) {
    let mut virt = f64::INFINITY;
    let mut wall = f64::INFINITY;
    for _ in 0..reps {
        let (v, w) = run_forwarded(msgs, len, metrics_on);
        if virt.is_finite() {
            assert!(
                (v - virt).abs() < 1e-12,
                "virtual clock must be deterministic across reps"
            );
        }
        virt = virt.min(v);
        wall = wall.min(w);
    }
    (virt, wall)
}

/// Wall-clock ns per registry operation, measured over `iters` calls.
fn ns_per_op(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    let t = Instant::now();
    for i in 0..iters {
        op(i);
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let smoke = cli::flag("--smoke");
    let reps = if smoke { 3 } else { 5 };
    let mode = if mad_metrics::COMPILED_IN {
        "full"
    } else {
        "noop"
    };
    println!("A10 metrics overhead — registry compiled: {mode}");

    // 1. Registry primitives, straight-line cost per call.
    let iters: u64 = if smoke { 200_000 } else { 2_000_000 };
    let reg = mad_metrics::Registry::new();
    let (c, g, h) = (
        reg.counter("bench_counter"),
        reg.gauge("bench_gauge"),
        reg.histogram("bench_hist"),
    );
    let c_ns = ns_per_op(iters, |i| c.add(i & 1));
    let g_ns = ns_per_op(iters, |i| g.set(i as i64));
    let h_ns = ns_per_op(iters, |i| h.record(i.wrapping_mul(0x9E37_79B9)));
    let mut ops = Table::new(
        format!("A10 registry primitives ({iters} calls each, compiled: {mode})"),
        &["op", "ns/call"],
    );
    ops.row(vec!["counter.add".into(), format!("{c_ns:.1}")]);
    ops.row(vec!["gauge.set".into(), format!("{g_ns:.1}")]);
    ops.row(vec!["hist.record".into(), format!("{h_ns:.1}")]);
    ops.print();

    // 2. The two traffic shapes, metrics off vs. on.
    let bulk_len = if smoke { 1 << 20 } else { 8 << 20 };
    let (short_msgs, short_len) = if smoke { (64u32, 4096) } else { (256u32, 4096) };
    let mut tbl = Table::new(
        format!(
            "A10 forwarded throughput, metrics off vs. on — bulk 1 x {}, short {short_msgs} x {} (compiled: {mode})",
            fmt_bytes(bulk_len),
            fmt_bytes(short_len)
        ),
        &["shape", "metrics", "virtual MB/s", "wall ms (min)", "virt delta"],
    );
    let mut shapes = Vec::new();
    for (shape, msgs, len) in [("bulk", 1u32, bulk_len), ("short", short_msgs, short_len)] {
        let (off_v, off_w) = best_of(reps, msgs, len, false);
        let (on_v, on_w) = best_of(reps, msgs, len, true);
        let total = msgs as usize * len;
        let off_mbps = total as f64 / off_v / 1e6;
        let on_mbps = total as f64 / on_v / 1e6;
        let delta = on_v / off_v - 1.0;
        for (cfg, mbps, w, d) in [
            ("off", off_mbps, off_w, None),
            ("on", on_mbps, on_w, Some(delta)),
        ] {
            tbl.row(vec![
                shape.into(),
                cfg.into(),
                format!("{mbps:.1}"),
                format!("{:.1}", w * 1e3),
                d.map_or("-".into(), |d| format!("{:+.3}%", d * 100.0)),
            ]);
        }
        assert!(
            delta.abs() < 0.02,
            "{shape}: instrumentation changed the modeled schedule by {:.2}% (>= 2%)",
            delta * 100.0
        );
        shapes.push((shape, on_v, total));
    }
    tbl.print();

    // 3. Host-side bound: registry cost per fragment vs. the modeled
    //    per-fragment forwarding time of the bulk run.
    let (_, bulk_v, bulk_total) = shapes[0];
    let frags = (bulk_total as f64 / (8.0 * 1024.0)).ceil();
    let frag_ns = bulk_v * 1e9 / frags;
    let instr_ns = OPS_PER_FRAGMENT * h_ns.max(c_ns).max(g_ns);
    let ratio = instr_ns / frag_ns;
    println!(
        "\nper-fragment bound: {OPS_PER_FRAGMENT} ops x {:.1} ns = {instr_ns:.0} ns \
         vs {frag_ns:.0} ns modeled forwarding -> {:.3}% overhead",
        h_ns.max(c_ns).max(g_ns),
        ratio * 100.0
    );
    assert!(
        ratio < 0.02,
        "registry cost per fragment is {:.2}% of the forwarding time (>= 2%)",
        ratio * 100.0
    );

    if !smoke {
        let suffix = if mad_metrics::COMPILED_IN {
            ""
        } else {
            "_noop"
        };
        ops.write_csv(&format!("a10_metrics_registry_ops{suffix}"));
        tbl.write_csv(&format!("a10_metrics_overhead{suffix}"));
    }
    println!("\nA10: metrics overhead < 2% on both shapes (compiled: {mode})");
}
