//! Extension E3: simultaneous forwarding in both directions through one
//! gateway — the paper's closing worry ("the sharing of the gateway
//! internal system bus bandwidth seems to be an important issue") put to
//! the test.
//!
//! Two endpoint pairs push 16 MB through the gateway at once, one per
//! direction. The gateway's PCI bus now carries *four* flows (two in, two
//! out), so per-direction bandwidth must drop below the isolated numbers —
//! and the PIO-starved direction should suffer disproportionately.

use mad_bench::experiments::{forwarded_oneway, GwSetup};
use mad_bench::report::Table;
use mad_sim::{SimTech, Testbed};
use madeleine::session::VcOptions;
use madeleine::{NodeId, RecvMode, SendMode, SessionBuilder};
use simnet::calibration;

const TOTAL: usize = 16 << 20;
const MTU: usize = 32 * 1024;

/// Both directions at once: returns (SCI→Myrinet MB/s, Myrinet→SCI MB/s).
fn bidirectional() -> (f64, f64) {
    let tb = Testbed::new(3);
    let mut sb = SessionBuilder::new(3).with_runtime(tb.runtime());
    let sci = sb.network("sci", tb.driver(SimTech::Sci), &[0, 1]);
    let myri = sb.network("myri", tb.driver(SimTech::Myrinet), &[1, 2]);
    let mut opts = VcOptions {
        mtu: Some(MTU),
        ..Default::default()
    };
    opts.gateway.switch_overhead_ns = calibration::gateway_switch_overhead().as_nanos();
    sb.vchannel("vc", &[sci, myri], opts);
    let stamps = sb.run(|node| {
        let vc = node.vchannel("vc");
        let rt = node.runtime().clone();
        node.barrier().wait();
        let t0 = rt.now_nanos();
        match node.rank().0 {
            // Rank 0 (SCI side) and rank 2 (Myrinet side) each send 16 MB
            // to the other — and receive the opposite stream.
            r @ (0 | 2) => {
                let dest = NodeId(2 - r);
                let data = vec![r as u8; TOTAL];
                let mut w = vc.begin_packing(dest).unwrap();
                w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
                w.end_packing().unwrap();
                let mut buf = vec![0u8; TOTAL];
                let mut rd = vc.begin_unpacking().unwrap();
                rd.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
                    .unwrap();
                rd.end_unpacking().unwrap();
                assert!(buf.iter().all(|&b| b == (2 - r) as u8));
                rt.now_nanos() - t0
            }
            1 => 0,
            _ => unreachable!(),
        }
    });
    // Each endpoint's elapsed covers its send + its receive completing.
    let bw = |ns: u64| TOTAL as f64 / (ns as f64 / 1e9) / 1e6;
    (bw(stamps[2]), bw(stamps[0])) // rank2 finished receiving SCI→Myri etc.
}

fn main() {
    let iso_s2m = forwarded_oneway(
        SimTech::Sci,
        SimTech::Myrinet,
        TOTAL,
        GwSetup::with_mtu(MTU),
    );
    let iso_m2s = forwarded_oneway(
        SimTech::Myrinet,
        SimTech::Sci,
        TOTAL,
        GwSetup::with_mtu(MTU),
    );
    let (bi_s2m, bi_m2s) = bidirectional();

    let mut table = Table::new(
        "E3 — per-direction bandwidth (MB/s), isolated vs simultaneous bidirectional forwarding",
        &["direction", "isolated", "bidirectional", "retained"],
    );
    for (name, iso, bi) in [
        ("SCI→Myrinet", iso_s2m.mbps(), bi_s2m),
        ("Myrinet→SCI", iso_m2s.mbps(), bi_m2s),
    ] {
        table.row(vec![
            name.into(),
            format!("{iso:.1}"),
            format!("{bi:.1}"),
            format!("{:.0}%", bi / iso * 100.0),
        ]);
    }
    table.print();
    table.write_csv("ext_bidirectional");
    println!(
        "\nshape check: with four concurrent flows on the gateway bus, neither\n\
         direction keeps its isolated bandwidth; the aggregate stays bounded by\n\
         the gateway's derated PCI capacity — quantifying the bus-sharing issue\n\
         the paper flags for future work."
    );
}
