//! A12: the size-adaptive eager/rendezvous protocol switch.
//!
//! Three sweeps over the E3 forwarded route (Myrinet → SCI, the paper's
//! collapse direction, where the gateway CPU is the scarce resource),
//! all at the same MTU and credit window:
//!
//!   * `eager`      — threshold 0: every block pays per-fragment credit
//!                    round-trips (the pre-switch baseline).
//!   * `rendezvous` — threshold 1: every block announces itself with a
//!                    kind-12 RTS and waits for the whole-window CTS.
//!   * `switch`     — the production config: blocks under the threshold
//!                    stay eager, bulk blocks rendezvous.
//!
//! The crossover point — the smallest message where forced rendezvous
//! beats eager — is printed and written into the CSV; the switch column
//! must track the better protocol on both sides of it, and every bulk
//! (>= 256 KB) row must beat the eager baseline outright.
//!
//! Two more legs gate the copy-placement scheduler and the pre-reserved
//! landings: a mixed eager+rendezvous round workload with zero-copy
//! handoff off (every relay fragment needs a staging copy) must place at
//! least 80% of those copies on a stage that was idle at placement time,
//! and must run its post-warm-up rounds with zero buffer-pool misses.
//!
//! `--smoke` shrinks the grid and skips the CSV; `--rendezvous-threshold
//! <bytes>` overrides the switch point; `--trace <path>` exports the
//! traced mixed run (its `proto:` track is what `trace_check
//! --require-proto` gates on).

use mad_bench::experiments::{forwarded_oneway_stats, protocol_mix_traced, GwSetup, MixOutcome};
use mad_bench::report::{fmt_bytes, Table};
use mad_sim::SimTech;

/// Fragment size shared by every leg ("at the same MTU").
const MTU: usize = 32 * 1024;
/// Per-stream credit window shared by every leg.
const WINDOW: u32 = 8;
/// Default switch point when `--rendezvous-threshold` is absent.
const DEFAULT_THRESHOLD: usize = 64 * 1024;

fn setup(threshold: usize) -> GwSetup {
    GwSetup {
        credit_window: Some(WINDOW),
        max_batch: 4,
        rendezvous_threshold: threshold,
        ..GwSetup::with_mtu(MTU)
    }
}

fn bandwidth(total: usize, threshold: usize) -> (f64, u64) {
    let (m, totals) =
        forwarded_oneway_stats(SimTech::Myrinet, SimTech::Sci, total, setup(threshold));
    (m.mbps(), totals.cts_sent)
}

fn report_mix(label: &str, out: &MixOutcome) -> f64 {
    let t = &out.totals;
    let placements = t.copies_recv + t.copies_flush;
    let idle_ratio = if placements == 0 {
        1.0
    } else {
        t.copy_idle_hits as f64 / placements as f64
    };
    println!(
        "{label}: {:.1} MB/s, {} copies ({} recv / {} flush), {:.0}% idle-placed, \
         {} CTS, {} steady-state pool misses",
        out.m.mbps(),
        placements,
        t.copies_recv,
        t.copies_flush,
        idle_ratio * 100.0,
        t.cts_sent,
        out.steady_pool_misses,
    );
    idle_ratio
}

fn main() {
    let smoke = mad_bench::cli::flag("--smoke");
    let threshold = match mad_bench::cli::rendezvous_threshold() {
        0 => DEFAULT_THRESHOLD,
        t => t,
    };

    let sizes: &[usize] = if smoke {
        &[64 * 1024, 256 * 1024, 1 << 20]
    } else {
        &[
            32 * 1024,
            64 * 1024,
            128 * 1024,
            256 * 1024,
            512 * 1024,
            1 << 20,
            4 << 20,
            16 << 20,
        ]
    };

    let mut table = Table::new(
        format!(
            "A12 — protocol-switch crossover, Myrinet->SCI, {} MTU, window {WINDOW}, \
             switch at {}",
            fmt_bytes(MTU),
            fmt_bytes(threshold),
        ),
        &["message", "eager MB/s", "rendezvous MB/s", "switch MB/s"],
    );
    let mut crossover = None;
    for &msg in sizes {
        let (eager, eager_cts) = bandwidth(msg, 0);
        let (rdv, rdv_cts) = bandwidth(msg, 1);
        let (switch, _) = bandwidth(msg, threshold);
        assert_eq!(eager_cts, 0, "eager leg must never handshake");
        assert!(rdv_cts > 0, "forced-rendezvous leg never handshook");
        if crossover.is_none() && rdv > eager {
            crossover = Some(msg);
        }
        // The tentpole's bulk criterion: above the switch point the
        // handshake must pay for itself outright, per message size.
        if msg >= 256 * 1024 {
            assert!(
                rdv > eager && switch > eager,
                "bulk {} must beat eager ({eager:.1} MB/s) under rendezvous \
                 ({rdv:.1}) and the switch ({switch:.1})",
                fmt_bytes(msg),
            );
        }
        table.row(vec![
            fmt_bytes(msg),
            format!("{eager:.1}"),
            format!("{rdv:.1}"),
            format!("{switch:.1}"),
        ]);
    }
    let crossover = crossover.expect("rendezvous never beat eager at any size");
    table.row(vec![
        "crossover".into(),
        "-".into(),
        "-".into(),
        fmt_bytes(crossover),
    ]);
    table.print();
    println!(
        "\ncrossover: rendezvous first beats eager at {} (switch set to {})",
        fmt_bytes(crossover),
        fmt_bytes(threshold),
    );
    if !smoke {
        table.write_csv("a12_protocol_crossover");
    }

    // Copy-placement + pre-reservation gate: zero-copy handoff off, so
    // every relay fragment needs a staging copy the scheduler must place.
    // The pattern straddles the threshold, keeping both protocols live on
    // the one gateway. The sender paces itself between messages (a
    // compute/communicate application, not a saturation loop): placement
    // quality is only observable when some stage has slack — at full
    // saturation both stages are busy by definition and any placement is
    // as good as any other.
    let pattern: &[usize] = &[
        4 * 1024,
        64 * 1024,
        16 * 1024,
        96 * 1024,
        8 * 1024,
        128 * 1024,
    ];
    let rounds = if smoke { 2 } else { 4 };
    let pace_ns = 5_000_000;
    let copy_setup = GwSetup {
        zero_copy: false,
        ..setup(threshold)
    };
    println!("\nmixed workload: {rounds} rounds of {pattern:?} bytes, zero-copy off");
    let (mix, snap) = protocol_mix_traced(
        SimTech::Myrinet,
        SimTech::Myrinet,
        pattern,
        rounds,
        pace_ns,
        copy_setup,
    );
    let idle_ratio = report_mix("  switch", &mix);
    let (eager_mix, _) = protocol_mix_traced(
        SimTech::Myrinet,
        SimTech::Myrinet,
        pattern,
        rounds,
        pace_ns,
        GwSetup {
            rendezvous_threshold: 0,
            ..copy_setup
        },
    );
    report_mix("  eager ", &eager_mix);

    let placements = mix.totals.copies_recv + mix.totals.copies_flush;
    assert!(placements > 0, "zero-copy off must force staging copies");
    assert!(
        idle_ratio >= 0.8,
        "copy-placement scheduler hit an idle stage only {:.0}% of the time",
        idle_ratio * 100.0,
    );
    assert!(mix.totals.cts_sent > 0, "mixed workload never handshook");
    assert_eq!(
        mix.steady_pool_misses, 0,
        "rendezvous pre-reservation must keep the steady-state pool miss-free"
    );

    if let Some(path) = mad_bench::cli::trace_path() {
        mad_bench::cli::export_trace(&snap, &path);
    }
    println!("\na12: all protocol-switch gates passed");
}
