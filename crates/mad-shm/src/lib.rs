//! # mad-shm — in-process shared-memory driver for Madeleine
//!
//! The fastest "network" available: conduits are runtime-backed FIFOs of
//! owned packets, with dynamic buffers (no staging copies) and unbounded
//! gather. It serves two purposes:
//!
//! * functional testing of the whole Madeleine stack at real speed, and
//! * a *real* transport for the Criterion microbenchmarks (pack/unpack
//!   throughput, gateway pipeline behaviour on actual threads).
//!
//! Because all blocking goes through [`madeleine::runtime::Runtime`]
//! events, the same driver also runs deterministically under the simulated
//! runtime (where it behaves as an infinitely fast network — only charged
//! costs take time).

#![warn(missing_docs)]

use std::sync::Arc;

use madeleine::conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
use madeleine::error::{MadError, Result};
use madeleine::runtime::{RtEvent, RtQueue, RtReceiver, RtSender, Runtime};
use madeleine::types::NodeId;

/// Driver capabilities of the shared-memory transport.
pub const SHM_CAPS: DriverCaps = DriverCaps {
    name: "shm",
    mode: BufferMode::Dynamic,
    max_gather: usize::MAX,
    max_packet: usize::MAX,
    preferred_mtu: 64 * 1024,
};

/// The shared-memory Protocol Management Module.
pub struct ShmDriver {
    runtime: Arc<dyn Runtime>,
}

impl ShmDriver {
    /// Create a driver whose queues block through `runtime`.
    pub fn new(runtime: Arc<dyn Runtime>) -> Arc<Self> {
        Arc::new(ShmDriver { runtime })
    }
}

impl Driver for ShmDriver {
    fn caps(&self) -> DriverCaps {
        SHM_CAPS
    }

    fn connect(
        &self,
        _a: NodeId,
        _b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let (tx_ab, rx_at_b) = RtQueue::with_event(&*self.runtime, usize::MAX, ev_b.clone());
        let (tx_ba, rx_at_a) = RtQueue::with_event(&*self.runtime, usize::MAX, ev_a.clone());
        (
            Box::new(ShmConduit {
                tx: tx_ab,
                rx: rx_at_a,
                ev: ev_a,
                pool: self.runtime.pool().clone(),
            }),
            Box::new(ShmConduit {
                tx: tx_ba,
                rx: rx_at_b,
                ev: ev_b,
                pool: self.runtime.pool().clone(),
            }),
        )
    }
}

struct ShmConduit {
    tx: RtSender<Vec<u8>>,
    rx: RtReceiver<Vec<u8>>,
    ev: Arc<dyn RtEvent>,
    pool: Arc<mad_util::pool::BufferPool>,
}

impl ShmConduit {
    fn pop_blocking(&self) -> Result<Vec<u8>> {
        loop {
            let seen = self.ev.epoch();
            if let Some(p) = self.rx.try_pop() {
                return Ok(p);
            }
            if self.rx.is_closed() {
                return Err(MadError::Disconnected);
            }
            self.ev.wait_past(seen);
        }
    }
}

impl Conduit for ShmConduit {
    fn caps(&self) -> DriverCaps {
        SHM_CAPS
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        // Stage into a recycled buffer; the receiving side adopts the Vec
        // back into the same session pool when it consumes the packet.
        let mut packet = self.pool.get(total).detach();
        for p in parts {
            packet.extend_from_slice(p);
        }
        self.tx.push(packet).map_err(|_| MadError::Disconnected)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        // A dynamic driver sends from anywhere; accept the buffer as-is.
        self.tx
            .push(buf.into_vec())
            .map_err(|_| MadError::Disconnected)
    }

    fn alloc_static(&mut self, _len: usize) -> Option<StaticBuf> {
        None // dynamic driver: no staging buffers to offer
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let packet = self.pop_blocking()?;
        if packet.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: packet.len(),
            });
        }
        dst[..packet.len()].copy_from_slice(&packet);
        let n = packet.len();
        // The wire buffer is spent: recycle it for the next staging send.
        drop(self.pool.adopt(packet));
        Ok(n)
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        self.pop_blocking()
    }

    fn ready(&self) -> bool {
        self.rx.has_pending()
    }

    fn closed(&self) -> bool {
        self.rx.is_closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::runtime::StdRuntime;

    fn pair() -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let rt = StdRuntime::shared();
        let driver = ShmDriver::new(rt.clone());
        let (ev_a, ev_b) = (rt.event(), rt.event());
        driver.connect(NodeId(0), NodeId(1), ev_a, ev_b)
    }

    #[test]
    fn gather_send_concatenates() {
        let (mut a, mut b) = pair();
        a.send(&[b"he", b"llo", b""]).unwrap();
        let got = b.recv_owned().unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn recv_into_checks_space() {
        let (mut a, mut b) = pair();
        a.send(&[&[1, 2, 3, 4]]).unwrap();
        let mut small = [0u8; 2];
        assert_eq!(
            b.recv_into(&mut small),
            Err(MadError::BufferTooSmall { have: 2, need: 4 })
        );
    }

    #[test]
    fn bidirectional_and_ordering() {
        let (mut a, mut b) = pair();
        a.send(&[b"x1"]).unwrap();
        a.send(&[b"x2"]).unwrap();
        b.send(&[b"y"]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"x1");
        assert_eq!(b.recv_owned().unwrap(), b"x2");
        assert_eq!(a.recv_owned().unwrap(), b"y");
    }

    #[test]
    fn disconnect_propagates() {
        let (a, mut b) = pair();
        drop(a);
        assert_eq!(b.recv_owned(), Err(MadError::Disconnected));
        assert!(b.closed());
    }

    #[test]
    fn ready_flag() {
        let (mut a, b) = pair();
        assert!(!b.ready());
        a.send(&[b"p"]).unwrap();
        assert!(b.ready());
    }
}
