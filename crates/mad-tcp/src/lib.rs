//! # mad-tcp — real TCP loopback driver for Madeleine
//!
//! A length-prefixed framing over real `TcpStream`s on 127.0.0.1. It plays
//! the role TCP/Fast-Ethernet plays in the paper: the slow, always-available
//! commodity protocol (the paper's own test harness runs its acks over it),
//! and the transport a PACX-style system would use between clusters.
//!
//! The driver is *static-buffer*: kernel sockets copy on both sides. Gather
//! sends use vectored writes. Each conduit side owns a socket plus a reader
//! thread that pumps incoming frames into a runtime queue, so `ready`/
//! `closed`/multiplexed receive behave exactly like the other drivers.
//!
//! This driver runs on the real-threads runtime only (its reader threads
//! block in kernel `read`, which virtual time cannot see).

#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use madeleine::conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
use madeleine::error::{MadError, Result};
use madeleine::runtime::{RtEvent, RtQueue, RtReceiver, Runtime};
use madeleine::types::NodeId;

/// Driver capabilities of the TCP loopback transport.
pub const TCP_CAPS: DriverCaps = DriverCaps {
    name: "tcp",
    mode: BufferMode::Static,
    max_gather: 1024,
    max_packet: 16 * 1024 * 1024,
    preferred_mtu: 32 * 1024,
};

/// The TCP Protocol Management Module.
pub struct TcpDriver {
    runtime: Arc<dyn Runtime>,
}

impl TcpDriver {
    /// Create a driver whose receive queues block through `runtime`
    /// (must be the real-threads runtime).
    pub fn new(runtime: Arc<dyn Runtime>) -> Arc<Self> {
        Arc::new(TcpDriver { runtime })
    }
}

impl Driver for TcpDriver {
    fn caps(&self) -> DriverCaps {
        TCP_CAPS
    }

    fn connect(
        &self,
        a: NodeId,
        b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding loopback listener");
        let addr = listener.local_addr().expect("listener address");
        let client = TcpStream::connect(addr).expect("loopback connect");
        let (server, _) = listener.accept().expect("loopback accept");
        client.set_nodelay(true).ok();
        server.set_nodelay(true).ok();
        (
            Box::new(TcpConduit::new(
                &*self.runtime,
                client,
                ev_a,
                format!("tcp-rd-{a}-{b}"),
            )),
            Box::new(TcpConduit::new(
                &*self.runtime,
                server,
                ev_b,
                format!("tcp-rd-{b}-{a}"),
            )),
        )
    }
}

struct TcpConduit {
    stream: TcpStream,
    frames: RtReceiver<Vec<u8>>,
    ev: Arc<dyn RtEvent>,
}

impl TcpConduit {
    fn new(rt: &dyn Runtime, stream: TcpStream, ev: Arc<dyn RtEvent>, name: String) -> Self {
        let (tx, rx) = RtQueue::with_event(rt, usize::MAX, ev.clone());
        let mut reader = stream.try_clone().expect("cloning stream for reader");
        // A plain OS thread: it blocks in kernel reads, invisible to any
        // virtual clock — which is why this driver is real-runtime only.
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let mut len_buf = [0u8; 4];
                loop {
                    if reader.read_exact(&mut len_buf).is_err() {
                        return; // peer closed: dropping tx disconnects
                    }
                    let len = u32::from_le_bytes(len_buf) as usize;
                    let mut frame = vec![0u8; len];
                    if reader.read_exact(&mut frame).is_err() {
                        return;
                    }
                    if tx.push(frame).is_err() {
                        return; // conduit dropped
                    }
                }
            })
            .expect("spawning tcp reader");
        TcpConduit {
            stream,
            frames: rx,
            ev,
        }
    }

    fn write_frame(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let len_buf = (total as u32).to_le_bytes();
        let mut write = |buf: &[u8]| self.stream.write_all(buf);
        write(&len_buf).map_err(|_| MadError::Disconnected)?;
        for p in parts {
            write(p).map_err(|_| MadError::Disconnected)?;
        }
        Ok(())
    }

    fn pop_blocking(&self) -> Result<Vec<u8>> {
        loop {
            let seen = self.ev.epoch();
            if let Some(frame) = self.frames.try_pop() {
                return Ok(frame);
            }
            if self.frames.is_closed() {
                return Err(MadError::Disconnected);
            }
            self.ev.wait_past(seen);
        }
    }
}

impl Drop for TcpConduit {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Conduit for TcpConduit {
    fn caps(&self) -> DriverCaps {
        TCP_CAPS
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        self.write_frame(parts)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        buf.check_owner(TCP_CAPS.name)?;
        self.write_frame(&[buf.as_slice()])
    }

    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf> {
        Some(StaticBuf::new(TCP_CAPS.name, len))
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let frame = self.pop_blocking()?;
        if frame.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: frame.len(),
            });
        }
        dst[..frame.len()].copy_from_slice(&frame);
        Ok(frame.len())
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        self.pop_blocking()
    }

    fn ready(&self) -> bool {
        self.frames.has_pending()
    }

    fn closed(&self) -> bool {
        self.frames.is_closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::runtime::StdRuntime;

    fn pair() -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let rt = StdRuntime::shared();
        let driver = TcpDriver::new(rt.clone());
        driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event())
    }

    #[test]
    fn frames_round_trip() {
        let (mut a, mut b) = pair();
        a.send(&[b"hello ", b"world"]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"hello world");
        b.send(&[b"pong"]).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(a.recv_into(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn empty_frame_supported() {
        let (mut a, mut b) = pair();
        a.send(&[]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_frame_round_trips() {
        let (mut a, mut b) = pair();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = big.clone();
        let h = std::thread::spawn(move || {
            a.send(&[&big]).unwrap();
            a // keep the conduit alive until the receiver is done
        });
        assert_eq!(b.recv_owned().unwrap(), expect);
        h.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (a, mut b) = pair();
        drop(a);
        assert_eq!(b.recv_owned(), Err(MadError::Disconnected));
        assert!(b.closed());
    }

    #[test]
    fn static_buffer_send() {
        let (mut a, mut b) = pair();
        let mut sb = a.alloc_static(3).unwrap();
        sb.as_mut_slice().copy_from_slice(b"abc");
        a.send_static(sb).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"abc");
        // Foreign buffers are rejected.
        let foreign = StaticBuf::new("sci", 1);
        assert!(matches!(
            a.send_static(foreign),
            Err(MadError::ForeignStaticBuffer { .. })
        ));
    }
}
