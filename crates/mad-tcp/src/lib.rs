//! # mad-tcp — real TCP loopback driver for Madeleine
//!
//! A length-prefixed framing over real `TcpStream`s on 127.0.0.1. It plays
//! the role TCP/Fast-Ethernet plays in the paper: the slow, always-available
//! commodity protocol (the paper's own test harness runs its acks over it),
//! and the transport a PACX-style system would use between clusters.
//!
//! The driver is *static-buffer*: kernel sockets copy on both sides. Gather
//! sends use vectored writes. It offers two receive architectures:
//!
//! * **Thread-per-conduit** ([`TcpDriver::new`]): each conduit side owns a
//!   socket plus a reader thread that pumps incoming frames into a runtime
//!   queue, so `ready`/`closed`/multiplexed receive behave exactly like the
//!   other drivers. Simple, but the thread count grows with the connection
//!   count.
//! * **Multiplexed** ([`TcpDriver::multiplexed`]): sockets are switched to
//!   non-blocking mode and ONE shared poller thread per driver pumps every
//!   connection's frames, with per-entry incremental reassembly state — so
//!   thousands of conduits cost one thread. This is the backend the
//!   reactor gateway engine pairs with to keep a whole session on a fixed
//!   thread budget.
//!
//! Connecting retries with seeded-jittered exponential backoff instead of
//! failing fast, so a transient refusal (listener backlog full under a
//! connection storm) does not kill session bootstrap — and a mass rejoin
//! after a gateway restart does not retry in lockstep.
//!
//! This driver runs on the real-threads runtime only (its reader and
//! poller threads block in kernel calls, which virtual time cannot see).

#![warn(missing_docs)]

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mad_util::rng::Rng;

use madeleine::conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
use madeleine::error::{MadError, Result};
use madeleine::runtime::{RtEvent, RtQueue, RtReceiver, RtSender, Runtime};
use madeleine::types::NodeId;

/// Driver capabilities of the TCP loopback transport.
pub const TCP_CAPS: DriverCaps = DriverCaps {
    name: "tcp",
    mode: BufferMode::Static,
    max_gather: 1024,
    max_packet: 16 * 1024 * 1024,
    preferred_mtu: 32 * 1024,
};

/// Attempts a [`connect_retry`] makes before giving up.
const CONNECT_ATTEMPTS: u32 = 8;

/// Base of the exponential backoff schedule, in microseconds (1 ms).
const BACKOFF_BASE_US: u64 = 1_000;

/// Ceiling of the exponential backoff schedule, in microseconds (100 ms).
const BACKOFF_CAP_US: u64 = 100_000;

/// The delay slept after 0-based `attempt` fails: exponential from
/// [`BACKOFF_BASE_US`], doubling per attempt and capped at
/// [`BACKOFF_CAP_US`], with seeded "equal jitter" — half the interval is
/// deterministic, the other half a uniform draw — so a mass rejoin after
/// a gateway restart spreads its reconnects across the interval instead
/// of thundering-herding the listener backlog in lockstep.
fn backoff_delay(attempt: u32, rng: &mut Rng) -> Duration {
    // The cap is reached by attempt 7, so clamping the exponent there
    // keeps the shift far from the bit width.
    let base = (BACKOFF_BASE_US << attempt.min(7)).min(BACKOFF_CAP_US);
    let half = base / 2;
    Duration::from_micros(half + rng.gen_range(0..half.saturating_add(1)))
}

/// Connect to `addr` with bounded, jittered exponential backoff (see
/// [`backoff_delay`]). Loopback connects only fail transiently when the
/// accept backlog overflows (many nodes bootstrapping at once), and that
/// clears in milliseconds. Each call draws an independent jitter
/// sequence (address hash mixed with the process id and a call nonce),
/// so simultaneous connectors de-synchronize deterministically per run.
fn connect_retry(addr: SocketAddr) -> std::io::Result<TcpStream> {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{addr}").bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= (std::process::id() as u64).rotate_left(32);
    seed ^= NONCE.fetch_add(1, Ordering::Relaxed).rotate_left(17);
    let mut rng = Rng::new(seed);
    let mut last = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            std::thread::sleep(backoff_delay(attempt, &mut rng));
        }
    }
    Err(last.unwrap_or_else(|| ErrorKind::ConnectionRefused.into()))
}

/// The TCP Protocol Management Module.
pub struct TcpDriver {
    runtime: Arc<dyn Runtime>,
    /// Shared frame poller — present in multiplexed mode only.
    poller: Option<Arc<Poller>>,
}

impl TcpDriver {
    /// Create a thread-per-conduit driver whose receive queues block
    /// through `runtime` (must be the real-threads runtime).
    pub fn new(runtime: Arc<dyn Runtime>) -> Arc<Self> {
        Arc::new(TcpDriver {
            runtime,
            poller: None,
        })
    }

    /// Create a multiplexed driver: every conduit's socket is
    /// non-blocking and one shared poller thread (spawned lazily through
    /// `runtime`, so it is counted in the session thread budget) pumps
    /// all of their incoming frames. Receive-side behavior is identical
    /// to [`TcpDriver::new`]; only the thread economics change.
    pub fn multiplexed(runtime: Arc<dyn Runtime>) -> Arc<Self> {
        Arc::new(TcpDriver {
            poller: Some(Arc::new(Poller {
                runtime: runtime.clone(),
                state: Mutex::new(PollerState {
                    entries: Vec::new(),
                    running: false,
                }),
            })),
            runtime,
        })
    }
}

impl Driver for TcpDriver {
    fn caps(&self) -> DriverCaps {
        TCP_CAPS
    }

    fn connect(
        &self,
        a: NodeId,
        b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding loopback listener");
        let addr = listener.local_addr().expect("listener address");
        let client = connect_retry(addr).expect("loopback connect");
        let (server, _) = listener.accept().expect("loopback accept");
        client.set_nodelay(true).ok();
        server.set_nodelay(true).ok();
        if let Some(poller) = &self.poller {
            return (
                Box::new(MuxConduit::new(poller, client, ev_a)),
                Box::new(MuxConduit::new(poller, server, ev_b)),
            );
        }
        (
            Box::new(TcpConduit::new(
                &*self.runtime,
                client,
                ev_a,
                format!("tcp-rd-{a}-{b}"),
            )),
            Box::new(TcpConduit::new(
                &*self.runtime,
                server,
                ev_b,
                format!("tcp-rd-{b}-{a}"),
            )),
        )
    }
}

struct TcpConduit {
    stream: TcpStream,
    frames: RtReceiver<Vec<u8>>,
    ev: Arc<dyn RtEvent>,
}

impl TcpConduit {
    fn new(rt: &dyn Runtime, stream: TcpStream, ev: Arc<dyn RtEvent>, name: String) -> Self {
        let (tx, rx) = RtQueue::with_event(rt, usize::MAX, ev.clone());
        let mut reader = stream.try_clone().expect("cloning stream for reader");
        // Spawned through the runtime so the session's thread-budget
        // accounting sees it; it still blocks in kernel reads, invisible
        // to any virtual clock — which is why this driver is real-runtime
        // only. The handle is dropped: the thread exits on its own when
        // the peer closes or the conduit is dropped.
        let _detached = rt.spawn(
            name,
            Box::new(move || {
                let mut len_buf = [0u8; 4];
                loop {
                    if reader.read_exact(&mut len_buf).is_err() {
                        return; // peer closed: dropping tx disconnects
                    }
                    let len = u32::from_le_bytes(len_buf) as usize;
                    let mut frame = vec![0u8; len];
                    if reader.read_exact(&mut frame).is_err() {
                        return;
                    }
                    if tx.push(frame).is_err() {
                        return; // conduit dropped
                    }
                }
            }),
        );
        TcpConduit {
            stream,
            frames: rx,
            ev,
        }
    }

    fn write_frame(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let len_buf = (total as u32).to_le_bytes();
        let mut write = |buf: &[u8]| self.stream.write_all(buf);
        write(&len_buf).map_err(|_| MadError::Disconnected)?;
        for p in parts {
            write(p).map_err(|_| MadError::Disconnected)?;
        }
        Ok(())
    }

    fn pop_blocking(&self) -> Result<Vec<u8>> {
        loop {
            let seen = self.ev.epoch();
            if let Some(frame) = self.frames.try_pop() {
                return Ok(frame);
            }
            if self.frames.is_closed() {
                return Err(MadError::Disconnected);
            }
            self.ev.wait_past(seen);
        }
    }
}

impl Drop for TcpConduit {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Conduit for TcpConduit {
    fn caps(&self) -> DriverCaps {
        TCP_CAPS
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        self.write_frame(parts)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        buf.check_owner(TCP_CAPS.name)?;
        self.write_frame(&[buf.as_slice()])
    }

    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf> {
        Some(StaticBuf::new(TCP_CAPS.name, len))
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let frame = self.pop_blocking()?;
        if frame.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: frame.len(),
            });
        }
        dst[..frame.len()].copy_from_slice(&frame);
        Ok(frame.len())
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        self.pop_blocking()
    }

    fn ready(&self) -> bool {
        self.frames.has_pending()
    }

    fn closed(&self) -> bool {
        self.frames.is_closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}

/// Write `buf` to a non-blocking socket, spinning (with a short sleep) on
/// `WouldBlock`. The loopback send buffer drains in microseconds, so the
/// sleep is a politeness yield, not a latency cliff.
fn write_all_nonblocking(stream: &mut TcpStream, mut buf: &[u8]) -> Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(MadError::Disconnected),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(MadError::Disconnected),
        }
    }
    Ok(())
}

/// One registered connection of the shared poller: its read-half socket
/// plus the incremental reassembly state of the frame currently being
/// read. Non-blocking reads can stop anywhere — mid-length-prefix,
/// mid-body — so the partial state lives here between poll passes.
struct Entry {
    stream: TcpStream,
    /// `None` once the conduit was dropped mid-frame (push failed); the
    /// entry then only lingers until the next pass removes it.
    tx: Option<RtSender<Vec<u8>>>,
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_got: usize,
}

enum PumpOutcome {
    /// Made progress (bytes read or frames delivered).
    Progress,
    /// Nothing to read right now.
    Idle,
    /// Connection finished (EOF, error, or conduit dropped): remove.
    Dead,
}

/// Completed frames one entry may deliver per poller pass, so one
/// fire-hosing connection cannot starve the rest of the registry.
const PUMP_FRAME_BUDGET: usize = 64;

impl Entry {
    /// Drain whatever the socket has ready, delivering completed frames
    /// (up to [`PUMP_FRAME_BUDGET`]), without ever blocking.
    fn pump(&mut self) -> PumpOutcome {
        let mut progressed = false;
        let mut delivered = 0usize;
        loop {
            if delivered >= PUMP_FRAME_BUDGET {
                return PumpOutcome::Progress;
            }
            let (dst, done_len) = if self.len_got < 4 {
                (&mut self.len_buf[self.len_got..], true)
            } else {
                (&mut self.body[self.body_got..], false)
            };
            if dst.is_empty() {
                // Zero-length frame (or length prefix just completed with
                // len 0): fall through to frame completion below.
                self.advance(0, done_len);
                if self.deliver_if_complete(&mut delivered) == PumpOutcome::Dead {
                    return PumpOutcome::Dead;
                }
                progressed = true;
                continue;
            }
            match self.stream.read(dst) {
                Ok(0) => return PumpOutcome::Dead, // EOF
                Ok(n) => {
                    progressed = true;
                    self.advance(n, done_len);
                    if self.deliver_if_complete(&mut delivered) == PumpOutcome::Dead {
                        return PumpOutcome::Dead;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return if progressed {
                        PumpOutcome::Progress
                    } else {
                        PumpOutcome::Idle
                    };
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return PumpOutcome::Dead,
            }
        }
    }

    fn advance(&mut self, n: usize, reading_len: bool) {
        if reading_len {
            self.len_got += n;
            if self.len_got == 4 {
                let len = u32::from_le_bytes(self.len_buf) as usize;
                self.body = vec![0u8; len];
                self.body_got = 0;
            }
        } else {
            self.body_got += n;
        }
    }

    fn deliver_if_complete(&mut self, delivered: &mut usize) -> PumpOutcome {
        if self.len_got < 4 || self.body_got < self.body.len() {
            return PumpOutcome::Progress;
        }
        let frame = std::mem::take(&mut self.body);
        self.len_got = 0;
        self.body_got = 0;
        match &self.tx {
            Some(tx) => {
                if tx.push(frame).is_err() {
                    self.tx = None; // conduit dropped
                    return PumpOutcome::Dead;
                }
                *delivered += 1;
                PumpOutcome::Progress
            }
            None => PumpOutcome::Dead,
        }
    }
}

impl PartialEq for PumpOutcome {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (PumpOutcome::Progress, PumpOutcome::Progress)
                | (PumpOutcome::Idle, PumpOutcome::Idle)
                | (PumpOutcome::Dead, PumpOutcome::Dead)
        )
    }
}

struct PollerState {
    entries: Vec<Entry>,
    /// True while a poller thread is live; a connect after the previous
    /// poller drained and exited spawns a fresh one.
    running: bool,
}

/// The shared frame pump of a multiplexed driver: one thread, every
/// connection. Std-only, so readiness is polled (non-blocking reads with
/// a short sleep between idle passes) rather than epoll-driven; on
/// loopback at gateway packet rates the pump is virtually always
/// progressing, so the sleep rarely triggers.
struct Poller {
    runtime: Arc<dyn Runtime>,
    state: Mutex<PollerState>,
}

impl Poller {
    /// Register a connection's read half and make sure a poller thread is
    /// running to serve it.
    fn register(self: &Arc<Self>, entry: Entry) {
        let mut st = self.state.lock().expect("poller state lock");
        st.entries.push(entry);
        if !st.running {
            st.running = true;
            drop(st);
            let poller = self.clone();
            // Through the runtime, so the budget accounting counts the
            // (single) poller thread; the handle is dropped, the thread
            // exits once every entry is gone.
            let _detached = self
                .runtime
                .spawn("tcp-poller".to_string(), Box::new(move || poller.run()));
        }
    }

    fn run(&self) {
        loop {
            let mut progressed = false;
            {
                let mut st = self.state.lock().expect("poller state lock");
                st.entries.retain_mut(|e| match e.pump() {
                    PumpOutcome::Progress => {
                        progressed = true;
                        true
                    }
                    PumpOutcome::Idle => true,
                    PumpOutcome::Dead => {
                        // Dropping the entry (and its tx) wakes the
                        // conduit with a disconnect.
                        progressed = true;
                        false
                    }
                });
                if st.entries.is_empty() {
                    st.running = false;
                    return;
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// A conduit served by the shared poller: the write half lives here (the
/// socket is non-blocking, so writes spin on `WouldBlock`), the read half
/// is pumped by the poller into `frames`.
struct MuxConduit {
    stream: TcpStream,
    frames: RtReceiver<Vec<u8>>,
    ev: Arc<dyn RtEvent>,
}

impl MuxConduit {
    fn new(poller: &Arc<Poller>, stream: TcpStream, ev: Arc<dyn RtEvent>) -> Self {
        stream
            .set_nonblocking(true)
            .expect("setting socket non-blocking");
        let reader = stream.try_clone().expect("cloning stream for poller");
        let (tx, rx) = RtQueue::with_event(&*poller.runtime, usize::MAX, ev.clone());
        poller.register(Entry {
            stream: reader,
            tx: Some(tx),
            len_buf: [0u8; 4],
            len_got: 0,
            body: Vec::new(),
            body_got: 0,
        });
        MuxConduit {
            stream,
            frames: rx,
            ev,
        }
    }

    fn write_frame(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        write_all_nonblocking(&mut self.stream, &(total as u32).to_le_bytes())?;
        for p in parts {
            write_all_nonblocking(&mut self.stream, p)?;
        }
        Ok(())
    }

    fn pop_blocking(&self) -> Result<Vec<u8>> {
        loop {
            let seen = self.ev.epoch();
            if let Some(frame) = self.frames.try_pop() {
                return Ok(frame);
            }
            if self.frames.is_closed() {
                return Err(MadError::Disconnected);
            }
            self.ev.wait_past(seen);
        }
    }
}

impl Drop for MuxConduit {
    fn drop(&mut self) {
        // The poller notices the shutdown as an EOF and removes the entry.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Conduit for MuxConduit {
    fn caps(&self) -> DriverCaps {
        TCP_CAPS
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        self.write_frame(parts)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        buf.check_owner(TCP_CAPS.name)?;
        self.write_frame(&[buf.as_slice()])
    }

    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf> {
        Some(StaticBuf::new(TCP_CAPS.name, len))
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let frame = self.pop_blocking()?;
        if frame.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: frame.len(),
            });
        }
        dst[..frame.len()].copy_from_slice(&frame);
        Ok(frame.len())
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        self.pop_blocking()
    }

    fn ready(&self) -> bool {
        self.frames.has_pending()
    }

    fn closed(&self) -> bool {
        self.frames.is_closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::runtime::StdRuntime;

    fn pair() -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let rt = StdRuntime::shared();
        let driver = TcpDriver::new(rt.clone());
        driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event())
    }

    fn pair_mux() -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let rt = StdRuntime::shared();
        let driver = TcpDriver::multiplexed(rt.clone());
        driver.connect(NodeId(0), NodeId(1), rt.event(), rt.event())
    }

    #[test]
    fn backoff_schedule_is_bounded_and_jittered() {
        // Every delay lives in [base/2, base] with the base doubling from
        // 1 ms and capping at 100 ms; the schedule is deterministic per
        // seed and diverges across seeds (the anti-thundering-herd point).
        let mut rng = Rng::new(42);
        let mut prev_base = 0u64;
        for attempt in 0..CONNECT_ATTEMPTS {
            let base = (BACKOFF_BASE_US << attempt.min(7)).min(BACKOFF_CAP_US);
            let d = backoff_delay(attempt, &mut rng).as_micros() as u64;
            assert!(d >= base / 2, "attempt {attempt}: {d}us under half-base");
            assert!(d <= base, "attempt {attempt}: {d}us over base");
            assert!(base >= prev_base, "base must not shrink");
            prev_base = base;
        }
        assert_eq!(prev_base, BACKOFF_CAP_US, "schedule reaches the cap");
        let schedule = |seed: u64| -> Vec<u64> {
            let mut rng = Rng::new(seed);
            (0..CONNECT_ATTEMPTS)
                .map(|a| backoff_delay(a, &mut rng).as_micros() as u64)
                .collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seeds de-sync");
        // Far past the cap the shift saturates instead of overflowing.
        let late = backoff_delay(200, &mut rng).as_micros() as u64;
        assert!((BACKOFF_CAP_US / 2..=BACKOFF_CAP_US).contains(&late));
    }

    #[test]
    fn mux_frames_round_trip() {
        let (mut a, mut b) = pair_mux();
        a.send(&[b"hello ", b"world"]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"hello world");
        b.send(&[b"pong"]).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(a.recv_into(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"pong");
        a.send(&[]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn mux_large_frame_round_trips() {
        let (mut a, mut b) = pair_mux();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = big.clone();
        let h = std::thread::spawn(move || {
            a.send(&[&big]).unwrap();
            a
        });
        assert_eq!(b.recv_owned().unwrap(), expect);
        h.join().unwrap();
    }

    #[test]
    fn mux_disconnect_detected() {
        let (a, mut b) = pair_mux();
        drop(a);
        assert_eq!(b.recv_owned(), Err(MadError::Disconnected));
        assert!(b.closed());
    }

    #[test]
    fn mux_one_poller_serves_many_connections() {
        let rt = StdRuntime::shared();
        let before = rt.threads_spawned();
        let driver = TcpDriver::multiplexed(rt.clone());
        let mut pairs: Vec<_> = (0..32)
            .map(|i| driver.connect(NodeId(0), NodeId(i + 1), rt.event(), rt.event()))
            .collect();
        for (i, (a, b)) in pairs.iter_mut().enumerate() {
            let msg = vec![i as u8; 100 + i];
            a.send(&[&msg]).unwrap();
            assert_eq!(b.recv_owned().unwrap(), msg);
        }
        // 32 connections (64 conduits), one poller thread.
        assert_eq!(
            rt.threads_spawned() - before,
            1,
            "multiplexed driver must run a single shared poller"
        );
    }

    #[test]
    fn frames_round_trip() {
        let (mut a, mut b) = pair();
        a.send(&[b"hello ", b"world"]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"hello world");
        b.send(&[b"pong"]).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(a.recv_into(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn empty_frame_supported() {
        let (mut a, mut b) = pair();
        a.send(&[]).unwrap();
        assert_eq!(b.recv_owned().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_frame_round_trips() {
        let (mut a, mut b) = pair();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = big.clone();
        let h = std::thread::spawn(move || {
            a.send(&[&big]).unwrap();
            a // keep the conduit alive until the receiver is done
        });
        assert_eq!(b.recv_owned().unwrap(), expect);
        h.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (a, mut b) = pair();
        drop(a);
        assert_eq!(b.recv_owned(), Err(MadError::Disconnected));
        assert!(b.closed());
    }

    #[test]
    fn static_buffer_send() {
        let (mut a, mut b) = pair();
        let mut sb = a.alloc_static(3).unwrap();
        sb.as_mut_slice().copy_from_slice(b"abc");
        a.send_static(sb).unwrap();
        assert_eq!(b.recv_owned().unwrap(), b"abc");
        // Foreign buffers are rejected.
        let foreign = StaticBuf::new("sci", 1);
        assert!(matches!(
            a.send_static(foreign),
            Err(MadError::ForeignStaticBuffer { .. })
        ));
    }
}
