//! Unit tests for the virtual clock and mailboxes.

use crate::*;

#[test]
fn single_actor_sleep_advances_time() {
    let clock = Clock::new();
    let h = clock.spawn("sleeper", |a| {
        a.sleep(SimDuration::from_micros(5));
        a.sleep(SimDuration::from_micros(7));
        a.now()
    });
    assert_eq!(h.join().unwrap(), SimTime(12_000));
}

#[test]
fn zero_sleep_is_noop() {
    let clock = Clock::new();
    let h = clock.spawn("z", |a| {
        a.sleep(SimDuration::ZERO);
        a.now()
    });
    assert_eq!(h.join().unwrap(), SimTime::ZERO);
}

#[test]
fn two_actors_interleave_deterministically() {
    // Actor A sleeps 10us three times; actor B sleeps 15us twice.
    // Wakeups happen at 10,20,30 (A) and 15,30 (B); final time is 30us.
    let clock = Clock::new();
    let setup = clock.freeze();
    let a = clock.spawn("a", |a| {
        let mut stamps = vec![];
        for _ in 0..3 {
            a.sleep(SimDuration::from_micros(10));
            stamps.push(a.now().as_nanos());
        }
        stamps
    });
    let b = clock.spawn("b", |a| {
        let mut stamps = vec![];
        for _ in 0..2 {
            a.sleep(SimDuration::from_micros(15));
            stamps.push(a.now().as_nanos());
        }
        stamps
    });
    drop(setup);
    assert_eq!(a.join().unwrap(), vec![10_000, 20_000, 30_000]);
    assert_eq!(b.join().unwrap(), vec![15_000, 30_000]);
}

#[test]
fn mailbox_transfers_in_virtual_time() {
    let clock = Clock::new();
    let (tx, rx) = mailbox::<u32>(&clock);
    let setup = clock.freeze();
    let producer = clock.spawn("producer", move |a| {
        for i in 0..5u32 {
            a.sleep(SimDuration::from_micros(10));
            tx.send(i).unwrap();
        }
    });
    let consumer = clock.spawn("consumer", move |a| {
        let mut got = vec![];
        for _ in 0..5 {
            got.push(rx.recv(a).unwrap());
        }
        (got, a.now())
    });
    drop(setup);
    producer.join().unwrap();
    let (got, t) = consumer.join().unwrap();
    assert_eq!(got, vec![0, 1, 2, 3, 4]);
    assert_eq!(t, SimTime(50_000));
}

#[test]
fn mailbox_disconnect_reported() {
    let clock = Clock::new();
    let (tx, rx) = mailbox::<u32>(&clock);
    let producer = clock.spawn("producer", move |a| {
        a.sleep(SimDuration::from_micros(1));
        tx.send(7).unwrap();
        // tx drops here
    });
    let consumer = clock.spawn("consumer", move |a| {
        assert_eq!(rx.recv(a), Ok(7));
        assert_eq!(rx.recv(a), Err(RecvError::Disconnected));
    });
    producer.join().unwrap();
    consumer.join().unwrap();
}

#[test]
fn send_to_dropped_receiver_fails() {
    let clock = Clock::new();
    let (tx, rx) = mailbox::<u32>(&clock);
    drop(rx);
    assert_eq!(tx.send(3), Err(SendError(3)));
}

#[test]
fn recv_until_deadline() {
    let clock = Clock::new();
    let (tx, rx) = mailbox::<u32>(&clock);
    let setup = clock.freeze();
    let slowpoke = clock.spawn("slow-producer", move |a| {
        a.sleep(SimDuration::from_millis(10));
        let _ = tx.send(1);
    });
    let consumer = clock.spawn("consumer", move |a| {
        let deadline = a.now().after(SimDuration::from_micros(100));
        let r = rx.recv_until(a, deadline);
        (r, a.now())
    });
    drop(setup);
    let (r, t) = consumer.join().unwrap();
    assert_eq!(r, Err(RecvError::DeadlineReached));
    assert_eq!(t, SimTime(100_000));
    slowpoke.join().unwrap();
}

#[test]
fn signal_wakes_deadline_sleeper_early() {
    let clock = Clock::new();
    let sig = clock.signal();
    let sig2 = sig.clone();
    let setup = clock.freeze();
    let waiter = clock.spawn("waiter", move |a| {
        let deadline = a.now().after(SimDuration::from_millis(1));
        let out = a.wait_signal_until(&sig2, 0, deadline);
        (out, a.now())
    });
    let bumper = clock.spawn("bumper", move |a| {
        a.sleep(SimDuration::from_micros(50));
        sig.bump();
    });
    drop(setup);
    let (out, t) = waiter.join().unwrap();
    assert_eq!(out, WaitOutcome::Signaled(1));
    assert_eq!(t, SimTime(50_000));
    bumper.join().unwrap();
}

#[test]
fn signal_already_bumped_returns_immediately() {
    let clock = Clock::new();
    let sig = clock.signal();
    sig.bump();
    sig.bump();
    let sig2 = sig.clone();
    let h = clock.spawn("w", move |a| a.wait_signal(&sig2, 1));
    assert_eq!(h.join().unwrap(), 2);
}

#[test]
fn dropping_actor_unblocks_time() {
    // One actor sleeps; a second registers and immediately drops. The
    // sleeper must still be able to advance time.
    let clock = Clock::new();
    let extra = clock.actor("transient");
    let sleeper = clock.spawn("sleeper", |a| {
        a.sleep(SimDuration::from_micros(3));
        a.now()
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(extra);
    assert_eq!(sleeper.join().unwrap(), SimTime(3_000));
}

#[test]
fn deadlock_is_detected() {
    let clock = Clock::new();
    let (_tx, rx) = mailbox::<u32>(&clock);
    let h = clock.spawn("starved", move |a| {
        let _ = rx.recv(a); // no sender will ever feed this
    });
    let err = h.join().expect_err("expected deadlock panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
    assert!(msg.contains("deadlock"), "panic message was: {msg}");
}

#[test]
fn determinism_across_runs() {
    fn run() -> Vec<u64> {
        let clock = Clock::new();
        let (tx, rx) = mailbox::<u64>(&clock);
        let setup = clock.freeze();
        let mut handles = vec![];
        for i in 1..=4u64 {
            let tx = tx.clone();
            handles.push(clock.spawn(format!("p{i}"), move |a| {
                for k in 0..10 {
                    a.sleep(SimDuration::from_micros(i * 7 + k));
                    tx.send(i).unwrap();
                }
            }));
        }
        drop(tx);
        let consumer = clock.spawn("c", move |a| {
            let mut stamps = vec![];
            while rx.recv(a).is_ok() {
                stamps.push(a.now().as_nanos());
            }
            stamps
        });
        drop(setup);
        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap()
    }
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}

#[test]
fn shared_signal_mailboxes_multiplex() {
    let clock = Clock::new();
    let sig = clock.signal();
    let (tx1, rx1) = mailbox_with_signal::<u8>(sig.clone());
    let (tx2, rx2) = mailbox_with_signal::<u8>(sig.clone());
    let setup = clock.freeze();
    let p = clock.spawn("p", move |a| {
        a.sleep(SimDuration::from_micros(10));
        tx2.send(2).unwrap();
        a.sleep(SimDuration::from_micros(10));
        tx1.send(1).unwrap();
    });
    let c = clock.spawn("c", move |a| {
        let mut got = vec![];
        let mut seen = sig.epoch();
        while got.len() < 2 {
            if let Some(v) = rx1.try_recv() {
                got.push((v, a.now().as_nanos()));
                continue;
            }
            if let Some(v) = rx2.try_recv() {
                got.push((v, a.now().as_nanos()));
                continue;
            }
            seen = a.wait_signal(&sig, seen);
        }
        got
    });
    drop(setup);
    p.join().unwrap();
    assert_eq!(c.join().unwrap(), vec![(2, 10_000), (1, 20_000)]);
}

#[test]
fn time_display_formats() {
    assert_eq!(SimTime(1_500).to_string(), "1.500us");
    assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
    assert_eq!(SimDuration::from_secs_f64(1e-6), SimDuration(1_000));
    assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration(0));
    assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration(0));
}

#[test]
fn sim_time_arithmetic() {
    let t = SimTime(5_000);
    assert_eq!(t.after(SimDuration(2_000)), SimTime(7_000));
    assert_eq!(t.since(SimTime(1_000)), SimDuration(4_000));
    assert_eq!(SimTime(1_000).since(t), SimDuration(0));
    assert!((SimTime(2_000_000_000).as_secs_f64() - 2.0).abs() < 1e-12);
}

#[test]
fn current_actor_install_and_nesting() {
    assert!(!crate::has_current());
    let clock = Clock::new();
    let outer = clock.actor("outer");
    {
        let _g1 = crate::install(&outer);
        assert!(crate::has_current());
        crate::with_current(|a| assert_eq!(a.name(), "outer"));
        let inner = clock.actor("inner");
        {
            let _g2 = crate::install(&inner);
            crate::with_current(|a| assert_eq!(a.name(), "inner"));
        }
        // Restored to the previous actor after the inner guard drops.
        crate::with_current(|a| assert_eq!(a.name(), "outer"));
    }
    assert!(!crate::has_current());
}

#[test]
fn spawned_threads_have_current_actor() {
    let clock = Clock::new();
    let h = clock.spawn("worker", |_a| {
        crate::with_current(|a| {
            a.sleep(SimDuration::from_micros(2));
            a.now()
        })
    });
    assert_eq!(h.join().unwrap(), SimTime(2_000));
}

#[test]
fn wait_until_past_deadline_returns_immediately() {
    let clock = Clock::new();
    let sig = clock.signal();
    let h = clock.spawn("w", move |a| {
        a.sleep(SimDuration::from_micros(10));
        // Deadline already in the past: must not block.
        a.wait_signal_until(&sig, 0, SimTime(5_000))
    });
    assert_eq!(h.join().unwrap(), WaitOutcome::DeadlineReached);
}

#[test]
fn signal_epoch_visible_across_clones() {
    let clock = Clock::new();
    let s1 = clock.signal();
    let s2 = s1.clone();
    s1.bump();
    assert_eq!(s2.epoch(), 1);
    s2.bump();
    assert_eq!(s1.epoch(), 2);
}

#[test]
fn mailbox_is_closed_tracks_lifecycle() {
    let clock = Clock::new();
    let (tx, rx) = mailbox::<u8>(&clock);
    assert!(!rx.is_closed());
    tx.send(1).unwrap();
    drop(tx);
    assert!(!rx.is_closed(), "still has a queued message");
    assert_eq!(rx.try_recv(), Some(1));
    assert!(rx.is_closed());
}
