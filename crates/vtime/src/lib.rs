//! # vtime — deterministic virtual time for real threads
//!
//! The Madeleine reproduction runs its communication stack as ordinary
//! multi-threaded Rust code, but the performance experiments must be timed
//! against a *model* of 2001-era hardware (PCI buses, Myrinet and SCI links),
//! not against the host machine. `vtime` supplies the missing piece: a
//! [`Clock`] shared by a set of registered [`Actor`]s (one per participating
//! OS thread) that advances only when **every** actor is waiting. The earliest
//! pending deadline becomes the new "now", the corresponding actors resume,
//! and the cycle repeats — a conservative discrete-event scheme in which the
//! simulated code is regular blocking Rust.
//!
//! Three waiting primitives cover everything the simulator needs:
//!
//! * [`Actor::sleep`] — wait for a fixed virtual duration (a modeled DMA
//!   transfer, a link occupancy, a software overhead constant).
//! * [`Signal`] — an epoch counter; [`Actor::wait_signal`] blocks until the
//!   epoch moves past a previously observed value, and
//!   [`Actor::wait_signal_until`] adds a virtual-time deadline. This is the
//!   cancellable sleep the fluid-flow bus model needs when bus membership
//!   changes invalidate a predicted completion time.
//! * [`mailbox`] — an unbounded typed queue whose `recv` blocks in virtual
//!   time; the wires of the simulated networks are mailboxes.
//!
//! If every actor is waiting and none has a deadline, the simulation cannot
//! progress: the clock panics with a per-actor diagnostic instead of hanging,
//! which turns distributed deadlocks in the protocol code into crisp test
//! failures.

#![warn(missing_docs)]

mod clock;
mod current;
mod mailbox;

pub use clock::{Actor, Clock, Signal, SimDuration, SimTime, WaitOutcome};
pub use current::{has_current, install, with_current, CurrentGuard};
pub use mailbox::{mailbox, mailbox_with_signal, MailReceiver, MailSender, RecvError, SendError};

#[cfg(test)]
mod tests;
