//! Typed virtual-time mailboxes.
//!
//! A mailbox is the vtime analogue of an mpsc channel: `send` never blocks
//! (the simulated hardware models its own backpressure through explicit
//! timing, so unbounded queues are correct here), while `recv` parks the
//! receiving [`Actor`] in virtual time until a message or disconnection
//! arrives.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use mad_util::sync::Mutex;

use crate::clock::{Actor, Clock, Signal, SimTime, WaitOutcome};

/// Error returned by [`MailSender::send`] when every receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mailbox send on a channel with no receiver")
    }
}

/// Error returned by the receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// All senders dropped and the queue is drained.
    Disconnected,
    /// The deadline passed before a message arrived (timed variant only).
    DeadlineReached,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "mailbox disconnected"),
            RecvError::DeadlineReached => write!(f, "mailbox recv deadline reached"),
        }
    }
}

impl std::error::Error for RecvError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    signal: Signal,
    senders: Mutex<usize>,
    receivers: Mutex<usize>,
}

/// Create a connected sender/receiver pair on `clock`.
pub fn mailbox<T>(clock: &Clock) -> (MailSender<T>, MailReceiver<T>) {
    mailbox_with_signal(clock.signal())
}

/// Create a mailbox whose enqueues bump a caller-provided signal, so several
/// mailboxes can share one wake-up channel (multiplexed polling).
pub fn mailbox_with_signal<T>(signal: Signal) -> (MailSender<T>, MailReceiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        signal,
        senders: Mutex::new(1),
        receivers: Mutex::new(1),
    });
    (
        MailSender {
            shared: shared.clone(),
        },
        MailReceiver { shared },
    )
}

/// Sending half of a mailbox. Clonable; the queue disconnects when the last
/// sender drops.
pub struct MailSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for MailSender<T> {
    fn clone(&self) -> Self {
        *self.shared.senders.lock() += 1;
        MailSender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for MailSender<T> {
    fn drop(&mut self) {
        let mut n = self.shared.senders.lock();
        *n -= 1;
        if *n == 0 {
            drop(n);
            // Wake receivers so they observe the disconnection.
            self.shared.signal.bump();
        }
    }
}

impl<T> fmt::Debug for MailSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MailSender").finish_non_exhaustive()
    }
}

impl<T> MailSender<T> {
    /// Enqueue a message and wake the receiver. Fails when every receiver is
    /// gone, handing the message back.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if *self.shared.receivers.lock() == 0 {
            return Err(SendError(value));
        }
        self.shared.queue.lock().push_back(value);
        self.shared.signal.bump();
        Ok(())
    }
}

/// Receiving half of a mailbox. Clonable (any-cast: each message is consumed
/// by exactly one receiver).
pub struct MailReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for MailReceiver<T> {
    fn clone(&self) -> Self {
        *self.shared.receivers.lock() += 1;
        MailReceiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for MailReceiver<T> {
    fn drop(&mut self) {
        *self.shared.receivers.lock() -= 1;
    }
}

impl<T> fmt::Debug for MailReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MailReceiver").finish_non_exhaustive()
    }
}

impl<T> MailReceiver<T> {
    /// Pop a message if one is queued; never blocks.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.queue.lock().pop_front()
    }

    /// True if a message is currently queued.
    pub fn has_pending(&self) -> bool {
        !self.shared.queue.lock().is_empty()
    }

    /// Inspect the head of the queue without consuming it; `None` when
    /// the queue is empty.
    pub fn peek_map<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.shared.queue.lock().front().map(f)
    }

    /// True once every sender is gone and the queue is drained.
    pub fn is_closed(&self) -> bool {
        *self.shared.senders.lock() == 0 && self.shared.queue.lock().is_empty()
    }

    /// Block `actor` in virtual time until a message arrives.
    pub fn recv(&self, actor: &Actor) -> Result<T, RecvError> {
        let mut seen = self.shared.signal.epoch();
        loop {
            if let Some(v) = self.try_recv() {
                return Ok(v);
            }
            if *self.shared.senders.lock() == 0 {
                return Err(RecvError::Disconnected);
            }
            seen = actor.wait_signal(&self.shared.signal, seen);
        }
    }

    /// Block `actor` until a message arrives or `deadline` passes.
    pub fn recv_until(&self, actor: &Actor, deadline: SimTime) -> Result<T, RecvError> {
        let mut seen = self.shared.signal.epoch();
        loop {
            if let Some(v) = self.try_recv() {
                return Ok(v);
            }
            if *self.shared.senders.lock() == 0 {
                return Err(RecvError::Disconnected);
            }
            match actor.wait_signal_until(&self.shared.signal, seen, deadline) {
                WaitOutcome::Signaled(e) => seen = e,
                WaitOutcome::DeadlineReached => return Err(RecvError::DeadlineReached),
            }
        }
    }

    /// The signal bumped on every enqueue; lets callers multiplex several
    /// mailboxes with [`Actor::wait_signal_until`]-style polling loops.
    pub fn signal(&self) -> &Signal {
        &self.shared.signal
    }
}
