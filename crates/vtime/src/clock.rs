//! The virtual clock: a single monitor shared by all simulated threads.
//!
//! All bookkeeping lives behind one `Mutex<Core>` + `Condvar` pair. Each
//! participating OS thread registers an [`Actor`]; the clock tracks, per
//! actor, whether it is running or waiting (with an optional deadline and an
//! optional [`Signal`] subscription). Virtual time advances exclusively in
//! [`Core::maybe_advance`], which fires only when the count of runnable
//! actors reaches zero — the conservative condition that makes the timeline
//! deterministic regardless of host scheduling.

use std::fmt;
use std::sync::Arc;

use mad_util::sync::{Condvar, Mutex};

/// Wall-clock patience before declaring a virtual-time deadlock. Generous
/// enough for threads mid-teardown to release their resources, short enough
/// for tests to fail promptly.
const DEADLOCK_GRACE: std::time::Duration = std::time::Duration::from_millis(400);

/// A point on the virtual timeline, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for bandwidth math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The instant `d` after `self`, saturating at the end of time.
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Elapsed duration since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1e3)
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds in this duration.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1e3)
    }
}

/// Result of a deadline-bounded wait ([`Actor::wait_signal_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The signal was bumped before the deadline; carries the new epoch.
    Signaled(u64),
    /// The virtual clock reached the deadline first.
    DeadlineReached,
}

#[derive(Debug, Clone)]
enum ActorState {
    Running,
    /// Waiting, runnable again when `wake_at` is reached (if set) or when
    /// signal `signal`'s epoch exceeds the recorded value (if set).
    Waiting {
        wake_at: Option<u64>,
        signal: Option<(usize, u64)>,
    },
}

#[derive(Debug)]
struct ActorRec {
    name: String,
    state: ActorState,
}

#[derive(Debug, Default)]
struct Core {
    now: u64,
    /// Slab of actors; `None` marks deregistered slots.
    actors: Vec<Option<ActorRec>>,
    runnable: usize,
    /// Epoch per signal; signals are never deallocated (they are cheap).
    signal_epochs: Vec<u64>,
    /// Optional creator-supplied labels, for deadlock diagnostics.
    signal_names: Vec<String>,
    /// Generation counter bumped on every wake-up decision, used by waiting
    /// threads to detect that *their* state was re-examined.
    generation: u64,
}

impl Core {
    fn live_actor_count(&self) -> usize {
        self.actors.iter().flatten().count()
    }

    /// Advance virtual time if no actor is runnable. Panics on deadlock.
    fn maybe_advance(&mut self) -> bool {
        if self.runnable > 0 || self.live_actor_count() == 0 {
            return false;
        }
        let mut min_wake: Option<u64> = None;
        for rec in self.actors.iter().flatten() {
            if let ActorState::Waiting {
                wake_at: Some(t), ..
            } = rec.state
            {
                min_wake = Some(min_wake.map_or(t, |m: u64| m.min(t)));
            }
        }
        // No pending deadline: the simulation is stuck *unless* an external
        // thread (one finishing its teardown, or a non-actor coordinator) is
        // about to bump a signal. Waiting threads detect true deadlocks via
        // a real-time grace period (see `Actor::wait_woken`).
        let target = match min_wake {
            Some(t) => t,
            None => return false,
        };
        debug_assert!(target >= self.now, "virtual time must be monotonic");
        self.now = self.now.max(target);
        let now = self.now;
        for rec in self.actors.iter_mut().flatten() {
            if let ActorState::Waiting {
                wake_at: Some(t), ..
            } = rec.state
            {
                if t <= now {
                    rec.state = ActorState::Running;
                    self.runnable += 1;
                }
            }
        }
        self.generation += 1;
        true
    }

    /// If every actor is waiting and none has a deadline, produce a
    /// diagnostic describing the deadlock; otherwise `None`.
    fn deadlock_report(&self) -> Option<String> {
        if self.runnable > 0 || self.live_actor_count() == 0 {
            return None;
        }
        let any_deadline = self.actors.iter().flatten().any(|rec| {
            matches!(
                rec.state,
                ActorState::Waiting {
                    wake_at: Some(_),
                    ..
                }
            )
        });
        if any_deadline {
            return None;
        }
        let mut report =
            String::from("vtime deadlock: every actor is waiting with no pending deadline\n");
        for rec in self.actors.iter().flatten() {
            let detail = match rec.state {
                ActorState::Waiting {
                    signal: Some((s, seen)),
                    ..
                } => format!(
                    "waiting on signal `{}` (epoch {} > {})",
                    self.signal_names.get(s).map(String::as_str).unwrap_or("?"),
                    self.signal_epochs.get(s).copied().unwrap_or(0),
                    seen
                ),
                _ => format!("{:?}", rec.state),
            };
            report.push_str(&format!("  actor `{}`: {detail}\n", rec.name));
        }
        Some(report)
    }

    /// Wake every actor currently subscribed to `signal`.
    fn bump_signal(&mut self, signal: usize) {
        self.signal_epochs[signal] += 1;
        for rec in self.actors.iter_mut().flatten() {
            if let ActorState::Waiting {
                signal: Some((s, _)),
                ..
            } = rec.state
            {
                if s == signal {
                    rec.state = ActorState::Running;
                    self.runnable += 1;
                }
            }
        }
        self.generation += 1;
    }
}

#[derive(Debug, Default)]
struct Monitor {
    core: Mutex<Core>,
    cv: Condvar,
}

/// The shared virtual clock. Cheap to clone (it is an `Arc` handle).
#[derive(Clone, Default)]
pub struct Clock {
    monitor: Arc<Monitor>,
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.monitor.core.lock();
        f.debug_struct("Clock")
            .field("now", &SimTime(core.now))
            .field("actors", &core.live_actor_count())
            .field("runnable", &core.runnable)
            .finish()
    }
}

impl Clock {
    /// Create a clock starting at [`SimTime::ZERO`] with no actors.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.monitor.core.lock().now)
    }

    /// Register a new actor. The calling thread (or the thread the handle is
    /// moved to) owns the registration; dropping the [`Actor`] deregisters it.
    ///
    /// An actor must only ever be used from one thread at a time — the handle
    /// is deliberately `!Sync`-ish in usage (all methods take `&self`, but
    /// waiting from two threads on one actor would corrupt the accounting, so
    /// the type is not `Clone`).
    pub fn actor(&self, name: impl Into<String>) -> Actor {
        let mut core = self.monitor.core.lock();
        let rec = ActorRec {
            name: name.into(),
            state: ActorState::Running,
        };
        let id = core.actors.iter().position(Option::is_none);
        let id = match id {
            Some(i) => {
                core.actors[i] = Some(rec);
                i
            }
            None => {
                core.actors.push(Some(rec));
                core.actors.len() - 1
            }
        };
        core.runnable += 1;
        Actor {
            clock: self.clone(),
            id,
        }
    }

    /// Hold virtual time still while setting up a simulation.
    ///
    /// The returned guard is itself a registered (always-runnable) actor, so
    /// the clock cannot advance until it is dropped. Spawning several actors
    /// one by one is otherwise racy: the first one may run arbitrarily far
    /// ahead before the second registers. Typical use:
    ///
    /// ```
    /// # use vtime::{Clock, SimDuration};
    /// let clock = Clock::new();
    /// let setup = clock.freeze();
    /// let a = clock.spawn("a", |a| { a.sleep(SimDuration::from_micros(1)); a.now() });
    /// let b = clock.spawn("b", |a| { a.sleep(SimDuration::from_micros(2)); a.now() });
    /// drop(setup); // both registered: release the timeline
    /// a.join().unwrap();
    /// b.join().unwrap();
    /// ```
    pub fn freeze(&self) -> Actor {
        self.actor("setup-freeze")
    }

    /// Allocate a fresh [`Signal`] on this clock.
    pub fn signal(&self) -> Signal {
        self.signal_named("anonymous")
    }

    /// Allocate a labeled [`Signal`]; the label appears in deadlock reports.
    pub fn signal_named(&self, name: impl Into<String>) -> Signal {
        let mut core = self.monitor.core.lock();
        core.signal_epochs.push(0);
        core.signal_names.push(name.into());
        Signal {
            clock: self.clone(),
            id: core.signal_epochs.len() - 1,
        }
    }

    /// Spawn a named OS thread owning a fresh actor; the closure receives a
    /// reference to the actor handle, which is also installed as the
    /// thread's *current actor* (see [`crate::with_current`]) so that code
    /// deep inside a driver can reach it without explicit plumbing.
    ///
    /// The actor is registered on the **calling** thread, before the new
    /// thread starts; combined with [`Clock::freeze`] this makes start-up
    /// deterministic.
    pub fn spawn<F, T>(&self, name: impl Into<String>, f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce(&Actor) -> T + Send + 'static,
        T: Send + 'static,
    {
        let name = name.into();
        let actor = self.actor(name.clone());
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let _guard = crate::current::install(&actor);
                f(&actor)
            })
            .expect("spawning simulation thread")
    }

    fn with_core<R>(&self, f: impl FnOnce(&mut Core) -> R) -> R {
        let mut core = self.monitor.core.lock();

        f(&mut core)
    }
}

/// A registered participant in the virtual timeline. One per simulated
/// thread. Dropping the handle deregisters the actor (and may allow time to
/// advance for the remaining ones).
pub struct Actor {
    clock: Clock,
    id: usize,
}

impl fmt::Debug for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Actor").field("id", &self.id).finish()
    }
}

impl Actor {
    /// The clock this actor belongs to.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// This actor's registered name.
    pub fn name(&self) -> String {
        self.clock.with_core(|core| {
            core.actors[self.id]
                .as_ref()
                .map(|r| r.name.clone())
                .unwrap_or_default()
        })
    }

    /// Block this thread until the virtual clock has advanced by `d`.
    /// A zero duration returns immediately without yielding.
    pub fn sleep(&self, d: SimDuration) {
        if d.0 == 0 {
            return;
        }
        let monitor = &self.clock.monitor;
        let mut core = monitor.core.lock();
        let wake_at = core.now.saturating_add(d.0);
        self.park(&mut core, Some(wake_at), None);
        self.wait_woken(&mut core);
    }

    /// Block until `signal`'s epoch exceeds `seen`; returns the new epoch.
    pub fn wait_signal(&self, signal: &Signal, seen: u64) -> u64 {
        match self.wait_inner(signal, seen, None) {
            WaitOutcome::Signaled(e) => e,
            WaitOutcome::DeadlineReached => unreachable!("no deadline was set"),
        }
    }

    /// Block until `signal`'s epoch exceeds `seen` or virtual time reaches
    /// `deadline`, whichever comes first.
    pub fn wait_signal_until(&self, signal: &Signal, seen: u64, deadline: SimTime) -> WaitOutcome {
        self.wait_inner(signal, seen, Some(deadline.0))
    }

    fn wait_inner(&self, signal: &Signal, seen: u64, deadline: Option<u64>) -> WaitOutcome {
        assert!(
            Arc::ptr_eq(&self.clock.monitor, &signal.clock.monitor),
            "signal and actor belong to different clocks"
        );
        let monitor = &self.clock.monitor;
        let mut core = monitor.core.lock();
        loop {
            let epoch = core.signal_epochs[signal.id];
            if epoch > seen {
                return WaitOutcome::Signaled(epoch);
            }
            if let Some(d) = deadline {
                if core.now >= d {
                    return WaitOutcome::DeadlineReached;
                }
            }
            self.park(&mut core, deadline, Some((signal.id, seen)));
            self.wait_woken(&mut core);
        }
    }

    /// Wait (on the real condvar) until this actor has been woken. Detects
    /// simulation deadlocks with a real-time grace period: if after
    /// [`DEADLOCK_GRACE`] of wall-clock silence every actor is still waiting
    /// with no deadline in sight, panic with a per-actor report rather than
    /// hanging forever. The grace period tolerates threads that are between
    /// deregistering their actor and releasing resources (e.g. dropping the
    /// sending half of a mailbox during teardown).
    fn wait_woken(&self, core: &mut mad_util::sync::MutexGuard<'_, Core>) {
        while matches!(
            core.actors[self.id].as_ref().map(|r| &r.state),
            Some(ActorState::Waiting { .. })
        ) {
            let timed_out = self
                .clock
                .monitor
                .cv
                .wait_for(core, DEADLOCK_GRACE)
                .timed_out();
            if timed_out {
                if let Some(report) = core.deadlock_report() {
                    panic!("{report}");
                }
            }
        }
    }

    /// Transition to Waiting and let the clock advance if that made every
    /// actor idle. Must be called with the core lock held; leaves it held.
    fn park(&self, core: &mut Core, wake_at: Option<u64>, signal: Option<(usize, u64)>) {
        let rec = core.actors[self.id]
            .as_mut()
            .expect("actor used after deregistration");
        debug_assert!(
            matches!(rec.state, ActorState::Running),
            "actor parked twice"
        );
        rec.state = ActorState::Waiting { wake_at, signal };
        core.runnable -= 1;
        if core.maybe_advance() {
            self.clock.monitor.cv.notify_all();
        }
    }
}

impl Drop for Actor {
    fn drop(&mut self) {
        let monitor = &self.clock.monitor;
        let mut core = monitor.core.lock();
        if let Some(rec) = core.actors[self.id].take() {
            if matches!(rec.state, ActorState::Running) {
                core.runnable -= 1;
            }
            if core.maybe_advance() {
                monitor.cv.notify_all();
            }
        }
    }
}

/// A monotonically increasing epoch counter used to build cancellable waits.
///
/// Cloning yields another handle to the same counter.
#[derive(Clone)]
pub struct Signal {
    clock: Clock,
    id: usize,
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signal")
            .field("id", &self.id)
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Signal {
    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.clock.monitor.core.lock().signal_epochs[self.id]
    }

    /// Increment the epoch and wake every actor waiting on this signal.
    pub fn bump(&self) {
        let monitor = &self.clock.monitor;
        let mut core = monitor.core.lock();
        core.bump_signal(self.id);
        monitor.cv.notify_all();
    }
}
