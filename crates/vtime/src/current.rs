//! Thread-local "current actor" registry.
//!
//! Simulated device models (PCI buses, links) need the [`Actor`] of the
//! thread that invokes them, but the portable communication-library code in
//! between is deliberately ignorant of virtual time. Installing the actor in
//! thread-local storage lets the bottom layer recover it without threading a
//! handle through every intermediate API.
//!
//! [`Clock::spawn`](crate::Clock::spawn) installs the actor automatically;
//! manual threads can use [`install`] directly.

use std::cell::Cell;

use crate::clock::Actor;

thread_local! {
    static CURRENT: Cell<*const Actor> = const { Cell::new(std::ptr::null()) };
}

/// RAII guard restoring the previously installed actor on drop.
pub struct CurrentGuard {
    previous: *const Actor,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

/// Install `actor` as this thread's current actor for the guard's lifetime.
///
/// The caller must keep `actor` alive (and on this thread) until the guard is
/// dropped; the borrow makes that the natural shape:
///
/// ```
/// # use vtime::{Clock, SimDuration};
/// let clock = Clock::new();
/// let actor = clock.actor("manual");
/// let _guard = vtime::install(&actor);
/// vtime::with_current(|a| a.sleep(SimDuration::from_micros(1)));
/// assert_eq!(clock.now().as_nanos(), 1_000);
/// ```
pub fn install(actor: &Actor) -> CurrentGuard {
    let previous = CURRENT.with(|c| c.replace(actor as *const Actor));
    CurrentGuard { previous }
}

/// True if this thread has a current actor (i.e. runs under a virtual clock).
pub fn has_current() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Run `f` with this thread's current actor.
///
/// # Panics
///
/// Panics if no actor is installed; simulated drivers must only be driven
/// from clock-registered threads.
pub fn with_current<R>(f: impl FnOnce(&Actor) -> R) -> R {
    let ptr = CURRENT.with(|c| c.get());
    assert!(
        !ptr.is_null(),
        "vtime::with_current called on a thread with no installed actor; \
         simulated components must run on Clock::spawn'ed threads"
    );
    // SAFETY: `install` stored a pointer to an Actor that its caller keeps
    // alive for the guard's lifetime, and the guard clears/restores the slot
    // on drop. The pointer never leaves this thread.
    f(unsafe { &*ptr })
}
