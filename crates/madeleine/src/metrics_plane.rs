//! The live telemetry plane: one [`mad_metrics::Registry`] per node,
//! wired into the hot paths of the forwarding engines, plus the in-band
//! machinery that makes every node's metrics visible to every other node
//! *while the session runs*.
//!
//! Three cooperating pieces live here:
//!
//! * **[`MetricsPlane`]** — the per-(virtual channel, node) hub. It owns
//!   the node's [`Registry`] handle, serves kind-10 metrics-pull requests
//!   ([`crate::gtm`]) arriving on the node's special conduits, forwards
//!   in-transit pull packets along the routing table (so a pull crosses
//!   gateways exactly like any forwarded message), and collects replies
//!   for a local [`MetricsPlane::pull`] caller. On gateway nodes the
//!   engine's own polling threads hand kind-10 packets to the plane; on
//!   endpoint nodes a small responder thread drains the special conduits
//!   (depositing credit grants and cancels into the shared ledger on the
//!   way, and parking handoff acks in a side table so the multi-path
//!   writer's ack wait still sees them).
//!
//! * **Health watchdogs** — one per gateway node per channel, in both
//!   engine cores (a dedicated thread in [`EngineKind::Threaded`], a
//!   [`PollTask`] on the node's shared reactor in
//!   [`EngineKind::Reactor`]). Each tick takes a windowed
//!   [`GatewayStats::delta_for`] snapshot on its own cursor and turns
//!   threshold breaches into typed `health:` trace events plus
//!   registry counters: credit starvation, queue saturation, stalled
//!   streams, dead-path flapping.
//!
//! * **Exposition** — an optional per-node sampler thread dumping
//!   Prometheus-style text and CSV at a fixed interval, and
//!   [`flush_snapshot_to_trace`], which folds a final snapshot into the
//!   session trace on `metrics:` tracks (validated by `trace_check
//!   --require-metrics`).
//!
//! Recording stays lock-free: the plane only touches locks at wiring
//! time (handle interning), pull time, and sampling time — never on a
//! per-packet path.
//!
//! [`EngineKind::Threaded`]: crate::gateway::EngineKind::Threaded
//! [`EngineKind::Reactor`]: crate::gateway::EngineKind::Reactor
//! [`GatewayStats::delta_for`]: crate::gateway::GatewayStats::delta_for
//! [`PollTask`]: mad_util::reactor::PollTask

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use mad_metrics::{Counter, Gauge, Hist, Registry, Snapshot};
use mad_trace::Tracer;
use mad_util::reactor::{Context, Poll, PollTask};
use mad_util::sync::Mutex;

use crate::channel::Channel;
use crate::credit::CreditLedger;
use crate::error::{MadError, Result};
use crate::gateway::{DeltaCursor, GatewayStats, GatewayStop};
use crate::gtm::{self, PacketBody, StreamKey, StreamTag};
use crate::multipath::MultiPath;
use crate::routing::RouteTable;
use crate::runtime::{RtEvent, Runtime};
use crate::types::{NetworkId, NodeId};

/// Per-virtual-channel telemetry configuration
/// ([`crate::session::VcOptions::metrics`]). The default enables the
/// watchdog with its default thresholds and no file exposition.
#[derive(Debug, Clone)]
pub struct MetricsOptions {
    /// Health watchdog thresholds; `None` disables the watchdog (the
    /// registry and in-band pull still run).
    pub watchdog: Option<WatchdogConfig>,
    /// Directory the per-node sampler dumps Prometheus-style text and
    /// CSV exposition into (`mad-metrics-node<rank>.prom` / `.csv`,
    /// rewritten every interval). `None` disables the sampler thread.
    pub dump_dir: Option<std::path::PathBuf>,
    /// Sampler rewrite interval in nanoseconds (0 picks the 5 ms
    /// default). Only read when `dump_dir` is set.
    pub sample_interval_ns: u64,
}

impl Default for MetricsOptions {
    fn default() -> Self {
        Self {
            watchdog: Some(WatchdogConfig::default()),
            dump_dir: None,
            sample_interval_ns: 0,
        }
    }
}

impl MetricsOptions {
    /// The effective sampler interval (5 ms unless overridden).
    pub fn effective_sample_interval_ns(&self) -> u64 {
        if self.sample_interval_ns == 0 {
            5_000_000
        } else {
            self.sample_interval_ns
        }
    }
}

/// Thresholds of one gateway health watchdog (DESIGN §13.4).
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Evaluation tick interval in nanoseconds.
    pub interval_ns: u64,
    /// Minimum backpressure stalls in a window before queue saturation
    /// is even considered (filters one-off blips).
    pub saturation_min_stalls: u64,
    /// Stall fraction `stalls / (stalls + fragments)` at or above which
    /// a window counts as queue saturation.
    pub saturation_stall_ratio: f64,
    /// Consecutive zero-progress ticks (open streams but no fragments
    /// and no messages) before a stalled stream is reported.
    pub stalled_stream_ticks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval_ns: 5_000_000,
            saturation_min_stalls: 8,
            saturation_stall_ratio: 0.75,
            stalled_stream_ticks: 2,
        }
    }
}

/// Cached hot-path metric handles of one gateway engine, cloned into
/// every `FwdShared`. Absent (engine-wide) when the channel runs without
/// a telemetry plane, which keeps the metrics-off fast path free of even
/// the atomic adds.
#[derive(Clone)]
pub(crate) struct GwMetrics {
    /// Receive→retransmit latency of forwarded fragments.
    pub(crate) forward_ns: Hist,
    /// Time spent blocked waiting for an outbound credit.
    pub(crate) credit_wait_ns: Hist,
    /// Sizes of relay copies, wherever the copy-placement scheduler put
    /// them (receive- and flush-placed alike).
    pub(crate) copy_bytes: Hist,
    /// Packets resident in the engine's outbound pipeline queues.
    pub(crate) queue_depth: Gauge,
    /// The node's plane, for in-band kind-10 handling inside
    /// `relay_packet`.
    pub(crate) plane: Arc<MetricsPlane>,
}

impl GwMetrics {
    pub(crate) fn new(plane: Arc<MetricsPlane>) -> Self {
        let r = plane.registry();
        GwMetrics {
            forward_ns: r.histogram("gw_forward_ns"),
            credit_wait_ns: r.histogram("credit_wait_ns"),
            copy_bytes: r.histogram("gw_copy_bytes"),
            queue_depth: r.gauge("queue_depth"),
            plane,
        }
    }
}

/// Reply collection state of the current in-band pull.
#[derive(Default)]
struct HubState {
    /// Sequence number of the pull in flight (replies carrying any other
    /// id are stale and dropped).
    seq: u32,
    replies: BTreeMap<NodeId, Snapshot>,
}

/// The per-(virtual channel, node) telemetry hub: the node's registry
/// plus the in-band pull endpoint riding the channel's special conduits.
pub struct MetricsPlane {
    rank: NodeId,
    registry: Arc<Registry>,
    routes: RouteTable,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    /// The node's arrival event: reply deposits bump it so a blocked
    /// [`MetricsPlane::pull`] wakes.
    event: Arc<dyn RtEvent>,
    runtime: Arc<dyn Runtime>,
    next_pull: AtomicU32,
    hub: Mutex<HubState>,
    /// Handoff acks consumed by the responder thread on behalf of a
    /// multi-path writer (see [`crate::vchannel`]'s ack wait).
    acks: Mutex<BTreeSet<StreamKey>>,
    /// Gateway engines feeding this node's live gauges.
    feeds: Mutex<Vec<Arc<GatewayStats>>>,
    /// The channel's multi-path plane, for per-path stripe-byte gauges.
    mp: Mutex<Option<Arc<MultiPath>>>,
    // Cached refresh handles (interned once at wiring time).
    rt_threads: Gauge,
    pool_gets: Gauge,
    pool_hits: Gauge,
    pool_misses: Gauge,
    gw_held: Gauge,
    gw_open: Gauge,
    gw_bps: Gauge,
}

impl std::fmt::Debug for MetricsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsPlane")
            .field("rank", &self.rank)
            .field("nets", &self.special.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MetricsPlane {
    /// Build the plane of one node on one virtual channel (session
    /// bootstrap). `registry` is the *node's* registry, shared across
    /// the node's channels; `routes`/`special` are this node's own view
    /// of the channel, so pulls route exactly like forwarded messages.
    pub(crate) fn new(
        rank: NodeId,
        registry: Arc<Registry>,
        routes: RouteTable,
        special: BTreeMap<NetworkId, Arc<Channel>>,
        event: Arc<dyn RtEvent>,
        runtime: Arc<dyn Runtime>,
    ) -> Arc<Self> {
        // Intern the standard instruments eagerly so even an idle node's
        // snapshot exposes the full schema.
        registry.counter("degradations");
        Arc::new(MetricsPlane {
            rank,
            rt_threads: registry.gauge("rt_threads_spawned"),
            pool_gets: registry.gauge("pool_gets"),
            pool_hits: registry.gauge("pool_hits"),
            pool_misses: registry.gauge("pool_misses"),
            gw_held: registry.gauge("gw_held_bytes"),
            gw_open: registry.gauge("open_streams"),
            gw_bps: registry.gauge("gw_bytes_per_sec"),
            registry,
            routes,
            special,
            event,
            runtime,
            next_pull: AtomicU32::new(1),
            hub: Mutex::new(HubState::default()),
            acks: Mutex::new(BTreeSet::new()),
            feeds: Mutex::new(Vec::new()),
            mp: Mutex::new(None),
        })
    }

    /// The node's local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The node's live registry (shared with every instrumented
    /// subsystem of the node).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Register a gateway engine whose stats feed the live gauges.
    pub(crate) fn register_gateway(&self, stats: &Arc<GatewayStats>) {
        self.feeds.lock().push(stats.clone());
    }

    /// Register the channel's multi-path plane (per-path stripe gauges).
    pub(crate) fn register_multipath(&self, mp: &Arc<MultiPath>) {
        *self.mp.lock() = Some(mp.clone());
    }

    /// Refresh the sampled gauges that mirror other subsystems: runtime
    /// thread count (live, not just at teardown), pool hit/miss
    /// counters, gateway occupancy and throughput (on the metrics
    /// plane's *own* delta cursor, so the multi-path selector's windows
    /// are untouched), and per-path stripe bytes.
    pub fn refresh_live(&self) {
        self.rt_threads.set(self.runtime.threads_spawned() as i64);
        let ps = self.runtime.pool().stats();
        self.pool_gets.set(ps.gets as i64);
        self.pool_hits.set(ps.hits as i64);
        self.pool_misses.set(ps.misses as i64);
        let now = self.runtime.now_nanos();
        let mut held = 0i64;
        let mut open = 0i64;
        let mut bps = 0f64;
        for stats in self.feeds.lock().iter() {
            let d = stats.delta_for(DeltaCursor::Metrics, now);
            held += d.occupancy_bytes;
            bps += d.bytes_per_sec;
            open += stats.open_streams();
        }
        self.gw_held.set(held);
        self.gw_open.set(open);
        self.gw_bps.set(bps as i64);
        if let Some(mp) = self.mp.lock().as_ref() {
            for (gw, bytes) in mp.path_bytes() {
                self.registry
                    .gauge(&format!("stripe_path_bytes_gw{gw}"))
                    .set(bytes as i64);
            }
        }
    }

    /// Refresh the sampled gauges and snapshot the whole registry.
    pub fn local_snapshot(&self) -> Snapshot {
        self.refresh_live();
        self.registry.snapshot()
    }

    /// Pull the live snapshot of every node in `targets` over the
    /// channel itself — requests and replies travel as kind-10 GTM
    /// control packets on the existing special conduits, crossing
    /// gateways along the ordinary routing table. Returns whatever
    /// arrived by the deadline (partial on timeout; the local node is
    /// always present when listed). One pull at a time per node: a
    /// newer pull retires the previous one's outstanding replies.
    pub fn pull(&self, targets: &[NodeId], timeout_ns: u64) -> BTreeMap<NodeId, Snapshot> {
        let seq = self.next_pull.fetch_add(1, Ordering::Relaxed);
        {
            let mut hub = self.hub.lock();
            hub.seq = seq;
            hub.replies.clear();
        }
        let mut out = BTreeMap::new();
        let mut want = 0usize;
        for &t in targets {
            if t == self.rank {
                out.insert(t, self.local_snapshot());
                continue;
            }
            let tag = StreamTag {
                src: self.rank,
                dest: t,
                msg_id: seq,
            };
            let pkt = gtm::encode_metrics_request(&tag);
            if self.send_toward(t, &pkt).is_ok() {
                want += 1;
            }
        }
        let deadline = self.runtime.now_nanos().saturating_add(timeout_ns);
        loop {
            let seen = self.event.epoch();
            if self.hub.lock().replies.len() >= want {
                break;
            }
            let now = self.runtime.now_nanos();
            if now >= deadline {
                break;
            }
            let _ = self.event.wait_past_timeout(seen, deadline - now);
        }
        let mut hub = self.hub.lock();
        if hub.seq == seq {
            out.append(&mut hub.replies);
        }
        out
    }

    /// Handle one kind-10 packet that arrived on a special conduit:
    /// serve a request addressed here, deposit a reply addressed here,
    /// or relay an in-transit pull toward its destination. Errors are
    /// swallowed — telemetry must never take a data path down.
    pub(crate) fn handle_packet(&self, tag: &StreamTag, body: &PacketBody, packet: &[u8]) {
        if tag.dest != self.rank {
            let _ = self.send_toward(tag.dest, packet);
            return;
        }
        match body {
            PacketBody::MetricsRequest => self.serve_request(tag),
            PacketBody::MetricsReply => self.deposit_reply(tag, gtm::metrics_payload(packet)),
            _ => {}
        }
    }

    /// Answer a pull request: encode the local snapshot within the
    /// kind-10 payload budget and route the reply back to the requester.
    fn serve_request(&self, req: &StreamTag) {
        let snap = self.local_snapshot();
        let mut payload = Vec::new();
        snap.encode_into(&mut payload, gtm::METRICS_MAX);
        let reply_tag = StreamTag {
            src: self.rank,
            dest: req.src,
            msg_id: req.msg_id,
        };
        let pkt = gtm::encode_metrics_reply(&reply_tag, &payload);
        let _ = self.send_toward(req.src, &pkt);
    }

    /// File a reply under the pull it answers (stale ids are dropped)
    /// and wake the waiting puller.
    fn deposit_reply(&self, tag: &StreamTag, payload: &[u8]) {
        let Ok(snap) = Snapshot::decode(payload) else {
            return;
        };
        {
            let mut hub = self.hub.lock();
            if hub.seq == tag.msg_id {
                hub.replies.insert(tag.src, snap);
            }
        }
        self.event.bump();
    }

    /// Send one verbatim packet toward `dest` along the routing table.
    fn send_toward(&self, dest: NodeId, packet: &[u8]) -> Result<()> {
        let hop = self.routes.hop(dest)?;
        let ch = self
            .special
            .get(&hop.net)
            .ok_or(MadError::Unroutable(dest))?;
        ch.send_packet(hop.node, &[packet])
    }

    /// Park a handoff ack consumed off a special conduit by a reader
    /// other than the multi-path writer waiting for it.
    pub(crate) fn deposit_ack(&self, key: StreamKey) {
        self.acks.lock().insert(key);
        self.event.bump();
    }

    /// Claim a parked handoff ack, if one arrived for `key`.
    pub(crate) fn take_ack(&self, key: StreamKey) -> bool {
        self.acks.lock().remove(&key)
    }
}

/// The endpoint-side responder: on non-gateway nodes nothing drains the
/// special conduits between writer pumps, so arriving pull requests (and
/// replies to this node's own pulls) would sit unread. This loop drains
/// whatever shows up — credit grants and cancels go into the shared
/// ledger exactly as the writer pump would deposit them, handoff acks
/// are parked in the metrics plane's side table for the multi-path
/// writer, kind-10 packets go to the metrics plane and kind-11 packets
/// to the membership plane (either may be absent — a channel can enable
/// one control plane without the other). Exits when the session's stop
/// coordinator fires (teardown bumps the node event).
pub(crate) fn run_responder(
    runtime: Arc<dyn Runtime>,
    event: Arc<dyn RtEvent>,
    channels: Vec<Arc<Channel>>,
    ledger: Arc<CreditLedger>,
    stop: Arc<GatewayStop>,
    metrics: Option<Arc<MetricsPlane>>,
    member: Option<Arc<crate::membership::MembershipPlane>>,
) {
    loop {
        let seen = event.epoch();
        let mut any = true;
        while any {
            any = false;
            for ch in &channels {
                let peers: Vec<NodeId> = ch.peers().collect();
                for peer in peers {
                    let Ok(mut conduit) = ch.lock_conduit(peer) else {
                        continue;
                    };
                    if !conduit.ready() {
                        continue;
                    }
                    let Ok(raw) = conduit.recv_owned() else {
                        continue;
                    };
                    drop(conduit);
                    let packet = runtime.pool().adopt(raw);
                    ch.stats().on_recv(peer.0, packet.len());
                    any = true;
                    let Ok((tag, body)) = gtm::decode_packet(&packet) else {
                        continue;
                    };
                    match body {
                        PacketBody::Credit(n) => ledger.deposit(tag.key(), n),
                        // A rendezvous CTS is the whole-window grant the
                        // blocked writer's `wait_grant` is parked on.
                        PacketBody::RendezvousCts(m) => ledger.grant(tag.key(), m.window),
                        PacketBody::Cancel(reason) => ledger.cancel(tag.key(), reason),
                        PacketBody::Ack => {
                            if let Some(plane) = &metrics {
                                plane.deposit_ack(tag.key());
                            }
                        }
                        PacketBody::MetricsRequest | PacketBody::MetricsReply => {
                            if let Some(plane) = &metrics {
                                plane.handle_packet(&tag, &body, &packet);
                            }
                        }
                        PacketBody::Member(_) => {
                            if let Some(plane) = &member {
                                plane.handle_packet(&tag, &body, &packet);
                            }
                        }
                        // Streams never arrive on an endpoint's special
                        // conduit inbound side; drop anything else.
                        _ => {}
                    }
                }
            }
        }
        if stop.stop_requested() {
            return;
        }
        event.wait_past(seen);
    }
}

/// Health event names, in the fixed order the watchdog's counters use.
const HEALTH_NAMES: [&str; 4] = [
    "credit_starvation",
    "queue_saturation",
    "stalled_stream",
    "dead_path_flap",
];

/// One gateway node's health evaluator: turns windowed stat deltas into
/// typed `health:` trace events and registry counters. Shared by both
/// engine cores — only the driving loop differs.
pub(crate) struct Watchdog {
    cfg: WatchdogConfig,
    stats: Arc<GatewayStats>,
    mp: Option<Arc<MultiPath>>,
    tracer: Tracer,
    /// The `health:{vc}@{rank}` trace track.
    track: String,
    counters: [Counter; 4],
    degradations: Counter,
    /// Consecutive zero-progress ticks with streams open.
    idle_ticks: u32,
    /// Selector failovers + deaths at the previous tick.
    prev_flap: u64,
}

impl Watchdog {
    pub(crate) fn new(
        cfg: WatchdogConfig,
        stats: Arc<GatewayStats>,
        mp: Option<Arc<MultiPath>>,
        registry: &Registry,
        tracer: Tracer,
        track: String,
    ) -> Self {
        let counters = [
            registry.counter("health_credit_starvation"),
            registry.counter("health_queue_saturation"),
            registry.counter("health_stalled_stream"),
            registry.counter("health_dead_path_flap"),
        ];
        Watchdog {
            cfg,
            stats,
            mp,
            tracer,
            track,
            counters,
            degradations: registry.counter("degradations"),
            idle_ticks: 0,
            prev_flap: 0,
        }
    }

    pub(crate) fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    fn fire(&self, which: usize, n: u64) {
        self.tracer
            .count_on(&self.track, "health", HEALTH_NAMES[which], n as i64, &[]);
        self.counters[which].add(n);
        self.degradations.add(n);
    }

    /// Evaluate one window ending `now`.
    pub(crate) fn tick(&mut self, now_ns: u64) {
        let d = self.stats.delta_for(DeltaCursor::Watchdog, now_ns);
        // Credit starvation: the outbound side hit its credit deadline
        // (each hit already cancelled a stream).
        if d.credit_timeouts > 0 {
            self.fire(0, d.credit_timeouts);
        }
        // Queue saturation: nearly every handoff in a busy window found
        // the pipeline full.
        let attempts = d.stalls + d.fragments;
        if d.stalls >= self.cfg.saturation_min_stalls
            && attempts > 0
            && d.stalls as f64 / attempts as f64 >= self.cfg.saturation_stall_ratio
        {
            self.fire(1, 1);
        }
        // Stalled stream: accepted streams are open but the window moved
        // no fragments and finished no messages — the upstream or
        // downstream side went quiet mid-stream. Fires once per episode
        // (on the tick crossing the threshold), not on every idle tick.
        if self.stats.open_streams() > 0 && d.fragments == 0 && d.messages == 0 {
            self.idle_ticks = self.idle_ticks.saturating_add(1);
            if self.idle_ticks == self.cfg.stalled_stream_ticks {
                self.fire(2, 1);
            }
        } else {
            self.idle_ticks = 0;
        }
        // Dead-path flap: the multi-path selector failed streams over or
        // declared gateways dead since the previous tick.
        if let Some(mp) = &self.mp {
            let c = mp.counters();
            let flap = c.failovers + c.deaths;
            let delta = flap.saturating_sub(self.prev_flap);
            if delta > 0 {
                self.fire(3, delta);
            }
            self.prev_flap = flap;
        }
    }
}

/// The threaded engine's watchdog driver: a dedicated runtime thread
/// ticking at the configured interval, woken early by teardown bumps of
/// the node event. Teardown gets one final evaluation so a fault that
/// lands between the last tick and the stop request is still reported.
pub(crate) fn run_watchdog(
    mut wd: Watchdog,
    runtime: Arc<dyn Runtime>,
    event: Arc<dyn RtEvent>,
    stop: Arc<GatewayStop>,
) {
    let mut next = runtime.now_nanos().saturating_add(wd.interval_ns());
    loop {
        let seen = event.epoch();
        if stop.stop_requested() {
            wd.tick(runtime.now_nanos());
            return;
        }
        let now = runtime.now_nanos();
        if now >= next {
            wd.tick(now);
            next = now.saturating_add(wd.interval_ns());
        }
        let wait = next.saturating_sub(runtime.now_nanos()).max(1);
        let _ = event.wait_past_timeout(seen, wait);
    }
}

/// The reactor engine's watchdog driver: the same evaluator as a timer
/// task on the gateway node's shared worker pool — zero extra threads,
/// matching the reactor core's whole point.
pub(crate) struct WatchdogTask {
    wd: Watchdog,
    stop: Arc<GatewayStop>,
    next: u64,
}

impl WatchdogTask {
    pub(crate) fn new(wd: Watchdog, stop: Arc<GatewayStop>) -> Self {
        WatchdogTask { wd, stop, next: 0 }
    }
}

impl PollTask for WatchdogTask {
    fn poll(&mut self, cx: &mut Context) -> Poll {
        if self.stop.stop_requested() {
            // Final window: report faults that landed since the last tick.
            self.wd.tick(cx.now_ns());
            return Poll::Ready;
        }
        let now = cx.now_ns();
        if self.next == 0 {
            self.next = now.saturating_add(self.wd.interval_ns());
        }
        if now >= self.next {
            self.wd.tick(now);
            self.next = now.saturating_add(self.wd.interval_ns());
        }
        cx.wake_at(self.next);
        Poll::Pending
    }
}

/// The per-node sampler: rewrites Prometheus-style and CSV exposition
/// files at a fixed interval until the session stops, then once more on
/// the way out (so short runs still leave a dump). Best-effort I/O —
/// an unwritable directory degrades to a no-op, never an engine fault.
pub(crate) fn run_sampler(
    plane: Arc<MetricsPlane>,
    dir: std::path::PathBuf,
    interval_ns: u64,
    stop: Arc<GatewayStop>,
) {
    let _ = std::fs::create_dir_all(&dir);
    let rank = plane.rank().0;
    let prom_path = dir.join(format!("mad-metrics-node{rank}.prom"));
    let csv_path = dir.join(format!("mad-metrics-node{rank}.csv"));
    let node_label = format!("{rank}");
    let dump = |plane: &MetricsPlane| {
        let snap = plane.local_snapshot();
        let mut prom = String::new();
        snap.render_prometheus(&mut prom, &[("node", &node_label)]);
        let mut csv = String::new();
        snap.render_csv(&mut csv);
        let _ = std::fs::write(&prom_path, prom);
        let _ = std::fs::write(&csv_path, csv);
    };
    loop {
        let seen = plane.event.epoch();
        if stop.stop_requested() {
            dump(&plane);
            return;
        }
        dump(&plane);
        let _ = plane.event.wait_past_timeout(seen, interval_ns.max(1));
    }
}

/// Scalar metric names the teardown trace flush recognizes. Dynamic or
/// application-defined registry entries are exposed through snapshots
/// and the samplers, but only this fixed schema reaches the trace
/// (trace event names must be static; `mad-trace` schema validation
/// enforces the same list).
const SCALAR_TRACE_NAMES: &[&str] = &[
    "degradations",
    "health_credit_starvation",
    "health_queue_saturation",
    "health_stalled_stream",
    "health_dead_path_flap",
    "queue_depth",
    "rt_threads_spawned",
    "pool_gets",
    "pool_hits",
    "pool_misses",
    "gw_held_bytes",
    "gw_bytes_per_sec",
    "open_streams",
];

/// Quantile-event names per known histogram, in
/// (p50, p90, p99, max, count) order.
const HIST_TRACE_NAMES: &[(&str, [&str; 5])] = &[
    (
        "gw_forward_ns",
        [
            "gw_forward_ns_p50",
            "gw_forward_ns_p90",
            "gw_forward_ns_p99",
            "gw_forward_ns_max",
            "gw_forward_ns_count",
        ],
    ),
    (
        "credit_wait_ns",
        [
            "credit_wait_ns_p50",
            "credit_wait_ns_p90",
            "credit_wait_ns_p99",
            "credit_wait_ns_max",
            "credit_wait_ns_count",
        ],
    ),
    (
        "reactor_poll_ns",
        [
            "reactor_poll_ns_p50",
            "reactor_poll_ns_p90",
            "reactor_poll_ns_p99",
            "reactor_poll_ns_max",
            "reactor_poll_ns_count",
        ],
    ),
    (
        "gw_copy_bytes",
        [
            "gw_copy_bytes_p50",
            "gw_copy_bytes_p90",
            "gw_copy_bytes_p99",
            "gw_copy_bytes_max",
            "gw_copy_bytes_count",
        ],
    ),
];

fn static_scalar_name(name: &str) -> Option<&'static str> {
    SCALAR_TRACE_NAMES.iter().copied().find(|n| *n == name)
}

/// Fold one node's final snapshot into the session trace on a
/// `metrics:` track: counters and gauges as-is, histograms as derived
/// quantiles, per-path stripe gauges folded into one event family keyed
/// by a `gateway` arg.
pub(crate) fn flush_snapshot_to_trace(snap: &Snapshot, tracer: &Tracer, track: &str) {
    for (name, v) in &snap.counters {
        if let Some(n) = static_scalar_name(name) {
            tracer.count_on(track, "metrics", n, *v as i64, &[]);
        }
    }
    for (name, v, peak) in &snap.gauges {
        if let Some(rest) = name.strip_prefix("stripe_path_bytes_gw") {
            if let Ok(gw) = rest.parse::<u64>() {
                tracer.count_on(
                    track,
                    "metrics",
                    "stripe_path_bytes",
                    *v,
                    &[("gateway", gw)],
                );
            }
            continue;
        }
        if let Some(n) = static_scalar_name(name) {
            tracer.count_on(track, "metrics", n, *v, &[]);
        }
        if name == "queue_depth" {
            tracer.count_on(track, "metrics", "queue_depth_peak", *peak, &[]);
        }
    }
    for (name, h) in &snap.hists {
        let Some((_, names)) = HIST_TRACE_NAMES.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let values = [
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.max,
            h.count(),
        ];
        for (n, v) in names.iter().zip(values) {
            tracer.count_on(track, "metrics", n, v as i64, &[]);
        }
    }
}
