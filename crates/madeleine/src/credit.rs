//! Hop-by-hop credit accounting for gateway flow control.
//!
//! The paper's §4 names "some sophisticated bandwidth control mechanism" as
//! future work: without one, a gateway whose outbound network is slower
//! than its inbound one buffers an entire message. This module implements
//! the classic link-level answer (credit/buffer accounting, as in the
//! APENet-style interconnects of the related work): every *fragment* sent
//! toward a gateway consumes one credit from a per-stream window, and the
//! gateway returns one credit upstream each time it finishes
//! *retransmitting* a fragment. Fragments resident in a gateway are
//! therefore bounded by `window` per stream — occupancy becomes
//! `window × MTU` instead of message size — while a window larger than the
//! pipeline depth keeps the retransmission overlap intact.
//!
//! One [`CreditLedger`] exists per (virtual channel, node) and is shared by
//! everything on that node that participates in flow control:
//!
//! * application writers ([`WriterFlow`]) consume credits before each
//!   fragment and deposit grants arriving on their outbound conduit;
//! * the gateway engine's polling threads deposit grants they receive
//!   (credits for relayed streams *and* for streams originated by
//!   gateway-resident writers arrive interleaved on the same special
//!   conduits);
//! * the engine's forwarding side consumes credits before retransmitting
//!   on a non-final hop.
//!
//! The ledger is also the node-local cancellation bus: when a stream dies
//! (unreachable peer, credit timeout), [`CreditLedger::cancel`] marks it
//! and wakes every waiter, which then surfaces a typed
//! [`MadError`](crate::error::MadError) instead of blocking forever.
//!
//! All waits are deadline-bounded through
//! [`RtEvent::wait_past_timeout`](crate::runtime::RtEvent), so a silently
//! dead peer degrades into an error, never a hang.

use std::collections::HashMap;
use std::sync::Arc;

use mad_util::sync::Mutex;

use crate::channel::Channel;
use crate::error::{MadError, Result};
use crate::gtm::{self, CancelReason, PacketBody, StreamKey, StreamTag};
use crate::runtime::{RtEvent, Runtime};
use crate::types::NodeId;

/// One stream's window state.
#[derive(Debug, Default)]
struct Entry {
    available: u64,
    cancelled: Option<CancelReason>,
    /// A whole-window rendezvous grant (kind-12 CTS) parked for the
    /// writer to claim, separate from `available` so per-fragment eager
    /// takes never consume a grant that a rendezvous block is waiting on.
    grant: Option<u32>,
}

/// Outcome of claiming a parked rendezvous grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The receiver's CTS arrived: this many fragments are prepaid.
    Granted(u32),
    /// No CTS yet (or the stream is unknown): wait.
    Pending,
    /// The stream was cancelled; stop sending and surface the reason.
    Cancelled(CancelReason),
}

/// Outcome of a non-blocking credit take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeOutcome {
    /// One credit consumed.
    Taken,
    /// The window is exhausted (or the stream unknown): wait for a grant.
    Empty,
    /// The stream was cancelled; stop sending and surface the reason.
    Cancelled(CancelReason),
}

/// Why a blocking credit take gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeFailure {
    /// No grant arrived within the deadline.
    Timeout,
    /// The stream was cancelled while waiting.
    Cancelled(CancelReason),
}

/// Per-node credit accounts, keyed by stream. See the module docs.
pub struct CreditLedger {
    state: Mutex<HashMap<StreamKey, Entry>>,
    event: Arc<dyn RtEvent>,
}

impl std::fmt::Debug for CreditLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CreditLedger")
            .field("streams", &self.state.lock().len())
            .finish()
    }
}

impl CreditLedger {
    /// A ledger whose waiters block on `event`. Sessions pass the node's
    /// shared arrival event, so one wait covers both "a credit was
    /// deposited" and "a packet arrived on some conduit" — a writer
    /// pumping its own conduit needs exactly that disjunction.
    pub fn new(event: Arc<dyn RtEvent>) -> Arc<Self> {
        Arc::new(CreditLedger {
            state: Mutex::new(HashMap::new()),
            event,
        })
    }

    /// The event waiters block on (bumped by deposits and cancels).
    pub fn event(&self) -> &Arc<dyn RtEvent> {
        &self.event
    }

    /// Open a stream's account with its initial self-granted window.
    pub fn open(&self, key: StreamKey, window: u32) {
        self.state.lock().insert(
            key,
            Entry {
                available: window as u64,
                cancelled: None,
                grant: None,
            },
        );
    }

    /// Drop a stream's account (normal end or after its cancellation has
    /// been fully handled). Unknown keys are fine.
    pub fn close(&self, key: StreamKey) {
        self.state.lock().remove(&key);
    }

    /// Deposit `n` granted credits. Grants for unknown (already closed)
    /// streams are dropped — a late credit from a drained hop is harmless.
    pub fn deposit(&self, key: StreamKey, n: u32) {
        let mut st = self.state.lock();
        if let Some(e) = st.get_mut(&key) {
            e.available += n as u64;
            drop(st);
            self.event.bump();
        }
    }

    /// Park a rendezvous grant (kind-12 CTS) for the stream's writer.
    /// Multiple grants accumulate (one CTS per rendezvous block may be in
    /// flight on a long stream); grants for unknown streams are dropped —
    /// a late CTS from a drained hop is harmless.
    pub fn grant(&self, key: StreamKey, window: u32) {
        let mut st = self.state.lock();
        if let Some(e) = st.get_mut(&key) {
            let parked = e.grant.unwrap_or(0);
            e.grant = Some(parked.saturating_add(window));
            drop(st);
            self.event.bump();
        }
    }

    /// Claim a parked rendezvous grant, without blocking.
    pub fn take_grant(&self, key: StreamKey) -> GrantOutcome {
        let mut st = self.state.lock();
        match st.get_mut(&key) {
            Some(e) => {
                if let Some(r) = e.cancelled {
                    GrantOutcome::Cancelled(r)
                } else if let Some(w) = e.grant.take() {
                    GrantOutcome::Granted(w)
                } else {
                    GrantOutcome::Pending
                }
            }
            // An unknown account reads as "no CTS yet": the caller's
            // deadline turns a genuinely lost account into a typed error.
            None => GrantOutcome::Pending,
        }
    }

    /// Mark a stream cancelled, creating the account if none exists (the
    /// canceller may race the opener), and wake every waiter. The first
    /// reason wins.
    pub fn cancel(&self, key: StreamKey, reason: CancelReason) {
        {
            let mut st = self.state.lock();
            let e = st.entry(key).or_default();
            if e.cancelled.is_none() {
                e.cancelled = Some(reason);
            }
        }
        self.event.bump();
    }

    /// Like [`CreditLedger::cancel`], but only for streams that hold an
    /// account here — returns false (and changes nothing) otherwise. Used
    /// for cancels arriving from *downstream*, whose stream may already be
    /// fully relayed and closed on this node.
    pub fn cancel_existing(&self, key: StreamKey, reason: CancelReason) -> bool {
        let mut st = self.state.lock();
        match st.get_mut(&key) {
            Some(e) => {
                if e.cancelled.is_none() {
                    e.cancelled = Some(reason);
                }
                drop(st);
                self.event.bump();
                true
            }
            None => false,
        }
    }

    /// The cancellation reason of a stream, if it was cancelled.
    pub fn cancelled(&self, key: StreamKey) -> Option<CancelReason> {
        self.state.lock().get(&key).and_then(|e| e.cancelled)
    }

    /// Credits currently available to a stream (tests and diagnostics).
    pub fn available(&self, key: StreamKey) -> Option<u64> {
        self.state.lock().get(&key).map(|e| e.available)
    }

    /// Consume one credit if possible, without blocking.
    pub fn try_take(&self, key: StreamKey) -> TakeOutcome {
        let mut st = self.state.lock();
        match st.get_mut(&key) {
            Some(e) => {
                if let Some(r) = e.cancelled {
                    TakeOutcome::Cancelled(r)
                } else if e.available > 0 {
                    e.available -= 1;
                    TakeOutcome::Taken
                } else {
                    TakeOutcome::Empty
                }
            }
            // An unknown account reads as an empty window: the caller's
            // deadline turns a genuinely lost account into a typed error.
            None => TakeOutcome::Empty,
        }
    }

    /// Consume one credit, blocking up to `timeout_ns` on the ledger event.
    /// Used by gateway forwarding sides (which never pump a conduit — the
    /// polling threads deposit on their behalf).
    pub fn take_blocking(
        &self,
        key: StreamKey,
        timeout_ns: u64,
        rt: &dyn Runtime,
    ) -> std::result::Result<(), TakeFailure> {
        let start = rt.now_nanos();
        loop {
            let seen = self.event.epoch();
            match self.try_take(key) {
                TakeOutcome::Taken => return Ok(()),
                TakeOutcome::Cancelled(r) => return Err(TakeFailure::Cancelled(r)),
                TakeOutcome::Empty => {}
            }
            let elapsed = rt.now_nanos().saturating_sub(start);
            let remaining = timeout_ns.saturating_sub(elapsed);
            if remaining == 0 || self.event.wait_past_timeout(seen, remaining).is_none() {
                return Err(TakeFailure::Timeout);
            }
        }
    }

    /// True when no stream holds an account — the post-session leak check.
    pub fn is_idle(&self) -> bool {
        self.state.lock().is_empty()
    }
}

/// Flow-control configuration of one node on one virtual channel: the
/// shared ledger plus the session-wide window and deadline.
#[derive(Clone)]
pub struct FlowControl {
    ledger: Arc<CreditLedger>,
    window: u32,
    timeout_ns: u64,
    /// The node's telemetry plane: writer pumps hand it stray handoff
    /// acks and in-band metrics packets they drain off the conduit.
    plane: Option<Arc<crate::metrics_plane::MetricsPlane>>,
    /// The node's membership plane: writer pumps hand it kind-11 member
    /// packets they drain off the conduit.
    member: Option<Arc<crate::membership::MembershipPlane>>,
    /// The channel's live operating point: when present, freshly opened
    /// streams take their window from it instead of the bootstrap value.
    tuning: Option<Arc<crate::control::Tuning>>,
    /// Bootstrap rendezvous threshold in bytes (0 = eager-only). Blocks at
    /// least this large run the kind-12 RTS/CTS handshake.
    rendezvous: usize,
    /// Writer-side protocol counters, flushed to the `proto:` trace track
    /// at session teardown.
    proto: Option<Arc<ProtoStats>>,
}

/// Writer-side protocol-plane counters: how many blocks took each path
/// and how many fragments flowed under prepaid rendezvous grants. Shared
/// by every writer on one (virtual channel, node).
#[derive(Debug, Default)]
pub struct ProtoStats {
    /// Blocks that ran the kind-12 rendezvous handshake.
    pub rendezvous_blocks: std::sync::atomic::AtomicU64,
    /// Blocks that stayed on the eager path.
    pub eager_blocks: std::sync::atomic::AtomicU64,
    /// Fragments sent under a prepaid whole-window grant (no per-fragment
    /// credit take).
    pub granted_fragments: std::sync::atomic::AtomicU64,
}

impl FlowControl {
    /// Bundle a ledger with the channel's window and credit deadline.
    pub fn new(ledger: Arc<CreditLedger>, window: u32, timeout_ns: u64) -> Self {
        assert!(window > 0, "a credit window must hold at least one packet");
        FlowControl {
            ledger,
            window,
            timeout_ns,
            plane: None,
            member: None,
            tuning: None,
            rendezvous: 0,
            proto: None,
        }
    }

    /// Attach the node's telemetry plane (session wiring).
    pub(crate) fn with_metrics(
        mut self,
        plane: Option<Arc<crate::metrics_plane::MetricsPlane>>,
    ) -> Self {
        self.plane = plane;
        self
    }

    /// Attach the node's membership plane (session wiring).
    pub(crate) fn with_membership(
        mut self,
        member: Option<Arc<crate::membership::MembershipPlane>>,
    ) -> Self {
        self.member = member;
        self
    }

    /// Attach the channel's live operating point (session wiring).
    pub(crate) fn with_tuning(mut self, tuning: Option<Arc<crate::control::Tuning>>) -> Self {
        self.tuning = tuning;
        self
    }

    /// Set the bootstrap rendezvous threshold (session wiring; 0 disables
    /// the rendezvous path entirely).
    pub(crate) fn with_rendezvous(mut self, threshold: usize) -> Self {
        self.rendezvous = threshold;
        self
    }

    /// Attach the node's writer-side protocol counters (session wiring).
    pub(crate) fn with_proto(mut self, proto: Option<Arc<ProtoStats>>) -> Self {
        self.proto = proto;
        self
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &Arc<CreditLedger> {
        &self.ledger
    }

    /// The per-stream window, in fragments — the live tuned value when a
    /// controller governs this channel, the bootstrap value otherwise.
    pub fn window(&self) -> u32 {
        match &self.tuning {
            Some(t) => t.credit_window().unwrap_or(self.window),
            None => self.window,
        }
    }

    /// The credit-wait deadline, in nanoseconds.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// The rendezvous threshold, in bytes — the live tuned value when a
    /// controller governs this channel, the bootstrap value otherwise.
    /// 0 means every block stays eager.
    pub fn rendezvous_threshold(&self) -> usize {
        match &self.tuning {
            Some(t) => t.rendezvous_threshold(),
            None => self.rendezvous,
        }
    }

    /// The writer-side handle. `pump` must be true on nodes whose special
    /// conduits have no other reader (non-gateway nodes); gateway-resident
    /// writers must leave it false — their engine's polling threads own
    /// the conduit receive sides and deposit grants on their behalf.
    pub fn writer(&self, pump: bool) -> WriterFlow {
        WriterFlow {
            ctl: self.clone(),
            pump,
        }
    }
}

impl std::fmt::Debug for FlowControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowControl")
            .field("window", &self.window)
            .field("timeout_ns", &self.timeout_ns)
            .finish()
    }
}

/// Sender-side flow control of one GTM stream, used by
/// [`GtmWriter`](crate::gtm::GtmWriter).
pub struct WriterFlow {
    ctl: FlowControl,
    pump: bool,
}

impl WriterFlow {
    /// Open the stream's account with the initial window (read live, so
    /// a controller retune governs every stream opened after it).
    pub(crate) fn open(&self, key: StreamKey) {
        self.ctl.ledger.open(key, self.ctl.window());
    }

    /// Drop the stream's account.
    pub(crate) fn close(&self, key: StreamKey) {
        self.ctl.ledger.close(key);
    }

    /// The channel's live rendezvous threshold (0 = eager-only).
    pub(crate) fn rendezvous_threshold(&self) -> usize {
        self.ctl.rendezvous_threshold()
    }

    /// Count one finished block on its protocol path, plus the fragments
    /// that flowed under a prepaid grant.
    pub(crate) fn note_block(&self, rendezvous: bool, granted_fragments: u64) {
        use std::sync::atomic::Ordering;
        if let Some(p) = &self.ctl.proto {
            if rendezvous {
                p.rendezvous_blocks.fetch_add(1, Ordering::Relaxed);
                p.granted_fragments
                    .fetch_add(granted_fragments, Ordering::Relaxed);
            } else {
                p.eager_blocks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Wait for the receiver's whole-window CTS after sending an RTS,
    /// pumping the writer's conduit while waiting. Returns the number of
    /// prepaid fragments. Deadline-bounded exactly like [`Self::take`].
    pub(crate) fn wait_grant(
        &self,
        channel: &Channel,
        first_hop: NodeId,
        tag: &StreamTag,
    ) -> Result<u32> {
        let key = tag.key();
        let rt = channel.runtime();
        let start = rt.now_nanos();
        loop {
            let seen = self.ctl.ledger.event.epoch();
            match self.ctl.ledger.take_grant(key) {
                GrantOutcome::Granted(w) => return Ok(w),
                GrantOutcome::Cancelled(reason) => return Err(cancel_error(reason, tag)),
                GrantOutcome::Pending => {}
            }
            if self.pump && self.pump_conduit(channel, first_hop)? {
                continue; // something arrived: re-check before blocking
            }
            let elapsed = rt.now_nanos().saturating_sub(start);
            let remaining = self.ctl.timeout_ns.saturating_sub(elapsed);
            if remaining == 0
                || self
                    .ctl
                    .ledger
                    .event
                    .wait_past_timeout(seen, remaining)
                    .is_none()
            {
                return Err(MadError::CreditTimeout {
                    src: tag.src,
                    dest: tag.dest,
                    msg_id: tag.msg_id,
                });
            }
        }
    }

    /// Consume one credit before emitting a fragment, pumping the writer's
    /// conduit for incoming grants while waiting. Deadline-bounded: a
    /// stalled or dead downstream surfaces as
    /// [`MadError::CreditTimeout`] / [`MadError::PeerUnreachable`].
    pub(crate) fn take(&self, channel: &Channel, first_hop: NodeId, tag: &StreamTag) -> Result<()> {
        let key = tag.key();
        let rt = channel.runtime();
        let start = rt.now_nanos();
        loop {
            let seen = self.ctl.ledger.event.epoch();
            match self.ctl.ledger.try_take(key) {
                TakeOutcome::Taken => return Ok(()),
                TakeOutcome::Cancelled(reason) => return Err(cancel_error(reason, tag)),
                TakeOutcome::Empty => {}
            }
            if self.pump && self.pump_conduit(channel, first_hop)? {
                continue; // something arrived: re-check before blocking
            }
            let elapsed = rt.now_nanos().saturating_sub(start);
            let remaining = self.ctl.timeout_ns.saturating_sub(elapsed);
            if remaining == 0
                || self
                    .ctl
                    .ledger
                    .event
                    .wait_past_timeout(seen, remaining)
                    .is_none()
            {
                return Err(MadError::CreditTimeout {
                    src: tag.src,
                    dest: tag.dest,
                    msg_id: tag.msg_id,
                });
            }
        }
    }

    /// Drain whatever is pending on the conduit to `peer` — only credit
    /// grants and cancels ever travel toward a non-gateway sender on its
    /// special channel. Returns true if anything was consumed.
    fn pump_conduit(&self, channel: &Channel, peer: NodeId) -> Result<bool> {
        let mut any = false;
        loop {
            let mut conduit = channel.lock_conduit(peer)?;
            if !conduit.ready() {
                return Ok(any);
            }
            let packet = channel.runtime().pool().adopt(conduit.recv_owned()?);
            drop(conduit);
            channel.stats().on_recv(peer.0, packet.len());
            let (tag, body) = gtm::decode_packet(&packet)?;
            match body {
                PacketBody::Credit(n) => self.ctl.ledger.deposit(tag.key(), n),
                PacketBody::Cancel(reason) => self.ctl.ledger.cancel(tag.key(), reason),
                // A handoff ack racing ahead of the multi-path writer's own
                // ack pump (e.g. while a later stream is still packing) is
                // not an error — park it in the plane's side table so the
                // waiting pump can still claim it; without a plane the old
                // swallow-and-rely-on-the-deadline behaviour stands.
                PacketBody::Ack => {
                    if let Some(p) = &self.ctl.plane {
                        p.deposit_ack(tag.key());
                    }
                }
                // In-band metrics pull traffic shares the conduit: hand it
                // to the node's plane (or drop it when telemetry is off).
                PacketBody::MetricsRequest | PacketBody::MetricsReply => {
                    if let Some(p) = &self.ctl.plane {
                        p.handle_packet(&tag, &body, &packet);
                    }
                }
                // Likewise membership protocol traffic (kind 11).
                PacketBody::Member(_) => {
                    if let Some(p) = &self.ctl.member {
                        p.handle_packet(&tag, &body, &packet);
                    }
                }
                // A rendezvous CTS (kind 12) parks the whole-window grant
                // for the writer blocked in `wait_grant`.
                PacketBody::RendezvousCts(m) => self.ctl.ledger.grant(tag.key(), m.window),
                other => {
                    return Err(MadError::Protocol(format!(
                        "unexpected {other:?} on a sender's special conduit"
                    )))
                }
            }
            any = true;
        }
    }
}

/// The typed error a cancelled stream surfaces at its sender.
pub(crate) fn cancel_error(reason: CancelReason, tag: &StreamTag) -> MadError {
    match reason {
        CancelReason::PeerUnreachable => MadError::PeerUnreachable(tag.dest),
        CancelReason::CreditTimeout => MadError::CreditTimeout {
            src: tag.src,
            dest: tag.dest,
            msg_id: tag.msg_id,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StdRuntime;

    fn ledger() -> Arc<CreditLedger> {
        let rt = StdRuntime::default();
        CreditLedger::new(crate::runtime::Runtime::event(&rt))
    }

    #[test]
    fn window_accounting() {
        let l = ledger();
        let key = (3, 7);
        l.open(key, 2);
        assert_eq!(l.try_take(key), TakeOutcome::Taken);
        assert_eq!(l.try_take(key), TakeOutcome::Taken);
        assert_eq!(l.try_take(key), TakeOutcome::Empty);
        l.deposit(key, 1);
        assert_eq!(l.available(key), Some(1));
        assert_eq!(l.try_take(key), TakeOutcome::Taken);
        l.close(key);
        assert!(l.is_idle());
        // Late grants for closed streams are dropped, not resurrected.
        l.deposit(key, 5);
        assert!(l.is_idle());
    }

    #[test]
    fn cancellation_beats_credits() {
        let l = ledger();
        let key = (1, 1);
        l.open(key, 4);
        l.cancel(key, CancelReason::PeerUnreachable);
        assert_eq!(
            l.try_take(key),
            TakeOutcome::Cancelled(CancelReason::PeerUnreachable)
        );
        // First reason wins.
        l.cancel(key, CancelReason::CreditTimeout);
        assert_eq!(l.cancelled(key), Some(CancelReason::PeerUnreachable));
        // A cancel may precede the open on a racing stream.
        let other = (9, 9);
        l.cancel(other, CancelReason::CreditTimeout);
        assert_eq!(
            l.try_take(other),
            TakeOutcome::Cancelled(CancelReason::CreditTimeout)
        );
    }

    #[test]
    fn grant_accounting() {
        let l = ledger();
        let key = (4, 2);
        l.open(key, 2);
        // No CTS yet.
        assert_eq!(l.take_grant(key), GrantOutcome::Pending);
        // Grants accumulate and are claimed whole, separately from the
        // eager window.
        l.grant(key, 8);
        l.grant(key, 8);
        assert_eq!(l.available(key), Some(2));
        assert_eq!(l.take_grant(key), GrantOutcome::Granted(16));
        assert_eq!(l.take_grant(key), GrantOutcome::Pending);
        // Cancellation beats a parked grant.
        l.grant(key, 4);
        l.cancel(key, CancelReason::CreditTimeout);
        assert_eq!(
            l.take_grant(key),
            GrantOutcome::Cancelled(CancelReason::CreditTimeout)
        );
        // Late grants for closed streams are dropped.
        l.close(key);
        l.grant(key, 4);
        assert!(l.is_idle());
    }

    #[test]
    fn blocking_take_times_out_typed() {
        let l = ledger();
        let rt = StdRuntime::default();
        let key = (2, 0);
        l.open(key, 0);
        assert_eq!(
            l.take_blocking(key, 2_000_000, &rt),
            Err(TakeFailure::Timeout)
        );
    }
}
