//! Test-only loopback driver: a minimal in-crate conduit so the channel
//! and message layers can be unit-tested without any external driver
//! crate. Configurable capabilities let tests exercise gather limits, MTU
//! splitting, and static-buffer charging paths in isolation.

#![cfg(test)]

use std::sync::Arc;

use crate::conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
use crate::error::{MadError, Result};
use crate::runtime::{RtEvent, RtQueue, RtReceiver, RtSender, Runtime, StdRuntime};
use crate::types::NodeId;

/// A driver whose conduits are plain in-memory queues with configurable
/// capabilities.
pub struct MockDriver {
    pub caps: DriverCaps,
    runtime: Arc<dyn Runtime>,
}

impl MockDriver {
    pub fn new(caps: DriverCaps) -> Arc<Self> {
        Arc::new(MockDriver {
            caps,
            runtime: StdRuntime::shared(),
        })
    }

    pub fn dynamic() -> Arc<Self> {
        Self::new(DriverCaps {
            name: "mock-dyn",
            mode: BufferMode::Dynamic,
            max_gather: usize::MAX,
            max_packet: usize::MAX,
            preferred_mtu: 4096,
        })
    }

    pub fn tiny_packets(max_packet: usize, max_gather: usize) -> Arc<Self> {
        Self::new(DriverCaps {
            name: "mock-tiny",
            mode: BufferMode::Dynamic,
            max_gather,
            max_packet,
            preferred_mtu: max_packet,
        })
    }
}

impl Driver for MockDriver {
    fn caps(&self) -> DriverCaps {
        self.caps
    }

    fn connect(
        &self,
        _a: NodeId,
        _b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>) {
        let (tx_ab, rx_b) = RtQueue::with_event(&*self.runtime, usize::MAX, ev_b.clone());
        let (tx_ba, rx_a) = RtQueue::with_event(&*self.runtime, usize::MAX, ev_a.clone());
        (
            Box::new(MockConduit {
                caps: self.caps,
                tx: tx_ab,
                rx: rx_a,
                ev: ev_a,
                sent_packets: 0,
            }),
            Box::new(MockConduit {
                caps: self.caps,
                tx: tx_ba,
                rx: rx_b,
                ev: ev_b,
                sent_packets: 0,
            }),
        )
    }
}

pub struct MockConduit {
    caps: DriverCaps,
    tx: RtSender<Vec<u8>>,
    rx: RtReceiver<Vec<u8>>,
    ev: Arc<dyn RtEvent>,
    /// Observable packet count, for grouping assertions.
    pub sent_packets: usize,
}

impl Conduit for MockConduit {
    fn caps(&self) -> DriverCaps {
        self.caps
    }

    fn send(&mut self, parts: &[&[u8]]) -> Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert!(total <= self.caps.max_packet, "packet over driver limit");
        assert!(parts.len() <= self.caps.max_gather, "gather over limit");
        self.sent_packets += 1;
        let mut v = Vec::with_capacity(total);
        for p in parts {
            v.extend_from_slice(p);
        }
        self.tx.push(v).map_err(|_| MadError::Disconnected)
    }

    fn send_static(&mut self, buf: StaticBuf) -> Result<()> {
        self.sent_packets += 1;
        self.tx
            .push(buf.into_vec())
            .map_err(|_| MadError::Disconnected)
    }

    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf> {
        matches!(self.caps.mode, BufferMode::Static).then(|| StaticBuf::new(self.caps.name, len))
    }

    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize> {
        let p = self.recv_owned()?;
        if p.len() > dst.len() {
            return Err(MadError::BufferTooSmall {
                have: dst.len(),
                need: p.len(),
            });
        }
        dst[..p.len()].copy_from_slice(&p);
        Ok(p.len())
    }

    fn recv_owned(&mut self) -> Result<Vec<u8>> {
        loop {
            let seen = self.ev.epoch();
            if let Some(p) = self.rx.try_pop() {
                return Ok(p);
            }
            if self.rx.is_closed() {
                return Err(MadError::Disconnected);
            }
            self.ev.wait_past(seen);
        }
    }

    fn ready(&self) -> bool {
        self.rx.has_pending()
    }

    fn closed(&self) -> bool {
        self.rx.is_closed()
    }

    fn recv_event(&self) -> Arc<dyn RtEvent> {
        self.ev.clone()
    }
}

/// Assemble a two-node channel pair over a mock driver, returning both
/// per-node channel views.
pub fn channel_pair(driver: Arc<dyn Driver>) -> (crate::Channel, crate::Channel) {
    use std::collections::BTreeMap;

    use crate::channel::Channel;
    use crate::types::{ChannelId, NetworkId};

    let rt = StdRuntime::shared();
    let (ev0, ev1) = (rt.event(), rt.event());
    let (c0, c1) = driver.connect(NodeId(0), NodeId(1), ev0.clone(), ev1.clone());
    let mk = |rank: u32, peer: u32, c: Box<dyn Conduit>, ev| {
        let mut m: BTreeMap<NodeId, Box<dyn Conduit>> = BTreeMap::new();
        m.insert(NodeId(peer), c);
        Channel::assemble(
            ChannelId(0),
            "mock",
            NetworkId(0),
            NodeId(rank),
            driver.caps(),
            m,
            ev,
            rt.clone(),
        )
    };
    (mk(0, 1, c0, ev0), mk(1, 0, c1, ev1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::{RecvMode, SendMode};

    #[test]
    fn channel_round_trip_over_mock() {
        let (a, b) = channel_pair(MockDriver::dynamic());
        let h = std::thread::spawn(move || {
            let data = vec![3u8; 10_000];
            let mut w = a.begin_packing(NodeId(1)).unwrap();
            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            a // keep alive until the receiver drains
        });
        let mut buf = vec![0u8; 10_000];
        let mut r = b.begin_unpacking().unwrap();
        r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
            .unwrap();
        r.end_unpacking().unwrap();
        assert!(buf.iter().all(|&x| x == 3));
        h.join().unwrap();
    }

    #[test]
    fn mtu_splits_into_expected_packet_count() {
        // 10 KB message over a 1 KB-packet driver: exactly 10 packets.
        let (a, b) = channel_pair(MockDriver::tiny_packets(1024, 16));
        let h = std::thread::spawn(move || {
            let data = vec![9u8; 10 * 1024];
            let mut w = a.begin_packing(NodeId(1)).unwrap();
            w.pack(&data, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            a
        });
        let mut buf = vec![0u8; 10 * 1024];
        let mut r = b.begin_unpacking().unwrap();
        r.unpack(&mut buf, SendMode::Later, RecvMode::Cheaper)
            .unwrap();
        r.end_unpacking().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn aggregation_groups_small_blocks_into_one_packet() {
        // Three deferred blocks must leave as ONE wire packet; an express
        // block forces its own flush.
        let (a, b) = channel_pair(MockDriver::dynamic());
        let h = std::thread::spawn(move || {
            let (x, y, z) = ([1u8; 10], [2u8; 20], [3u8; 30]);
            let mut w = a.begin_packing(NodeId(1)).unwrap();
            w.pack(&x, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.pack(&y, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.pack(&z, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            a
        });
        // The receiver sees exactly one wire packet of 60 bytes.
        let a_back = h.join().unwrap();
        let mut raw = b.lock_conduit(NodeId(0)).unwrap();
        let pkt = raw.recv_owned().unwrap();
        assert_eq!(pkt.len(), 60, "deferred blocks must aggregate");
        assert!(!raw.ready(), "exactly one packet expected");
        drop(raw);
        drop(a_back);
    }

    #[test]
    fn express_blocks_flush_separately() {
        let (a, b) = channel_pair(MockDriver::dynamic());
        let h = std::thread::spawn(move || {
            let (x, y) = ([1u8; 8], [2u8; 8]);
            let mut w = a.begin_packing(NodeId(1)).unwrap();
            w.pack(&x, SendMode::Later, RecvMode::Express).unwrap();
            w.pack(&y, SendMode::Later, RecvMode::Cheaper).unwrap();
            w.end_packing().unwrap();
            a
        });
        let a_back = h.join().unwrap();
        let mut raw = b.lock_conduit(NodeId(0)).unwrap();
        assert_eq!(raw.recv_owned().unwrap().len(), 8, "express flushed alone");
        assert_eq!(raw.recv_owned().unwrap().len(), 8, "second group");
        drop(raw);
        drop(a_back);
    }

    #[test]
    fn select_ready_prefers_lowest_rank() {
        // With one peer there is no choice, but the call must return that
        // peer and not block once a packet is pending.
        let (a, b) = channel_pair(MockDriver::dynamic());
        a.send_packet(NodeId(1), &[b"ping"]).unwrap();
        assert_eq!(b.select_ready().unwrap(), NodeId(0));
        // Drain to keep the teardown clean.
        let _ = b.lock_conduit(NodeId(0)).unwrap().recv_owned();
        drop(a);
    }
}
