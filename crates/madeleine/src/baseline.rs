//! Application-level forwarding baseline (paper §1).
//!
//! Nexus-style multi-device systems leave routing to the application: a
//! relay process receives a whole message with ordinary `unpack` calls into
//! a temporary buffer and re-sends it with ordinary `pack` calls. The paper
//! names the two costs this incurs — extra copies through temporary buffers
//! and the impossibility of pipelining (the relay stores the full message
//! before forwarding) — and the benchmarks quantify both against the GTM
//! gateway. This module implements that baseline faithfully so the
//! comparison is against a real contender, not a strawman.
//!
//! Because plain Madeleine messages are not self-described, the baseline
//! needs its own application protocol: each message is preceded by an
//! express header carrying the payload length and final destination.

use crate::channel::Channel;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::types::NodeId;

/// Send `payload` to `dest` through an application-level relay chain: the
/// message goes to `next` (the first relay) with a self-made header.
pub fn send_via_relay(channel: &Channel, next: NodeId, dest: NodeId, payload: &[u8]) -> Result<()> {
    let header = encode_header(dest, payload.len());
    let mut msg = channel.begin_packing(next)?;
    msg.pack(&header, SendMode::Safer, RecvMode::Express)?;
    msg.pack(payload, SendMode::Later, RecvMode::Cheaper)?;
    msg.end_packing()
}

/// Receive one relayed message addressed to this node: returns the
/// original payload. The caller must be the `dest` of the send.
pub fn recv_via_relay(channel: &Channel, rank: NodeId) -> Result<Vec<u8>> {
    let mut msg = channel.begin_unpacking()?;
    let mut header = [0u8; 12];
    msg.unpack(&mut header, SendMode::Safer, RecvMode::Express)?;
    let (dest, len) = decode_header(&header)?;
    if dest != rank {
        return Err(MadError::Protocol(format!(
            "relayed message for {dest} arrived at {rank}"
        )));
    }
    let mut payload = vec![0u8; len];
    msg.unpack(&mut payload, SendMode::Later, RecvMode::Cheaper)?;
    msg.end_unpacking()?;
    Ok(payload)
}

/// Run a relay node: receive messages on `input`, store each one fully in a
/// temporary buffer, then re-send it on `output` toward its destination
/// (`route` maps a final destination to the next hop on `output`).
/// Returns the number of messages relayed, once `input` disconnects.
///
/// This is the paper's strawman-by-necessity: no pipelining (store and
/// forward), one extra pass through a temporary buffer per hop, and relay
/// logic written into the application.
pub fn run_relay(
    input: &Channel,
    output: &Channel,
    route: impl Fn(NodeId) -> Option<NodeId>,
) -> Result<usize> {
    let mut relayed = 0;
    loop {
        let mut msg = match input.begin_unpacking() {
            Ok(m) => m,
            Err(MadError::Disconnected) => return Ok(relayed),
            Err(e) => return Err(e),
        };
        let mut header = [0u8; 12];
        msg.unpack(&mut header, SendMode::Safer, RecvMode::Express)?;
        let (dest, len) = decode_header(&header)?;
        // The whole message lands in a temporary buffer before anything is
        // retransmitted — the defining non-feature of this baseline.
        let mut tmp = vec![0u8; len];
        msg.unpack(&mut tmp, SendMode::Later, RecvMode::Cheaper)?;
        msg.end_unpacking()?;
        input.runtime().charge_copy(len);

        let next = route(dest).ok_or(MadError::Unroutable(dest))?;
        let mut out = output.begin_packing(next)?;
        out.pack(&header, SendMode::Safer, RecvMode::Express)?;
        out.pack(&tmp, SendMode::Later, RecvMode::Cheaper)?;
        out.end_packing()?;
        relayed += 1;
    }
}

fn encode_header(dest: NodeId, len: usize) -> [u8; 12] {
    let mut h = [0u8; 12];
    h[0..4].copy_from_slice(&dest.0.to_le_bytes());
    h[4..12].copy_from_slice(&(len as u64).to_le_bytes());
    h
}

fn decode_header(h: &[u8; 12]) -> Result<(NodeId, usize)> {
    let dest = u32::from_le_bytes(h[0..4].try_into().unwrap());
    let len = u64::from_le_bytes(h[4..12].try_into().unwrap());
    Ok((NodeId(dest), len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = encode_header(NodeId(9), 123456);
        assert_eq!(decode_header(&h).unwrap(), (NodeId(9), 123456));
    }
}
