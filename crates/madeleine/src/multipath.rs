//! The multi-path routing plane of a virtual channel.
//!
//! This module is the transport-side owner of the policy crate
//! [`mad_route`]: it computes the session's [`mad_route::RoutingTable`]
//! from the same topology declaration the legacy router uses, feeds the
//! adaptive [`mad_route::Selector`] with live [`GatewayStats`] windows
//! ([`GatewayStats::delta_since_last`]), and keeps the per-path byte
//! accounting that ends up on the `route:` trace track.
//!
//! One [`MultiPath`] instance is shared by every node of a virtual
//! channel, which is what makes the cost model *global*: a sender on
//! rank 0 sheds load off a gateway that rank 5's streams congested. The
//! per-node send machinery (path choice at `begin_packing`, failover
//! re-issue, fragment striping) lives in [`crate::vchannel`]; this module
//! only decides *where* packets should go.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mad_route::{GatewayLoad, PathHop, RoutePlan, Selector, SelectorCounters, StripePolicy};
use mad_trace::Tracer;
use mad_util::sync::Mutex;

use crate::gateway::GatewayStats;
use crate::routing::NetworkMembers;
use crate::types::NodeId;

/// Multi-path behaviour of one virtual channel, set through
/// [`crate::session::VcOptions`].
#[derive(Debug, Clone, Copy)]
pub struct MultipathConfig {
    /// How streams spread over parallel paths.
    pub policy: StripePolicy,
    /// Minimum interval between cost-model refreshes: a send-path call to
    /// [`MultiPath::refresh`] inside the window is free. Windows also pace
    /// the `gw:` delta trace events.
    pub refresh_interval_ns: u64,
    /// How long a sender waits for the first-hop gateway's handoff
    /// acknowledgment after the stream's end packet. Expiry means the
    /// gateway died after accepting the stream — the sender marks the
    /// path dead and re-issues on a survivor.
    pub ack_timeout_ns: u64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig {
            policy: StripePolicy::PerStream,
            refresh_interval_ns: 2_000_000, // 2 ms
            ack_timeout_ns: 500_000_000,    // 500 ms
        }
    }
}

/// The shared routing plane of one virtual channel: multi-path plans,
/// the adaptive selector, registered gateway feeds, and per-path byte
/// accounting.
pub struct MultiPath {
    table: mad_route::RoutingTable,
    selector: Selector,
    policy: StripePolicy,
    refresh_interval_ns: u64,
    ack_timeout_ns: u64,
    last_refresh: AtomicU64,
    /// Live counter feeds of the session's gateway engines, registered
    /// after spawn: (gateway rank, its stats block).
    feeds: Mutex<Vec<(u32, Arc<GatewayStats>)>>,
    /// Payload bytes the session's senders bound to each gateway path.
    path_bytes: Mutex<BTreeMap<u32, u64>>,
    tracer: Mutex<Option<(Tracer, String)>>,
}

impl std::fmt::Debug for MultiPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiPath")
            .field("policy", &self.policy)
            .field("nodes", &self.table.nodes().collect::<Vec<_>>())
            .finish()
    }
}

impl MultiPath {
    /// Build the routing plane for a virtual channel topology.
    pub fn new(networks: &[NetworkMembers], cfg: MultipathConfig) -> Self {
        let decls: Vec<mad_route::NetworkDecl> = networks
            .iter()
            .map(|nm| mad_route::NetworkDecl {
                net: nm.net.0,
                members: nm.members.iter().map(|m| m.0).collect(),
            })
            .collect();
        MultiPath {
            table: mad_route::compute_table(&decls),
            selector: Selector::new(),
            policy: cfg.policy,
            refresh_interval_ns: cfg.refresh_interval_ns,
            ack_timeout_ns: cfg.ack_timeout_ns,
            last_refresh: AtomicU64::new(0),
            feeds: Mutex::new(Vec::new()),
            path_bytes: Mutex::new(BTreeMap::new()),
            tracer: Mutex::new(None),
        }
    }

    /// The striping policy of this channel.
    pub fn policy(&self) -> StripePolicy {
        self.policy
    }

    /// The handoff-ack deadline of this channel's multi-path senders.
    pub fn ack_timeout_ns(&self) -> u64 {
        self.ack_timeout_ns
    }

    /// The multi-path plan of one node.
    pub fn plan(&self, src: NodeId) -> &RoutePlan {
        self.table.plan(src.0)
    }

    /// Attach a trace sink: refresh windows emit `gw:` delta counters and
    /// [`MultiPath::flush_trace`] emits the final `route:` track.
    pub fn set_trace(&self, tracer: Tracer, vc_name: &str) {
        *self.tracer.lock() = Some((tracer, vc_name.to_string()));
    }

    /// Register one gateway engine's live counters as a cost-model feed.
    pub fn register_gateway(&self, gw: NodeId, stats: Arc<GatewayStats>) {
        self.feeds.lock().push((gw.0, stats));
    }

    /// Rate-limited cost-model refresh, called from the send path: at most
    /// once per configured window, fold every registered gateway's delta
    /// since the previous window into the selector's EWMA costs.
    pub fn refresh(&self, now_ns: u64) {
        let last = self.last_refresh.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.refresh_interval_ns {
            return;
        }
        if self
            .last_refresh
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another sender refreshed this window
        }
        let trace = self.tracer.lock().clone();
        for (gw, stats) in self.feeds.lock().iter() {
            let d = stats.delta_since_last(now_ns);
            let secs = d.interval_ns as f64 / 1e9;
            let load = GatewayLoad {
                stall_rate: if secs > 0.0 {
                    d.stalls as f64 / secs
                } else {
                    0.0
                },
                occupancy_bytes: d.occupancy_bytes.max(0) as f64,
                bytes_per_sec: d.bytes_per_sec,
            };
            self.selector.feed(*gw, load);
            if let Some((tracer, vc)) = &trace {
                if tracer.enabled() && d.interval_ns > 0 {
                    let track = format!("gw:{vc}@{gw}");
                    tracer.count_on(&track, "gateway", "delta_bytes", d.bytes as i64, &[]);
                    tracer.count_on(&track, "gateway", "delta_stalls", d.stalls as i64, &[]);
                    tracer.count_on(&track, "gateway", "delta_occupancy", d.occupancy_bytes, &[]);
                }
            }
        }
    }

    /// Pick a path for a new stream toward `dest`, skipping gateways in
    /// `exclude` (failed attempts of this stream). Bumps the pick's
    /// in-flight count — pair with [`MultiPath::complete`].
    pub fn choose(&self, dest: NodeId, paths: &[PathHop], exclude: &[u32]) -> Option<PathHop> {
        self.selector.choose(dest.0, paths, exclude)
    }

    /// The live (not-known-dead) subset of `paths`, in plan order.
    pub fn live(&self, paths: &[PathHop]) -> Vec<PathHop> {
        self.selector.live(paths)
    }

    /// A stream bound to gateway `gw` finished or failed.
    pub fn complete(&self, gw: u32) {
        self.selector.complete(gw);
    }

    /// A send through gateway `gw` hit a dead host: exclude it from every
    /// future choice. Returns true the first time (worth tracing).
    pub fn mark_dead(&self, gw: u32) -> bool {
        self.selector.mark_dead(gw)
    }

    /// Count one stream successfully re-issued on a surviving path.
    pub fn note_failover(&self) {
        self.selector.note_failover();
    }

    /// Feed a membership (gateway, incarnation epoch) observation to the
    /// selector: a higher epoch than previously recorded readmits a path
    /// declared dead (the old incarnation died; the new one is alive).
    pub fn observe_epoch(&self, gw: u32, epoch: u64) -> mad_route::EpochObservation {
        self.selector.observe_epoch(gw, epoch)
    }

    /// Unconditionally readmit gateway `gw` if it was dead. Returns true
    /// when a path actually came back.
    pub fn readmit(&self, gw: u32) -> bool {
        self.selector.readmit(gw)
    }

    /// Account payload bytes bound to gateway path `gw`.
    pub fn note_bytes(&self, gw: u32, bytes: u64) {
        *self.path_bytes.lock().entry(gw).or_insert(0) += bytes;
    }

    /// Payload bytes sent per gateway path, sorted by gateway rank.
    pub fn path_bytes(&self) -> Vec<(u32, u64)> {
        self.path_bytes
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// The selector's routing-decision counters.
    pub fn counters(&self) -> SelectorCounters {
        self.selector.counters()
    }

    /// Emit the final `route:` track: per-path byte splits plus the
    /// switch/failover counters (session teardown calls this once).
    pub fn flush_trace(&self) {
        let Some((tracer, vc)) = self.tracer.lock().clone() else {
            return;
        };
        if !tracer.enabled() {
            return;
        }
        let track = format!("route:{vc}");
        for (gw, bytes) in self.path_bytes() {
            tracer.count_on(
                &track,
                "route",
                "path_bytes",
                bytes as i64,
                &[("gateway", gw as u64)],
            );
        }
        let c = self.counters();
        tracer.count_on(&track, "route", "switches", c.switches as i64, &[]);
        tracer.count_on(&track, "route", "failovers", c.failovers as i64, &[]);
        tracer.count_on(&track, "route", "deaths", c.deaths as i64, &[]);
        tracer.count_on(&track, "route", "readmissions", c.readmissions as i64, &[]);
    }
}
