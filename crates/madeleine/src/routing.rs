//! Route computation for virtual channels (paper §2.2.2).
//!
//! A virtual channel spans several networks; nodes attached to more than
//! one of them are gateways. Routes are computed by breadth-first search on
//! the bipartite node↔network graph, giving minimum-hop paths with
//! deterministic tie-breaking (lowest network id, then lowest node rank),
//! so every node in the session derives the same next-hop tables and
//! multi-gateway forwarding chains compose correctly.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::error::{MadError, Result};
use crate::types::{NetworkId, NodeId};

/// Declaration of one network's membership within a virtual channel.
#[derive(Debug, Clone)]
pub struct NetworkMembers {
    /// The network.
    pub net: NetworkId,
    /// Ranks attached to it.
    pub members: Vec<NodeId>,
}

/// The first hop toward a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Network to send on.
    pub net: NetworkId,
    /// Node to send to: the destination itself, or a gateway.
    pub node: NodeId,
    /// True if `node` is the final destination (direct delivery).
    pub last: bool,
}

/// Per-source routing table over one virtual channel.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    hops: HashMap<NodeId, Hop>,
}

impl RouteTable {
    /// The first hop toward `dest`, if reachable.
    pub fn hop(&self, dest: NodeId) -> Result<Hop> {
        self.hops
            .get(&dest)
            .copied()
            .ok_or(MadError::Unroutable(dest))
    }

    /// Destinations reachable from this source (excluding itself).
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.hops.keys().copied()
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Compute `src`'s routing table over the given networks.
///
/// For every reachable destination the table records the *first* edge of a
/// minimum-hop path. Gateways apply the same function locally, so a message
/// progresses hop by hop along consistent shortest paths.
pub fn compute_routes(networks: &[NetworkMembers], src: NodeId) -> RouteTable {
    // adjacency: node -> sorted set of networks; network -> sorted members.
    let mut nets_of: BTreeMap<NodeId, Vec<NetworkId>> = BTreeMap::new();
    let mut members_of: BTreeMap<NetworkId, Vec<NodeId>> = BTreeMap::new();
    for nm in networks {
        let mut members = nm.members.clone();
        members.sort_unstable();
        members.dedup();
        for &n in &members {
            nets_of.entry(n).or_default().push(nm.net);
        }
        members_of.insert(nm.net, members);
    }
    for nets in nets_of.values_mut() {
        nets.sort_unstable();
        nets.dedup();
    }

    // BFS from src over nodes; edges are "share a network".
    let mut first_hop: HashMap<NodeId, Hop> = HashMap::new();
    let mut dist: HashMap<NodeId, u32> = HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(src, 0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        let Some(nets) = nets_of.get(&u) else {
            continue;
        };
        for &net in nets {
            for &v in &members_of[&net] {
                if v == u || dist.contains_key(&v) {
                    continue;
                }
                dist.insert(v, du + 1);
                // The first hop toward v: either the direct edge (u == src)
                // or whatever led to u.
                let hop = if u == src {
                    Hop {
                        net,
                        node: v,
                        last: true,
                    }
                } else {
                    let mut h = first_hop[&u];
                    h.last = false;
                    h
                };
                first_hop.insert(v, hop);
                queue.push_back(v);
            }
        }
    }
    first_hop.remove(&src);

    // `last` must mean "next hop is the destination", which is only true
    // for distance-1 nodes; fix the flags accordingly.
    for (dest, hop) in first_hop.iter_mut() {
        hop.last = dist[dest] == 1;
    }
    RouteTable { hops: first_hop }
}

/// The set of gateway ranks of a virtual channel: nodes attached to at
/// least two of its networks, in rank order.
pub fn gateways(networks: &[NetworkMembers]) -> Vec<NodeId> {
    let mut count: BTreeMap<NodeId, usize> = BTreeMap::new();
    for nm in networks {
        let mut seen = nm.members.clone();
        seen.sort_unstable();
        seen.dedup();
        for n in seen {
            *count.entry(n).or_default() += 1;
        }
    }
    count
        .into_iter()
        .filter_map(|(n, c)| (c >= 2).then_some(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(net: u32, members: &[u32]) -> NetworkMembers {
        NetworkMembers {
            net: NetworkId(net),
            members: members.iter().map(|&m| NodeId(m)).collect(),
        }
    }

    #[test]
    fn direct_route_on_shared_network() {
        let nets = [nm(0, &[0, 1, 2])];
        let t = compute_routes(&nets, NodeId(0));
        assert_eq!(
            t.hop(NodeId(2)).unwrap(),
            Hop {
                net: NetworkId(0),
                node: NodeId(2),
                last: true
            }
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn one_gateway_route() {
        // net0: {0,1,2}; net1: {2,3,4}; 2 is the gateway.
        let nets = [nm(0, &[0, 1, 2]), nm(1, &[2, 3, 4])];
        let t = compute_routes(&nets, NodeId(0));
        let hop = t.hop(NodeId(4)).unwrap();
        assert_eq!(
            hop,
            Hop {
                net: NetworkId(0),
                node: NodeId(2),
                last: false
            }
        );
        // The gateway's own table delivers directly.
        let tg = compute_routes(&nets, NodeId(2));
        assert_eq!(
            tg.hop(NodeId(4)).unwrap(),
            Hop {
                net: NetworkId(1),
                node: NodeId(4),
                last: true
            }
        );
    }

    #[test]
    fn two_gateway_chain() {
        // net0: {0,1}; net1: {1,2}; net2: {2,3} — 0→3 crosses gateways 1,2.
        let nets = [nm(0, &[0, 1]), nm(1, &[1, 2]), nm(2, &[2, 3])];
        let t0 = compute_routes(&nets, NodeId(0));
        assert_eq!(
            t0.hop(NodeId(3)).unwrap(),
            Hop {
                net: NetworkId(0),
                node: NodeId(1),
                last: false
            }
        );
        let t1 = compute_routes(&nets, NodeId(1));
        assert_eq!(
            t1.hop(NodeId(3)).unwrap(),
            Hop {
                net: NetworkId(1),
                node: NodeId(2),
                last: false
            }
        );
        let t2 = compute_routes(&nets, NodeId(2));
        assert_eq!(
            t2.hop(NodeId(3)).unwrap(),
            Hop {
                net: NetworkId(2),
                node: NodeId(3),
                last: true
            }
        );
    }

    #[test]
    fn unreachable_is_an_error() {
        let nets = [nm(0, &[0, 1]), nm(1, &[2, 3])];
        let t = compute_routes(&nets, NodeId(0));
        assert_eq!(t.hop(NodeId(2)), Err(MadError::Unroutable(NodeId(2))));
        assert!(t.hop(NodeId(1)).is_ok());
    }

    #[test]
    fn prefers_direct_over_gateway() {
        // Both on net0 and also connected via a 2-hop path; direct wins.
        let nets = [nm(0, &[0, 1]), nm(1, &[0, 2]), nm(2, &[2, 1])];
        let t = compute_routes(&nets, NodeId(0));
        let hop = t.hop(NodeId(1)).unwrap();
        assert!(hop.last);
        assert_eq!(hop.net, NetworkId(0));
    }

    #[test]
    fn deterministic_tie_break_lowest_network() {
        // Two parallel networks both containing {0,1}: net0 chosen.
        let nets = [nm(1, &[0, 1]), nm(0, &[0, 1])];
        let t = compute_routes(&nets, NodeId(0));
        assert_eq!(t.hop(NodeId(1)).unwrap().net, NetworkId(0));
    }

    #[test]
    fn gateway_detection() {
        let nets = [nm(0, &[0, 1, 2]), nm(1, &[2, 3]), nm(2, &[3, 4])];
        assert_eq!(gateways(&nets), vec![NodeId(2), NodeId(3)]);
        // A node listed twice in one network is not thereby a gateway.
        let nets2 = [nm(0, &[0, 0, 1])];
        assert!(gateways(&nets2).is_empty());
    }
}
