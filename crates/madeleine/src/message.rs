//! Incremental message construction and extraction (paper §2.1.2).
//!
//! A message is a sequence of data blocks packed with per-block
//! [`SendMode`]/[`RecvMode`] constraints. Blocks are aggregated according to
//! the deterministic rules in [`crate::plan`] and transmitted as one or more
//! wire packets per flushed group. The receiver *must* unpack the same
//! blocks, in the same order, with the same flags — messages carry no
//! self-description on regular channels (that is the GTM's job, and only
//! for forwarded messages).
//!
//! ## Buffer handling
//!
//! [`MessageWriter`] keeps borrowed `&[u8]` references to the packed blocks
//! until their group flushes, so deferred blocks are gathered straight from
//! user memory ([`SendMode::Later`] semantics; [`SendMode::Safer`] blocks
//! flush immediately instead of being copied).
//!
//! [`MessageReader::unpack`] fills each destination before returning —
//! stronger than the [`RecvMode::Cheaper`] contract (which only promises
//! validity at `end_unpacking`), and exactly the [`RecvMode::Express`]
//! contract. Packets that land entirely inside the current destination are
//! delivered zero-copy (modeling a posted receive); bytes that spill past a
//! destination boundary transit an internal stash, and that double handling
//! is charged through the runtime.

use mad_trace::trace_span;

use crate::channel::Channel;
use crate::conduit::Conduit;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::plan;
use crate::runtime::RtLockGuard;
use crate::types::NodeId;

/// Outgoing message under construction (`mad_begin_packing` …
/// `mad_end_packing`).
pub struct MessageWriter<'c, 'd> {
    channel: &'c Channel,
    dest: NodeId,
    pending: Vec<&'d [u8]>,
    /// When set, the conduit stays locked for the whole message. Required
    /// whenever another thread may send on the same conduit (on gateway
    /// nodes the forwarding engine shares outgoing conduits with the
    /// application), so messages cannot interleave.
    guard: Option<RtLockGuard<'c, Box<dyn Conduit>>>,
    finished: bool,
}

impl<'c, 'd> MessageWriter<'c, 'd> {
    pub(crate) fn new(channel: &'c Channel, dest: NodeId) -> Self {
        MessageWriter {
            channel,
            dest,
            pending: Vec::new(),
            guard: None,
            finished: false,
        }
    }

    /// Create a writer that holds the destination conduit exclusively until
    /// `end_packing` (whole-message atomicity).
    pub(crate) fn new_exclusive(channel: &'c Channel, dest: NodeId) -> Result<Self> {
        let guard = channel.lock_conduit(dest)?;
        Ok(MessageWriter {
            channel,
            dest,
            pending: Vec::new(),
            guard: Some(guard),
            finished: false,
        })
    }

    /// Send a raw control packet on this writer's connection, under the
    /// whole-message guard when one is held (virtual-channel notes).
    pub(crate) fn send_control(&mut self, parts: &[&[u8]]) -> Result<()> {
        match self.guard.as_mut() {
            Some(g) => {
                let bytes: usize = parts.iter().map(|p| p.len()).sum();
                g.send(parts)?;
                self.channel.stats().on_send(self.dest.0, bytes);
                Ok(())
            }
            None => self.channel.send_packet(self.dest, parts),
        }
    }

    /// The destination rank.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Append a data block (`mad_pack`). Depending on the flags the block
    /// is transmitted immediately or aggregated with its successors.
    pub fn pack(&mut self, data: &'d [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        self.pending.push(data);
        if plan::flush_after(send, recv) {
            self.flush()?;
        }
        Ok(())
    }

    /// Transmit everything still pending as one group.
    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let caps = self.channel.caps();
        let lens: Vec<usize> = self.pending.iter().map(|p| p.len()).collect();
        let total: usize = lens.iter().sum();
        let packets = plan::packetize(&lens, caps.max_packet, caps.max_gather);
        if !packets.is_empty() {
            let _flush = trace_span!(
                self.channel.tracer(),
                "bmm",
                "flush",
                "dest" = self.dest.0 as u64,
                "bytes" = total as u64,
            );
            // Use the whole-message guard when held; otherwise lock per
            // flushed group.
            let mut transient;
            let conduit: &mut Box<dyn Conduit> = match self.guard.as_mut() {
                Some(g) => g,
                None => {
                    transient = self.channel.lock_conduit(self.dest)?;
                    &mut transient
                }
            };
            for packet in packets {
                let parts: Vec<&[u8]> = packet
                    .iter()
                    .map(|seg| &self.pending[seg.part][seg.offset..seg.offset + seg.len])
                    .collect();
                let bytes: usize = parts.iter().map(|p| p.len()).sum();
                conduit.send(&parts)?;
                self.channel.stats().on_send(self.dest.0, bytes);
            }
        }
        self.pending.clear();
        Ok(())
    }

    /// Finalize the message (`mad_end_packing`): flush the last group. On
    /// return the whole message has been handed to the network.
    pub fn end_packing(mut self) -> Result<()> {
        // Finalization was attempted: even on error the message is over
        // (the error already tells the caller the message is broken), so
        // Drop must not double-report.
        self.finished = true;
        let r = self.flush();
        self.guard = None; // release the whole-message lock
        r
    }
}

impl Drop for MessageWriter<'_, '_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("MessageWriter dropped without end_packing");
        }
    }
}

/// Incoming message under extraction (`mad_begin_unpacking` …
/// `mad_end_unpacking`).
pub struct MessageReader<'c> {
    channel: &'c Channel,
    source: NodeId,
    /// Bytes received beyond the last destination boundary, awaiting the
    /// next `unpack`.
    stash: Vec<u8>,
    stash_off: usize,
    finished: bool,
}

impl<'c> MessageReader<'c> {
    pub(crate) fn new(channel: &'c Channel, source: NodeId) -> Self {
        MessageReader {
            channel,
            source,
            stash: Vec::new(),
            stash_off: 0,
            finished: false,
        }
    }

    /// The rank this message is being received from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Receive the next block into `dst` (`mad_unpack`). Must mirror the
    /// sender's `pack` in order, length, and flags. The data is valid when
    /// the call returns (for [`RecvMode::Cheaper`] blocks this may mean
    /// waiting for the sender's next flush).
    pub fn unpack(&mut self, dst: &mut [u8], _send: SendMode, _recv: RecvMode) -> Result<()> {
        let _unpack = trace_span!(
            self.channel.tracer(),
            "bmm",
            "unpack",
            "source" = self.source.0 as u64,
            "bytes" = dst.len() as u64,
        );
        let mut cursor = 0;
        while cursor < dst.len() {
            // Serve spilled bytes first; this double handling is charged.
            if self.stash_off < self.stash.len() {
                let take = (self.stash.len() - self.stash_off).min(dst.len() - cursor);
                dst[cursor..cursor + take]
                    .copy_from_slice(&self.stash[self.stash_off..self.stash_off + take]);
                self.stash_off += take;
                cursor += take;
                self.channel.runtime().charge_copy(take);
                if self.stash_off == self.stash.len() {
                    self.stash.clear();
                    self.stash_off = 0;
                }
                continue;
            }
            // Adopt the wire buffer into the session pool so its memory is
            // recycled once the bytes are copied out below.
            let packet = self
                .channel
                .runtime()
                .pool()
                .adopt(self.channel.lock_conduit(self.source)?.recv_owned()?);
            self.channel.stats().on_recv(self.source.0, packet.len());
            let take = packet.len().min(dst.len() - cursor);
            dst[cursor..cursor + take].copy_from_slice(&packet[..take]);
            cursor += take;
            if take < packet.len() {
                // The packet crosses the destination boundary: stash the
                // tail for the following unpack calls.
                self.stash.extend_from_slice(&packet[take..]);
            }
        }
        Ok(())
    }

    /// Finalize the message (`mad_end_unpacking`). Fails if the sender
    /// transmitted more bytes than were unpacked — a sequence mismatch.
    pub fn end_unpacking(mut self) -> Result<()> {
        self.finished = true;
        if self.stash_off < self.stash.len() {
            return Err(MadError::SequenceMismatch(format!(
                "{} unconsumed bytes at end of message",
                self.stash.len() - self.stash_off
            )));
        }
        Ok(())
    }
}

impl Drop for MessageReader<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("MessageReader dropped without end_unpacking");
        }
    }
}
