//! The `mad_pack`/`mad_unpack` flag pairs (paper §2.1.2).
//!
//! Every packed data block carries two constraints, one per side. They are
//! part of the message contract: the receiver must unpack with the same
//! flags, in the same order — Madeleine messages are deliberately not
//! self-described on regular channels.

/// Emission constraint: when may the *sender's* buffer be reused?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendMode {
    /// The application may modify the buffer as soon as `pack` returns, so
    /// the library must transmit (or copy) the block immediately.
    Safer,
    /// The buffer stays untouched until `end_packing`, so the library may
    /// defer and aggregate the block with its neighbours.
    Later,
    /// Let the library choose the cheapest correct behaviour (treated as
    /// [`SendMode::Later`] by every current buffer-management module).
    Cheaper,
}

impl SendMode {
    /// True when the block's transmission may be deferred past `pack`.
    pub fn may_defer(self) -> bool {
        !matches!(self, SendMode::Safer)
    }

    /// Stable on-wire encoding (GTM self-description).
    pub fn to_wire(self) -> u8 {
        match self {
            SendMode::Safer => 0,
            SendMode::Later => 1,
            SendMode::Cheaper => 2,
        }
    }

    /// Decode [`SendMode::to_wire`].
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => SendMode::Safer,
            1 => SendMode::Later,
            2 => SendMode::Cheaper,
            _ => return None,
        })
    }
}

/// Reception constraint: when must the data be available to the *receiver*?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecvMode {
    /// The data must be usable as soon as `unpack` returns — required when
    /// later unpacking decisions depend on it (sizes, routes, headers).
    /// Forces a flush: the block and everything aggregated before it are
    /// transmitted immediately.
    Express,
    /// The data is only guaranteed valid after `end_unpacking`; the library
    /// may aggregate freely.
    Cheaper,
}

impl RecvMode {
    /// True when the receiver needs the block immediately at `unpack`.
    pub fn is_express(self) -> bool {
        matches!(self, RecvMode::Express)
    }

    /// Stable on-wire encoding (GTM self-description).
    pub fn to_wire(self) -> u8 {
        match self {
            RecvMode::Express => 0,
            RecvMode::Cheaper => 1,
        }
    }

    /// Decode [`RecvMode::to_wire`].
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => RecvMode::Express,
            1 => RecvMode::Cheaper,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for m in [SendMode::Safer, SendMode::Later, SendMode::Cheaper] {
            assert_eq!(SendMode::from_wire(m.to_wire()), Some(m));
        }
        for m in [RecvMode::Express, RecvMode::Cheaper] {
            assert_eq!(RecvMode::from_wire(m.to_wire()), Some(m));
        }
        assert_eq!(SendMode::from_wire(9), None);
        assert_eq!(RecvMode::from_wire(9), None);
    }

    #[test]
    fn deferral_rules() {
        assert!(!SendMode::Safer.may_defer());
        assert!(SendMode::Later.may_defer());
        assert!(SendMode::Cheaper.may_defer());
        assert!(RecvMode::Express.is_express());
        assert!(!RecvMode::Cheaper.is_express());
    }
}
