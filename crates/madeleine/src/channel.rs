//! Channels and connections (paper §2.1.2).
//!
//! A [`Channel`] is a *closed world for communication*: it is bound to one
//! network (protocol + adapter) and owns one in-order point-to-point
//! connection ([`Conduit`]) per peer. In-order delivery is guaranteed only
//! within a channel, exactly as in Madeleine.
//!
//! The channel also provides the *message scrutation* primitive the paper's
//! gateway needs (§2.2.2): all conduits of one channel share an arrival
//! event, so a thread can block for "a packet from anyone" and then pick the
//! ready peer deterministically.

use std::collections::BTreeMap;
use std::sync::Arc;

use mad_trace::{trace_span, ChannelStats, Tracer};

use crate::conduit::{Conduit, DriverCaps};
use crate::error::{MadError, Result};
use crate::message::{MessageReader, MessageWriter};
use crate::runtime::{RtEvent, RtLock, RtLockGuard, Runtime};
use crate::types::{ChannelId, NetworkId, NodeId};

/// A communication channel over one network, seen from one node.
pub struct Channel {
    id: ChannelId,
    label: String,
    network: NetworkId,
    rank: NodeId,
    caps: DriverCaps,
    conduits: BTreeMap<NodeId, RtLock<Box<dyn Conduit>>>,
    recv_event: Arc<dyn RtEvent>,
    runtime: Arc<dyn Runtime>,
    stats: Arc<ChannelStats>,
    tracer: Tracer,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("id", &self.id)
            .field("label", &self.label)
            .field("network", &self.network)
            .field("rank", &self.rank)
            .field("driver", &self.caps.name)
            .field("peers", &self.peers().collect::<Vec<_>>())
            .finish()
    }
}

impl Channel {
    /// Assemble a channel from its conduits (session-bootstrap use).
    /// `label` names the channel in traces and counter dumps.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        id: ChannelId,
        label: impl Into<String>,
        network: NetworkId,
        rank: NodeId,
        caps: DriverCaps,
        conduits: BTreeMap<NodeId, Box<dyn Conduit>>,
        recv_event: Arc<dyn RtEvent>,
        runtime: Arc<dyn Runtime>,
    ) -> Self {
        let tracer = runtime.tracer();
        Channel {
            id,
            label: label.into(),
            network,
            rank,
            caps,
            conduits: conduits
                .into_iter()
                .map(|(k, v)| (k, RtLock::new(&*runtime, v)))
                .collect(),
            recv_event,
            runtime,
            stats: Arc::new(ChannelStats::new()),
            tracer,
        }
    }

    /// This channel's identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel's label in traces and counter dumps.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Traffic counters for this channel (always live, cheap to read
    /// mid-run).
    pub fn stats(&self) -> &Arc<ChannelStats> {
        &self.stats
    }

    /// The tracer this channel records into (disabled unless the
    /// session's runtime was built with one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The network this channel is bound to.
    pub fn network(&self) -> NetworkId {
        self.network
    }

    /// The local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// Capabilities of the underlying driver.
    pub fn caps(&self) -> DriverCaps {
        self.caps
    }

    /// The execution runtime (cost accounting, events).
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.runtime
    }

    /// Peers reachable on this channel, in rank order.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.conduits.keys().copied()
    }

    /// Lock the conduit to `peer`. The lock blocks through the runtime so
    /// contention stays visible to a virtual clock. A contended acquire
    /// is recorded as a `conduit/hold-wait` span.
    pub(crate) fn lock_conduit(&self, peer: NodeId) -> Result<RtLockGuard<'_, Box<dyn Conduit>>> {
        let lock = self
            .conduits
            .get(&peer)
            .ok_or(MadError::UnknownPeer(peer))?;
        if let Some(guard) = lock.try_lock() {
            return Ok(guard);
        }
        let _wait = trace_span!(self.tracer, "conduit", "hold-wait", "peer" = peer.0 as u64);
        Ok(lock.lock())
    }

    /// Send one raw packet to `peer` (control traffic: notes, GTM frames).
    pub(crate) fn send_packet(&self, peer: NodeId, parts: &[&[u8]]) -> Result<()> {
        let bytes: usize = parts.iter().map(|p| p.len()).sum();
        self.lock_conduit(peer)?.send(parts)?;
        self.stats.on_send(peer.0, bytes);
        Ok(())
    }

    /// Begin building a message for `dest` (the paper's
    /// `mad_begin_packing`). One message at a time per destination: packets
    /// of concurrently built messages to the same peer would interleave.
    pub fn begin_packing(&self, dest: NodeId) -> Result<MessageWriter<'_, '_>> {
        if !self.conduits.contains_key(&dest) {
            return Err(MadError::UnknownPeer(dest));
        }
        Ok(MessageWriter::new(self, dest))
    }

    /// Like [`Channel::begin_packing`], but holding the destination conduit
    /// exclusively until `end_packing`, so concurrent senders on the same
    /// conduit (the gateway engine) serialize at message granularity.
    pub fn begin_packing_exclusive(&self, dest: NodeId) -> Result<MessageWriter<'_, '_>> {
        MessageWriter::new_exclusive(self, dest)
    }

    /// Begin receiving a message from a specific peer
    /// (`mad_begin_unpacking` with a known source).
    pub fn begin_unpacking_from(&self, source: NodeId) -> Result<MessageReader<'_>> {
        if !self.conduits.contains_key(&source) {
            return Err(MadError::UnknownPeer(source));
        }
        Ok(MessageReader::new(self, source))
    }

    /// Block until any peer has a message headed our way, then begin
    /// receiving it. Peers are scanned in rank order for determinism.
    pub fn begin_unpacking(&self) -> Result<MessageReader<'_>> {
        let source = self.select_ready()?;
        Ok(MessageReader::new(self, source))
    }

    /// Block until some conduit has a pending packet; returns its peer.
    /// Fails with [`MadError::Disconnected`] once every peer is gone.
    pub(crate) fn select_ready(&self) -> Result<NodeId> {
        self.select_ready_until(|| false)
    }

    /// True if any conduit of this channel holds a received-but-unread
    /// packet right now. The session-wide quiescence check scans this
    /// across every gateway's inbound channel at teardown: a gateway may
    /// not stop while a peer still has backlog queued for it to relay.
    pub(crate) fn has_pending(&self) -> bool {
        self.conduits.values().any(|c| c.lock().ready())
    }

    /// Like [`Channel::select_ready`], but also gives up (with
    /// [`MadError::Disconnected`]) when `stop` returns true and nothing is
    /// pending. Gateways need this: conduits are bidirectional, so two
    /// gateways listening on opposite ends of one channel keep each other's
    /// receive sides open forever — an external stop signal breaks the
    /// cycle at session teardown.
    pub(crate) fn select_ready_until(&self, stop: impl Fn() -> bool) -> Result<NodeId> {
        loop {
            let seen = self.recv_event.epoch();
            let mut all_closed = !self.conduits.is_empty();
            for (&peer, conduit) in &self.conduits {
                let c = conduit.lock();
                if c.ready() {
                    return Ok(peer);
                }
                if !c.closed() {
                    all_closed = false;
                }
            }
            if all_closed || stop() {
                return Err(MadError::Disconnected);
            }
            self.recv_event.wait_past(seen);
        }
    }

    /// Like [`Channel::select_ready_until`], but round-robin instead of
    /// rank-biased: the scan starts just past `after` and wraps, so a
    /// gateway polling loop that feeds back the previously served peer
    /// gives every inbound connection a fair turn at fragment granularity
    /// — a peer with a long stream of pending packets can no longer shadow
    /// higher-ranked peers.
    ///
    /// `wait_timeout_ns` bounds each idle wait: `None` waits indefinitely;
    /// `Some(ns)` waits at most that long before rescanning; `Some(0)`
    /// gives up immediately with [`MadError::Disconnected`]. Gateways feed
    /// their teardown drain deadline through it, so a stream whose source
    /// died silently (and whose end packet will therefore never arrive)
    /// cannot hang the session forever.
    pub(crate) fn select_ready_after(
        &self,
        after: Option<NodeId>,
        stop: impl Fn() -> bool,
        wait_timeout_ns: impl Fn() -> Option<u64>,
    ) -> Result<NodeId> {
        loop {
            let seen = self.recv_event.epoch();
            let mut all_closed = !self.conduits.is_empty();
            let mut first_ready = None;
            let mut chosen = None;
            for (&peer, conduit) in &self.conduits {
                let c = conduit.lock();
                if c.ready() {
                    if first_ready.is_none() {
                        first_ready = Some(peer);
                    }
                    if chosen.is_none() && after.is_none_or(|a| peer > a) {
                        chosen = Some(peer);
                    }
                }
                if !c.closed() {
                    all_closed = false;
                }
            }
            if let Some(peer) = chosen.or(first_ready) {
                return Ok(peer);
            }
            if all_closed || stop() {
                return Err(MadError::Disconnected);
            }
            match wait_timeout_ns() {
                None => {
                    self.recv_event.wait_past(seen);
                }
                Some(0) => return Err(MadError::Disconnected),
                Some(ns) => {
                    // Timeout or signal, either way rescan: the next turn
                    // of the loop re-evaluates the deadline.
                    let _ = self.recv_event.wait_past_timeout(seen, ns);
                }
            }
        }
    }

    /// One non-blocking round-robin scan: the poll-mode analog of
    /// [`Channel::select_ready_after`]. Returns `Ok(Some(peer))` when a
    /// conduit has a pending packet (preferring the first peer past
    /// `after`, wrapping), `Ok(None)` when nothing is pending but some
    /// conduit is still open, and [`MadError::Disconnected`] once every
    /// peer is gone. Reactor tasks call this instead of blocking and rely
    /// on the channel's arrival event to stir them when traffic lands.
    pub(crate) fn try_select_ready_after(&self, after: Option<NodeId>) -> Result<Option<NodeId>> {
        let mut all_closed = !self.conduits.is_empty();
        let mut first_ready = None;
        let mut chosen = None;
        for (&peer, conduit) in &self.conduits {
            let c = conduit.lock();
            if c.ready() {
                if first_ready.is_none() {
                    first_ready = Some(peer);
                }
                if chosen.is_none() && after.is_none_or(|a| peer > a) {
                    chosen = Some(peer);
                }
            }
            if !c.closed() {
                all_closed = false;
            }
        }
        if let Some(peer) = chosen.or(first_ready) {
            return Ok(Some(peer));
        }
        if all_closed {
            return Err(MadError::Disconnected);
        }
        Ok(None)
    }

    /// Non-blocking readiness probe for one specific peer (the reactor
    /// analog of the pinned `exclusive_streams` receive). `Ok(true)` when
    /// a packet is pending, `Ok(false)` when not, [`MadError::Disconnected`]
    /// when the conduit is gone.
    pub(crate) fn conduit_ready(&self, peer: NodeId) -> Result<bool> {
        let conduit = self
            .conduits
            .get(&peer)
            .ok_or(MadError::UnknownPeer(peer))?;
        let c = conduit.lock();
        if c.ready() {
            return Ok(true);
        }
        if c.closed() {
            return Err(MadError::Disconnected);
        }
        Ok(false)
    }

    /// The shared arrival event of this channel's conduits.
    pub fn recv_event(&self) -> &Arc<dyn RtEvent> {
        &self.recv_event
    }
}
