//! In-process session bootstrap.
//!
//! The original Madeleine launches one process per node; this reproduction
//! runs the whole session in one process with one thread per node, which is
//! what lets the hardware model time everything on a single virtual clock.
//! [`SessionBuilder`] declares networks (driver + members), plain channels,
//! and virtual channels; [`SessionBuilder::run`] materializes every conduit
//! mesh, spawns gateway engines on nodes attached to several networks, runs
//! the application closure on every node, and tears the session down in
//! dependency order.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mad_util::sync::Mutex;

use crate::channel::Channel;
use crate::conduit::{Conduit, Driver};
use crate::credit::{CreditLedger, FlowControl};
use crate::gateway::{spawn_gateway, GatewayConfig, GatewayHandles, GatewayStop};
use crate::metrics_plane::{self, MetricsOptions, MetricsPlane, Watchdog, WatchdogTask};
use crate::multipath::{MultiPath, MultipathConfig};
use crate::routing::{self, NetworkMembers};
use crate::runtime::{RtEvent, Runtime, StdRuntime};
use crate::types::{ChannelId, NetworkId, NodeId};
use crate::vchannel::VirtualChannel;

/// A session-wide rendezvous point for application code (benchmarks use it
/// to synchronize measurement phases).
#[derive(Clone)]
pub struct SessionBarrier {
    inner: Arc<BarrierInner>,
}

struct BarrierInner {
    state: Mutex<(usize, u64)>, // (arrived, generation)
    event: Arc<dyn RtEvent>,
    n: usize,
}

impl SessionBarrier {
    /// A barrier for `n` participants.
    pub fn new(rt: &dyn Runtime, n: usize) -> Self {
        SessionBarrier {
            inner: Arc::new(BarrierInner {
                state: Mutex::new((0, 0)),
                event: rt.event(),
                n,
            }),
        }
    }

    /// Wait until all `n` participants have arrived.
    pub fn wait(&self) {
        let generation = {
            let mut st = self.inner.state.lock();
            st.0 += 1;
            if st.0 == self.inner.n {
                st.0 = 0;
                st.1 += 1;
                drop(st);
                self.inner.event.bump();
                return;
            }
            st.1
        };
        loop {
            let seen = self.inner.event.epoch();
            if self.inner.state.lock().1 != generation {
                return;
            }
            self.inner.event.wait_past(seen);
        }
    }
}

/// Per-gateway forwarding statistics returned by
/// [`SessionBuilder::run_with_gateway_stats`]: (virtual channel name,
/// gateway rank, counters).
pub type GatewayStatsReport = Vec<(String, NodeId, Arc<crate::gateway::GatewayStats>)>;

/// Options of one virtual channel declaration.
#[derive(Debug, Clone, Default)]
pub struct VcOptions {
    /// Route-wide fragment size; defaults to the minimum preferred MTU of
    /// the spanned drivers.
    pub mtu: Option<usize>,
    /// Gateway engine tuning.
    pub gateway: GatewayConfig,
    /// Multi-path routing plane: when set, topologies with parallel
    /// gateways between the same cluster pair stripe traffic across them
    /// and fail over when a gateway dies. `None` (the default) keeps the
    /// legacy single-path router, byte-identical on the wire.
    pub multipath: Option<MultipathConfig>,
    /// Live telemetry plane: when set, every member node gets a metrics
    /// registry wired into the engine hot paths, answers in-band kind-10
    /// snapshot pulls, and (by default) runs a health watchdog on each
    /// gateway node. `None` (the default) compiles the recording out of
    /// every hot path.
    pub metrics: Option<MetricsOptions>,
    /// Dynamic membership plane: when set, every member node gets a
    /// [`crate::membership::MembershipPlane`] speaking the epoch-stamped
    /// kind-11 join/leave/rejoin protocol over the channel's special
    /// conduits. `None` (the default) keeps the static-membership wire
    /// behaviour byte-identical.
    pub membership: Option<crate::membership::MembershipOptions>,
    /// Self-tuning control plane: when set, the channel's credit window
    /// and forwarding batch cap become a live [`crate::control::Tuning`]
    /// retuned online by one [`crate::control::Controller`] per gateway
    /// node. `None` (the default) keeps the static bootstrap knobs.
    pub controller: Option<crate::control::ControllerConfig>,
}

struct NetworkDef {
    name: String,
    driver: Arc<dyn Driver>,
    members: Vec<NodeId>,
}

struct ChannelDef {
    name: String,
    net: usize,
}

struct VcDef {
    name: String,
    nets: Vec<usize>,
    options: VcOptions,
}

/// Declarative builder of an in-process Madeleine session.
pub struct SessionBuilder {
    n_nodes: u32,
    runtime: Arc<dyn Runtime>,
    networks: Vec<NetworkDef>,
    channels: Vec<ChannelDef>,
    vchannels: Vec<VcDef>,
}

impl SessionBuilder {
    /// A session of `n_nodes` ranks on the real-threads runtime.
    pub fn new(n_nodes: u32) -> Self {
        assert!(n_nodes >= 1, "a session needs at least one node");
        SessionBuilder {
            n_nodes,
            runtime: StdRuntime::shared(),
            networks: Vec::new(),
            channels: Vec::new(),
            vchannels: Vec::new(),
        }
    }

    /// Replace the runtime (e.g. with the simulated one).
    pub fn with_runtime(mut self, rt: Arc<dyn Runtime>) -> Self {
        self.runtime = rt;
        self
    }

    /// Record the session into `tracer` by installing a traced
    /// real-threads runtime (binds the tracer's clock to the runtime's
    /// monotonic epoch). For simulated sessions attach the tracer
    /// through the simulated runtime instead (`Testbed::with_trace`).
    pub fn with_tracer(self, tracer: mad_trace::Tracer) -> Self {
        self.with_runtime(StdRuntime::traced(tracer))
    }

    /// The session's runtime.
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.runtime
    }

    /// Declare a network: a driver plus the ranks attached to it.
    pub fn network(
        &mut self,
        name: impl Into<String>,
        driver: Arc<dyn Driver>,
        members: &[u32],
    ) -> NetworkId {
        let members: Vec<NodeId> = members.iter().map(|&m| NodeId(m)).collect();
        for m in &members {
            assert!(m.0 < self.n_nodes, "network member {m} out of range");
        }
        assert!(members.len() >= 2, "a network needs at least two members");
        let name = name.into();
        assert!(
            !self.networks.iter().any(|n| n.name == name),
            "duplicate network name `{name}`"
        );
        self.networks.push(NetworkDef {
            name,
            driver,
            members,
        });
        NetworkId(self.networks.len() as u32 - 1)
    }

    /// Declare a plain channel over one network.
    pub fn channel(&mut self, name: impl Into<String>, net: NetworkId) {
        assert!((net.0 as usize) < self.networks.len(), "unknown network");
        self.channels.push(ChannelDef {
            name: name.into(),
            net: net.0 as usize,
        });
    }

    /// Declare a virtual channel spanning several networks.
    pub fn vchannel(&mut self, name: impl Into<String>, nets: &[NetworkId], options: VcOptions) {
        assert!(
            !nets.is_empty(),
            "a virtual channel spans at least one network"
        );
        for n in nets {
            assert!((n.0 as usize) < self.networks.len(), "unknown network");
        }
        self.vchannels.push(VcDef {
            name: name.into(),
            nets: nets.iter().map(|n| n.0 as usize).collect(),
            options,
        });
    }

    /// Materialize the session, run `f` on every node, and tear down.
    /// Returns the per-rank results.
    pub fn run<T, F>(self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Node) -> T + Send + Sync + 'static,
    {
        self.run_with_gateway_stats(f).0
    }

    /// Like [`SessionBuilder::run`], additionally returning the forwarding
    /// statistics of every gateway engine, keyed by (virtual channel name,
    /// gateway rank).
    pub fn run_with_gateway_stats<T, F>(self, f: F) -> (Vec<T>, GatewayStatsReport)
    where
        T: Send + 'static,
        F: Fn(Node) -> T + Send + Sync + 'static,
    {
        let n = self.n_nodes as usize;
        let runtime = self.runtime.clone();
        let guard = runtime.setup_guard();

        // One arrival event per node, shared by all its conduits so a node
        // can block for "anything from anyone".
        let node_events: Vec<Arc<dyn RtEvent>> = (0..n).map(|_| runtime.event()).collect();

        let mut next_channel_id = 0u32;
        let mut alloc_channel_id = || {
            let id = ChannelId(next_channel_id);
            next_channel_id += 1;
            id
        };

        // Builds one channel over a network: a full conduit mesh among the
        // members, assembled into one per-node Channel.
        let build_channel =
            |id: ChannelId, label: String, net_idx: usize| -> HashMap<NodeId, Channel> {
                let def = &self.networks[net_idx];
                let mut per_node: HashMap<NodeId, BTreeMap<NodeId, Box<dyn Conduit>>> =
                    def.members.iter().map(|&m| (m, BTreeMap::new())).collect();
                for (i, &a) in def.members.iter().enumerate() {
                    for &b in def.members.iter().skip(i + 1) {
                        let (ca, cb) = def.driver.connect(
                            a,
                            b,
                            node_events[a.index()].clone(),
                            node_events[b.index()].clone(),
                        );
                        per_node.get_mut(&a).unwrap().insert(b, ca);
                        per_node.get_mut(&b).unwrap().insert(a, cb);
                    }
                }
                per_node
                    .into_iter()
                    .map(|(rank, conduits)| {
                        let ch = Channel::assemble(
                            id,
                            label.clone(),
                            NetworkId(net_idx as u32),
                            rank,
                            def.driver.caps(),
                            conduits,
                            node_events[rank.index()].clone(),
                            runtime.clone(),
                        );
                        (rank, ch)
                    })
                    .collect()
            };

        // Per-channel traffic counters, collected for the end-of-run
        // trace flush: (channel label, rank, counters).
        let mut channel_stats: Vec<(String, NodeId, Arc<mad_trace::ChannelStats>)> = Vec::new();

        // Plain channels.
        let mut plain: Vec<(String, HashMap<NodeId, Arc<Channel>>)> = Vec::new();
        for cdef in &self.channels {
            let id = alloc_channel_id();
            let built: HashMap<NodeId, Arc<Channel>> =
                build_channel(id, cdef.name.clone(), cdef.net)
                    .into_iter()
                    .map(|(k, v)| (k, Arc::new(v)))
                    .collect();
            for (&rank, ch) in &built {
                channel_stats.push((cdef.name.clone(), rank, ch.stats().clone()));
            }
            plain.push((cdef.name.clone(), built));
        }

        // Virtual channels: two real channels per network, routing tables,
        // gateway engines.
        let mut vcs: Vec<(String, HashMap<NodeId, Arc<VirtualChannel>>)> = Vec::new();
        let mut gateway_handles: Vec<GatewayHandles> = Vec::new();
        let mut gateway_stats: GatewayStatsReport = Vec::new();
        // Per-(virtual channel, node) writer-side protocol counters,
        // flushed to `proto:` trace tracks at teardown.
        let mut proto_stats: Vec<(String, NodeId, Arc<crate::credit::ProtoStats>)> = Vec::new();
        let mut route_planes: Vec<Arc<MultiPath>> = Vec::new();
        let gateway_stop = Arc::new(GatewayStop::new());
        // Live telemetry: one registry per *node* (shared by all its
        // telemetry-enabled virtual channels), one plane per (virtual
        // channel, node), plus the auxiliary threads driving watchdogs,
        // endpoint responders, and samplers.
        let mut node_registries: HashMap<NodeId, Arc<mad_metrics::Registry>> = HashMap::new();
        let mut metrics_planes: Vec<Arc<MetricsPlane>> = Vec::new();
        let mut member_planes: Vec<Arc<crate::membership::MembershipPlane>> = Vec::new();
        let mut aux_threads = Vec::new();
        let mut samplers_spawned: std::collections::HashSet<NodeId> =
            std::collections::HashSet::new();
        // One shared reactor per gateway *node*, built lazily on the first
        // reactor-mode virtual channel that needs it: every virtual channel
        // of the node multiplexes onto the same fixed worker pool, which is
        // the engine's whole scaling argument. The pool parks on the node's
        // arrival event, so it is stirred by exactly the traffic it serves.
        let mut reactors: HashMap<NodeId, Arc<crate::gateway::GatewayReactor>> = HashMap::new();
        for vdef in &self.vchannels {
            let nm: Vec<NetworkMembers> = vdef
                .nets
                .iter()
                .map(|&i| NetworkMembers {
                    net: NetworkId(i as u32),
                    members: self.networks[i].members.clone(),
                })
                .collect();

            // Build the per-network channel pairs.
            let mut regular_by_node: HashMap<NodeId, BTreeMap<NetworkId, Arc<Channel>>> =
                HashMap::new();
            let mut special_by_node: HashMap<NodeId, BTreeMap<NetworkId, Arc<Channel>>> =
                HashMap::new();
            for &net_idx in &vdef.nets {
                let net_id = NetworkId(net_idx as u32);
                let net_name = &self.networks[net_idx].name;
                let reg_id = alloc_channel_id();
                let reg_label = format!("{}.regular.{net_name}", vdef.name);
                for (rank, ch) in build_channel(reg_id, reg_label.clone(), net_idx) {
                    let ch = Arc::new(ch);
                    channel_stats.push((reg_label.clone(), rank, ch.stats().clone()));
                    regular_by_node.entry(rank).or_default().insert(net_id, ch);
                }
                let spec_id = alloc_channel_id();
                let spec_label = format!("{}.special.{net_name}", vdef.name);
                for (rank, ch) in build_channel(spec_id, spec_label.clone(), net_idx) {
                    let ch = Arc::new(ch);
                    channel_stats.push((spec_label.clone(), rank, ch.stats().clone()));
                    special_by_node.entry(rank).or_default().insert(net_id, ch);
                }
            }

            // Route-wide MTU.
            let min_pref = vdef
                .nets
                .iter()
                .map(|&i| self.networks[i].driver.caps().preferred_mtu)
                .min()
                .expect("at least one network");
            let max_pkt = vdef
                .nets
                .iter()
                .map(|&i| self.networks[i].driver.caps().max_packet)
                .min()
                .expect("at least one network");
            let mtu = vdef.options.mtu.unwrap_or(min_pref);
            assert!(
                mtu <= max_pkt,
                "virtual channel `{}` MTU {mtu} exceeds the smallest driver packet limit {max_pkt}",
                vdef.name
            );

            // One credit ledger per (virtual channel, node), shared by the
            // node's gateway engine (if any) and its sending side, keyed
            // off the node's arrival event so a blocked writer wakes on
            // either a conduit arrival or a credit deposit. The ledger
            // exists even without a credit window: it doubles as the
            // cancellation bus for fault degradation.
            let ledgers: HashMap<NodeId, Arc<CreditLedger>> = regular_by_node
                .keys()
                .map(|&rank| (rank, CreditLedger::new(node_events[rank.index()].clone())))
                .collect();

            // Multi-path routing plane, shared by every node of the
            // virtual channel so the cost model is session-global.
            let mp = vdef.options.multipath.map(|cfg| {
                if matches!(cfg.policy, mad_route::StripePolicy::PerFragment) {
                    assert!(
                        vdef.options.gateway.credit_window.is_none(),
                        "virtual channel `{}`: per-fragment striping is \
                         incompatible with credit flow control (credits are \
                         granted per path, fragments interleave across paths)",
                        vdef.name
                    );
                }
                let mp = Arc::new(MultiPath::new(&nm, cfg));
                mp.set_trace(runtime.tracer(), &vdef.name);
                mp
            });

            // Telemetry planes: one per member node, answering in-band
            // kind-10 pulls on the channel's special conduits and feeding
            // the node's live gauges.
            let planes: HashMap<NodeId, Arc<MetricsPlane>> = if vdef.options.metrics.is_some() {
                regular_by_node
                    .keys()
                    .map(|&rank| {
                        let registry = node_registries.entry(rank).or_default().clone();
                        let plane = MetricsPlane::new(
                            rank,
                            registry,
                            routing::compute_routes(&nm, rank),
                            special_by_node[&rank].clone(),
                            node_events[rank.index()].clone(),
                            runtime.clone(),
                        );
                        if let Some(mp) = &mp {
                            plane.register_multipath(mp);
                        }
                        metrics_planes.push(plane.clone());
                        (rank, plane)
                    })
                    .collect()
            } else {
                HashMap::new()
            };

            // Membership planes: one per member node, speaking the
            // kind-11 protocol on the channel's special conduits.
            let members: HashMap<NodeId, Arc<crate::membership::MembershipPlane>> =
                if vdef.options.membership.is_some() {
                    regular_by_node
                        .keys()
                        .map(|&rank| {
                            let plane = crate::membership::MembershipPlane::new(
                                rank,
                                routing::compute_routes(&nm, rank),
                                special_by_node[&rank].clone(),
                                node_events[rank.index()].clone(),
                                runtime.clone(),
                                &vdef.name,
                            );
                            if let Some(mp) = &mp {
                                plane.register_multipath(mp);
                            }
                            member_planes.push(plane.clone());
                            (rank, plane)
                        })
                        .collect()
                } else {
                    HashMap::new()
                };

            // The channel's live operating point, shared by every gateway
            // controller and hot-path reader. Seeded from the bootstrap
            // knobs; absent (all reads fall back to the static config)
            // when no controller governs the channel.
            let tuning = vdef.options.controller.map(|_| {
                crate::control::Tuning::new(
                    vdef.options.gateway.credit_window,
                    vdef.options.gateway.max_batch,
                    vdef.options.gateway.rendezvous_threshold,
                )
            });

            // Gateway engines.
            let gateways = routing::gateways(&nm);
            for &gw in &gateways {
                let reactor = (vdef.options.gateway.engine == crate::gateway::EngineKind::Reactor)
                    .then(|| {
                        reactors
                            .entry(gw)
                            .or_insert_with(|| {
                                crate::gateway::GatewayReactor::new(
                                    gw,
                                    &runtime,
                                    node_events[gw.index()].clone(),
                                    vdef.options.gateway.reactor_workers,
                                )
                            })
                            .clone()
                    });
                let handles = spawn_gateway(
                    gw,
                    &vdef.name,
                    regular_by_node[&gw].clone(),
                    special_by_node[&gw].clone(),
                    routing::compute_routes(&nm, gw),
                    vdef.options.gateway,
                    runtime.clone(),
                    gateway_stop.clone(),
                    ledgers[&gw].clone(),
                    reactor.as_ref(),
                    planes.get(&gw).cloned(),
                    members.get(&gw).cloned(),
                    tuning.clone(),
                );
                if let Some(mp) = &mp {
                    mp.register_gateway(gw, handles.stats().clone());
                }
                if let Some(plane) = planes.get(&gw) {
                    plane.register_gateway(handles.stats());
                    if let Some(r) = &reactor {
                        r.set_poll_histogram(
                            plane.registry().histogram("reactor_poll_ns").shared(),
                        );
                    }
                    // Health watchdog: a dedicated thread in threaded
                    // mode, a timer task on the node's shared worker pool
                    // in reactor mode.
                    if let Some(wd_cfg) = vdef.options.metrics.as_ref().and_then(|m| m.watchdog) {
                        let wd = Watchdog::new(
                            wd_cfg,
                            handles.stats().clone(),
                            mp.clone(),
                            plane.registry(),
                            runtime.tracer(),
                            format!("health:{}@{}", vdef.name, gw.0),
                        );
                        match &reactor {
                            Some(r) => {
                                r.spawn_task(Box::new(WatchdogTask::new(wd, gateway_stop.clone())));
                            }
                            None => {
                                let rt = runtime.clone();
                                let ev = node_events[gw.index()].clone();
                                let stop = gateway_stop.clone();
                                aux_threads.push(runtime.spawn(
                                    format!("gw{}-{}-watchdog", gw.0, vdef.name),
                                    Box::new(move || metrics_plane::run_watchdog(wd, rt, ev, stop)),
                                ));
                            }
                        }
                    }
                }
                // Self-tuning controller: like the watchdog, a dedicated
                // thread in threaded mode, a timer task on the node's
                // shared worker pool in reactor mode.
                if let (Some(ctl_cfg), Some(tuning)) = (vdef.options.controller, &tuning) {
                    let ctl = crate::control::Controller::new(
                        ctl_cfg,
                        tuning.clone(),
                        handles.stats().clone(),
                        runtime.tracer(),
                        format!("ctl:{}@{}", vdef.name, gw.0),
                    );
                    match &reactor {
                        Some(r) => {
                            r.spawn_task(Box::new(crate::control::ControllerTask::new(
                                ctl,
                                gateway_stop.clone(),
                            )));
                        }
                        None => {
                            let rt = runtime.clone();
                            let ev = node_events[gw.index()].clone();
                            let stop = gateway_stop.clone();
                            aux_threads.push(runtime.spawn(
                                format!("gw{}-{}-ctl", gw.0, vdef.name),
                                Box::new(move || crate::control::run_controller(ctl, rt, ev, stop)),
                            ));
                        }
                    }
                }
                gateway_stats.push((vdef.name.clone(), gw, handles.stats().clone()));
                gateway_handles.push(handles);
            }
            if let Some(mp) = &mp {
                route_planes.push(mp.clone());
            }

            // Endpoint responders: on non-gateway members nothing else
            // drains the special conduits between writer pumps, so pull
            // requests, membership events, and replies to this node's own
            // pulls would sit unread. Gateway nodes are served by their
            // engine instead. One responder per node covers both control
            // planes — either may be enabled without the other.
            if vdef.options.metrics.is_some() || vdef.options.membership.is_some() {
                for &rank in regular_by_node.keys() {
                    if gateways.contains(&rank) {
                        continue;
                    }
                    let chans: Vec<Arc<Channel>> =
                        special_by_node[&rank].values().cloned().collect();
                    let rt = runtime.clone();
                    let ev = node_events[rank.index()].clone();
                    let metrics = planes.get(&rank).cloned();
                    let member = members.get(&rank).cloned();
                    let ledger = ledgers[&rank].clone();
                    let stop = gateway_stop.clone();
                    aux_threads.push(runtime.spawn(
                        format!("resp-{}-{}", vdef.name, rank.0),
                        Box::new(move || {
                            metrics_plane::run_responder(
                                rt, ev, chans, ledger, stop, metrics, member,
                            )
                        }),
                    ));
                }
            }

            // Per-node exposition samplers (at most one per node even when
            // several virtual channels enable telemetry — they share the
            // node registry anyway).
            if let Some(mopts) = &vdef.options.metrics {
                if let Some(dir) = &mopts.dump_dir {
                    for (&rank, plane) in &planes {
                        if !samplers_spawned.insert(rank) {
                            continue;
                        }
                        let plane = plane.clone();
                        let dir = dir.clone();
                        let interval = mopts.effective_sample_interval_ns();
                        let stop = gateway_stop.clone();
                        aux_threads.push(runtime.spawn(
                            format!("metrics-dump-{}", rank.0),
                            Box::new(move || {
                                metrics_plane::run_sampler(plane, dir, interval, stop)
                            }),
                        ));
                    }
                }
            }

            // Per-node virtual channel objects.
            let mut per_node = HashMap::new();
            for (&rank, regular) in &regular_by_node {
                let flow = vdef.options.gateway.credit_window.map(|w| {
                    let proto = Arc::new(crate::credit::ProtoStats::default());
                    proto_stats.push((vdef.name.clone(), rank, proto.clone()));
                    FlowControl::new(
                        ledgers[&rank].clone(),
                        w,
                        vdef.options.gateway.credit_timeout_ns,
                    )
                    .with_metrics(planes.get(&rank).cloned())
                    .with_membership(members.get(&rank).cloned())
                    .with_tuning(tuning.clone())
                    .with_rendezvous(vdef.options.gateway.rendezvous_threshold)
                    .with_proto(Some(proto))
                });
                let vc = VirtualChannel::assemble(
                    vdef.name.clone(),
                    rank,
                    regular.clone(),
                    special_by_node[&rank].clone(),
                    routing::compute_routes(&nm, rank),
                    mtu,
                    node_events[rank.index()].clone(),
                    gateways.contains(&rank),
                    flow,
                    mp.clone(),
                    planes.get(&rank).cloned(),
                    members.get(&rank).cloned(),
                );
                per_node.insert(rank, Arc::new(vc));
            }
            vcs.push((vdef.name.clone(), per_node));
        }

        // Per-rank view of the gateway counters, so application code can
        // poll its own node's forwarding engine mid-run.
        let mut gw_stats_by_rank: HashMap<
            NodeId,
            HashMap<String, Arc<crate::gateway::GatewayStats>>,
        > = HashMap::new();
        for (vc, gw, st) in &gateway_stats {
            gw_stats_by_rank
                .entry(*gw)
                .or_default()
                .insert(vc.clone(), st.clone());
        }

        // Spawn the application on every node.
        let barrier = SessionBarrier::new(&*runtime, n);
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let mut app_threads = Vec::new();
        for rank in 0..n {
            let rank = NodeId(rank as u32);
            let channels: HashMap<String, Arc<Channel>> = plain
                .iter()
                .filter_map(|(name, map)| map.get(&rank).map(|c| (name.clone(), c.clone())))
                .collect();
            let vchannels: HashMap<String, Arc<VirtualChannel>> = vcs
                .iter()
                .filter_map(|(name, map)| map.get(&rank).map(|c| (name.clone(), c.clone())))
                .collect();
            let node = Node {
                rank,
                size: self.n_nodes,
                channels,
                vchannels,
                gateway_stats: gw_stats_by_rank.get(&rank).cloned().unwrap_or_default(),
                runtime: runtime.clone(),
                barrier: barrier.clone(),
            };
            let f = f.clone();
            let results = results.clone();
            app_threads.push(runtime.spawn(
                format!("node{}", rank.0),
                Box::new(move || {
                    let out = f(node);
                    results.lock()[rank.index()] = Some(out);
                }),
            ));
        }

        // Release the (possibly virtual) timeline and run to completion.
        drop(guard);
        drop(plain);
        drop(vcs);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for t in app_threads {
            if let Err(e) = t.join() {
                panic.get_or_insert(e);
            }
        }
        // With every application thread done, tell the gateway engines to
        // stop — but only once every in-flight stream has drained, so no
        // already-sent message is lost (two gateways listening on opposite
        // ends of one channel would otherwise keep each other's receive
        // sides open forever). If a node panicked, streams may never
        // complete: force the stop instead of hanging the teardown.
        gateway_stop.request_stop();
        if panic.is_some() {
            gateway_stop.force();
        }
        for ev in &node_events {
            ev.bump();
        }
        for g in gateway_handles {
            g.join();
        }
        // Auxiliary telemetry threads (watchdogs, responders, samplers)
        // exit once the stop latch is set and their node event bumps.
        for t in aux_threads {
            if let Err(e) = t.join() {
                panic.get_or_insert(e);
            }
        }
        // Every engine's tasks have completed; stop the shared reactor
        // pools and join their workers before surfacing any panic, so no
        // worker (a sim actor under virtual time) outlives the session. An
        // application panic recorded above still takes precedence over a
        // reactor-task panic.
        for r in reactors.values() {
            let r = r.clone();
            if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                r.shutdown_and_join()
            })) {
                panic.get_or_insert(e);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        // Flush the final per-channel and per-gateway counters into the
        // trace, one named track per channel/gateway instance.
        let tracer = runtime.tracer();
        if tracer.enabled() {
            for (label, rank, st) in &channel_stats {
                st.flush_to(&tracer, &format!("ch:{label}@{}", rank.0));
            }
            for (vc, gw, st) in &gateway_stats {
                let t = st.totals();
                let track = format!("gw:{vc}@{}", gw.0);
                tracer.count_on(&track, "gateway", "messages", t.messages as i64, &[]);
                tracer.count_on(&track, "gateway", "fragments", t.fragments as i64, &[]);
                tracer.count_on(
                    &track,
                    "gateway",
                    "fragment_bytes",
                    t.fragment_bytes as i64,
                    &[],
                );
                tracer.count_on(&track, "gateway", "stalls", t.stalls as i64, &[]);
                tracer.count_on(
                    &track,
                    "gateway",
                    "buffer_switches",
                    t.buffer_switches as i64,
                    &[],
                );
                tracer.count_on(
                    &track,
                    "gateway",
                    "credits_granted",
                    t.credits_granted as i64,
                    &[],
                );
                tracer.count_on(&track, "gateway", "cancelled", t.cancelled as i64, &[]);
                tracer.count_on(
                    &track,
                    "gateway",
                    "credit_timeouts",
                    t.credit_timeouts as i64,
                    &[],
                );
                tracer.count_on(&track, "gateway", "errors", t.errors as i64, &[]);
                tracer.count_on(&track, "gateway", "peak_held_bytes", t.peak_held_bytes, &[]);
                tracer.count_on(
                    &track,
                    "gateway",
                    "threads_spawned",
                    t.threads_spawned as i64,
                    &[],
                );
                // Copy-placement accounting, on the same `rt:` family the
                // A9 scaling sweep reads: where the scheduler put relay
                // copies and how busy each stage was.
                let rt = format!("rt:{vc}@{}", gw.0);
                tracer.count_on(&rt, "runtime", "copies_recv", t.copies_recv as i64, &[]);
                tracer.count_on(&rt, "runtime", "copies_flush", t.copies_flush as i64, &[]);
                tracer.count_on(
                    &rt,
                    "runtime",
                    "copy_idle_hits",
                    t.copy_idle_hits as i64,
                    &[],
                );
                tracer.count_on(
                    &rt,
                    "runtime",
                    "recv_busy_ns",
                    st.recv_busy_ns.load(std::sync::atomic::Ordering::Relaxed) as i64,
                    &[],
                );
                tracer.count_on(
                    &rt,
                    "runtime",
                    "flush_busy_ns",
                    st.flush_busy_ns.load(std::sync::atomic::Ordering::Relaxed) as i64,
                    &[],
                );
                // Gateway half of the protocol plane: the kind-12 control
                // exchanges this engine served (validated by `trace_check
                // --require-proto`).
                let proto = format!("proto:{vc}@{}", gw.0);
                tracer.count_on(&proto, "proto", "rts_relayed", t.rts_relayed as i64, &[]);
                tracer.count_on(&proto, "proto", "cts_sent", t.cts_sent as i64, &[]);
            }
            // Writer half of the protocol plane: per (channel, node)
            // eager/rendezvous block split and prepaid-grant fragments.
            for (vc, rank, ps) in &proto_stats {
                let track = format!("proto:{vc}@{}", rank.0);
                let rdv = ps
                    .rendezvous_blocks
                    .load(std::sync::atomic::Ordering::Relaxed);
                let eager = ps.eager_blocks.load(std::sync::atomic::Ordering::Relaxed);
                let granted = ps
                    .granted_fragments
                    .load(std::sync::atomic::Ordering::Relaxed);
                tracer.count_on(&track, "proto", "rendezvous_blocks", rdv as i64, &[]);
                tracer.count_on(&track, "proto", "eager_blocks", eager as i64, &[]);
                tracer.count_on(&track, "proto", "granted_fragments", granted as i64, &[]);
            }
            // Session-wide thread-budget accounting: how many OS (or sim
            // actor) threads the runtime ever spawned, plus the reactor
            // pools' worker and task counts — the `rt:` track the A9
            // scaling experiment and the scalability smoke read back.
            let rt_track = "rt:session";
            tracer.count_on(
                rt_track,
                "runtime",
                "threads_spawned",
                runtime.threads_spawned() as i64,
                &[],
            );
            let workers: usize = reactors.values().map(|r| r.worker_count()).sum();
            let tasks: u64 = reactors.values().map(|r| r.tasks_spawned()).sum();
            tracer.count_on(rt_track, "runtime", "reactor_workers", workers as i64, &[]);
            tracer.count_on(rt_track, "runtime", "reactor_tasks", tasks as i64, &[]);
            // Routing-plane summary: per-path byte splits plus the
            // selector's switch/failover counters, one `route:` track per
            // multi-path virtual channel.
            for mp in &route_planes {
                mp.flush_trace();
            }
            // Membership totals, one `member:` track per (channel, node)
            // (validated by `trace_check --require-membership`).
            for plane in &member_planes {
                plane.flush_trace();
            }
            // Final live-registry snapshot of every telemetry-enabled
            // node, one `metrics:` track each (validated by `trace_check
            // --require-metrics`).
            for plane in &metrics_planes {
                plane.refresh_live();
            }
            let mut regs: Vec<_> = node_registries.iter().collect();
            regs.sort_by_key(|(rank, _)| rank.0);
            for (rank, reg) in regs {
                metrics_plane::flush_snapshot_to_trace(
                    &reg.snapshot(),
                    &tracer,
                    &format!("metrics:node{}", rank.0),
                );
            }
            // Session-wide buffer-pool counters: `misses` is the number of
            // real heap allocations behind every staging/landing/control
            // buffer — a warmed-up fault-free run keeps it flat while
            // `gets` grows with traffic (the zero-alloc-per-fragment
            // property the soak test asserts).
            let p = runtime.pool().stats();
            tracer.count_on("pool", "pool", "gets", p.gets as i64, &[]);
            tracer.count_on("pool", "pool", "hits", p.hits as i64, &[]);
            tracer.count_on("pool", "pool", "misses", p.misses as i64, &[]);
            tracer.count_on("pool", "pool", "recycled", p.recycled as i64, &[]);
            tracer.count_on("pool", "pool", "discarded", p.discarded as i64, &[]);
        }
        let mut res = results.lock();
        let out = res
            .iter_mut()
            .map(|r| r.take().expect("node result recorded"))
            .collect();
        (out, gateway_stats)
    }
}

/// One node's view of the running session, handed to the application
/// closure.
pub struct Node {
    rank: NodeId,
    size: u32,
    channels: HashMap<String, Arc<Channel>>,
    vchannels: HashMap<String, Arc<VirtualChannel>>,
    gateway_stats: HashMap<String, Arc<crate::gateway::GatewayStats>>,
    runtime: Arc<dyn Runtime>,
    barrier: SessionBarrier,
}

impl Node {
    /// This node's rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// Number of nodes in the session.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// A plain channel this node belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist or this node is not a member —
    /// a configuration bug worth failing loudly on.
    pub fn channel(&self, name: &str) -> &Arc<Channel> {
        self.channels
            .get(name)
            .unwrap_or_else(|| panic!("node {} has no channel `{name}`", self.rank))
    }

    /// A virtual channel this node belongs to (same panic contract).
    pub fn vchannel(&self, name: &str) -> &Arc<VirtualChannel> {
        self.vchannels
            .get(name)
            .unwrap_or_else(|| panic!("node {} has no virtual channel `{name}`", self.rank))
    }

    /// True if this node is attached to the named plain channel.
    pub fn has_channel(&self, name: &str) -> bool {
        self.channels.contains_key(name)
    }

    /// True if this node is attached to the named virtual channel.
    pub fn has_vchannel(&self, name: &str) -> bool {
        self.vchannels.contains_key(name)
    }

    /// The forwarding counters of this node's gateway engine for the
    /// named virtual channel, if this node is one of its gateways. The
    /// counters are live: `GatewayStats::totals` is a cheap mid-run
    /// snapshot.
    pub fn gateway_stats(&self, vc: &str) -> Option<&Arc<crate::gateway::GatewayStats>> {
        self.gateway_stats.get(vc)
    }

    /// The session runtime (timestamps, cost accounting).
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.runtime
    }

    /// The session-wide barrier.
    pub fn barrier(&self) -> &SessionBarrier {
        &self.barrier
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("channels", &self.channels.keys().collect::<Vec<_>>())
            .field("vchannels", &self.vchannels.keys().collect::<Vec<_>>())
            .finish()
    }
}
