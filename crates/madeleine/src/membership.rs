//! Dynamic membership: join, leave, and rejoin a running session.
//!
//! The paper's session model is static — the node set is fixed at
//! bootstrap and a dead gateway stays dead. This module adds the
//! *control plane* that relaxes that: one [`MembershipPlane`] per
//! (virtual channel, node) speaks a tiny epoch-stamped protocol over the
//! channel's existing special conduits (kind-11 [`crate::gtm`] member
//! packets, routed hop-by-hop exactly like the in-band metrics pulls) so
//! that
//!
//! * a node can **join** a running session through an idempotent,
//!   phase-logged bootstrap handshake — *connect → exchange → verify →
//!   activate*. Every phase is durable in the plane's phase log: a
//!   re-run of [`MembershipPlane::join`] within the same incarnation
//!   skips completed phases, so a crashed-and-restarted bootstrap never
//!   repeats side effects;
//! * a node can **leave** gracefully ([`MembershipPlane::leave`]): its
//!   departure is announced to its peers, which retire the path in their
//!   multi-path selector immediately instead of waiting to trip over a
//!   dead conduit;
//! * a crashed node can **rejoin** ([`MembershipPlane::rejoin`]) under a
//!   bumped *incarnation epoch*. Peers track the highest epoch seen per
//!   node; member packets stamped with an older epoch are provably stale
//!   leftovers of a previous incarnation and are dropped (counted and
//!   traced), while a higher epoch readmits a path the selector had
//!   declared dead — without touching streams in flight on other paths.
//!
//! Membership events land on a `member:{vc}@{rank}` trace track (cat
//! `member`, validated by `trace_check --require-membership`); the
//! selector-side epoch rules live in [`mad_route::Selector`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mad_trace::Tracer;
use mad_util::sync::Mutex;

use crate::channel::Channel;
use crate::error::{MadError, Result};
use crate::gtm::{self, MemberEvent, MemberMsg, PacketBody, StreamTag};
use crate::multipath::MultiPath;
use crate::routing::RouteTable;
use crate::runtime::{RtEvent, Runtime};
use crate::types::{NetworkId, NodeId};

/// Per-virtual-channel membership configuration
/// ([`crate::session::VcOptions::membership`]).
#[derive(Debug, Clone, Copy)]
pub struct MembershipOptions {
    /// Deadline of the bootstrap verify phase: how long a joining node
    /// waits for its peers' acknowledgments before the handshake fails
    /// (the completed phases stay logged, so a retry resumes at verify).
    pub join_timeout_ns: u64,
}

impl Default for MembershipOptions {
    fn default() -> Self {
        MembershipOptions {
            join_timeout_ns: 500_000_000, // 500 ms
        }
    }
}

/// Lifecycle state of one node as seen by a peer's plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// A join request was seen but the node has not announced activation.
    Joining,
    /// The node announced itself active.
    Active,
    /// The node announced a graceful departure.
    Left,
}

/// What a plane knows about one node.
#[derive(Debug, Clone, Copy)]
struct MemberRecord {
    /// Highest incarnation epoch seen for the node.
    epoch: u64,
    state: MemberState,
}

/// The four bootstrap phases, in handshake order. Each is logged per
/// incarnation epoch once it completes, making the whole handshake
/// idempotent (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JoinPhase {
    /// Routes toward every peer resolve onto a wired special channel.
    Connect,
    /// Join requests are on the wire toward every peer.
    Exchange,
    /// Every peer acknowledged *this* incarnation's request.
    Verify,
    /// The node marked itself active and announced it.
    Activate,
}

/// Membership event names in the order the teardown flush emits their
/// totals (the live per-transition events share the same schema list in
/// `mad-trace`).
const TOTAL_NAMES: [&str; 5] = ["joins", "leaves", "rejoins", "stale_drops", "acks_served"];

/// The membership control plane of one node on one virtual channel.
pub struct MembershipPlane {
    rank: NodeId,
    /// This node's incarnation epoch. Starts at 1 (the wire format
    /// rejects epoch 0); [`MembershipPlane::rejoin`] bumps it.
    epoch: AtomicU64,
    routes: RouteTable,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    event: Arc<dyn RtEvent>,
    runtime: Arc<dyn Runtime>,
    tracer: Tracer,
    /// The `member:{vc}@{rank}` trace track.
    track: String,
    /// Highest epoch + state per known node.
    view: Mutex<BTreeMap<u32, MemberRecord>>,
    /// Completed bootstrap phases, per incarnation epoch.
    phases: Mutex<BTreeSet<(u64, JoinPhase)>>,
    /// Join acknowledgments collected for the verify phase: responder
    /// rank → echoed epoch.
    acks: Mutex<BTreeMap<u32, u64>>,
    /// The channel's multi-path plane: peer transitions retire and
    /// readmit selector paths through it.
    mp: Mutex<Option<Arc<MultiPath>>>,
    joins: AtomicU64,
    leaves: AtomicU64,
    rejoins: AtomicU64,
    stale_drops: AtomicU64,
    acks_served: AtomicU64,
}

impl std::fmt::Debug for MembershipPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipPlane")
            .field("rank", &self.rank)
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl MembershipPlane {
    /// Build the plane of one node (session bootstrap). `routes` and
    /// `special` are this node's own view of the channel, so member
    /// packets route exactly like forwarded messages and metrics pulls.
    pub(crate) fn new(
        rank: NodeId,
        routes: RouteTable,
        special: BTreeMap<NetworkId, Arc<Channel>>,
        event: Arc<dyn RtEvent>,
        runtime: Arc<dyn Runtime>,
        vc_name: &str,
    ) -> Arc<Self> {
        let tracer = runtime.tracer();
        Arc::new(MembershipPlane {
            rank,
            epoch: AtomicU64::new(1),
            routes,
            special,
            event,
            runtime,
            tracer,
            track: format!("member:{vc_name}@{}", rank.0),
            view: Mutex::new(BTreeMap::new()),
            phases: Mutex::new(BTreeSet::new()),
            acks: Mutex::new(BTreeMap::new()),
            mp: Mutex::new(None),
            joins: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            acks_served: AtomicU64::new(0),
        })
    }

    /// Register the channel's multi-path plane (session wiring): peer
    /// leave/rejoin transitions retire and readmit selector paths.
    pub(crate) fn register_multipath(&self, mp: &Arc<MultiPath>) {
        *self.mp.lock() = Some(mp.clone());
    }

    /// The node's local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// This node's current incarnation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The highest incarnation epoch seen for `node` (0 if unknown).
    pub fn member_epoch(&self, node: NodeId) -> u64 {
        self.view.lock().get(&node.0).map_or(0, |r| r.epoch)
    }

    /// The lifecycle state this plane has recorded for `node`.
    pub fn member_state(&self, node: NodeId) -> Option<MemberState> {
        self.view.lock().get(&node.0).map(|r| r.state)
    }

    /// Member packets dropped as stale leftovers of an older incarnation.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops.load(Ordering::Relaxed)
    }

    /// Completed bootstrap phases of the *current* incarnation (0–4).
    pub fn phases_completed(&self) -> usize {
        let epoch = self.epoch();
        self.phases
            .lock()
            .iter()
            .filter(|(e, _)| *e == epoch)
            .count()
    }

    fn trace(&self, name: &'static str, value: i64, args: &[(&'static str, u64)]) {
        self.tracer
            .count_on(&self.track, "member", name, value, args);
    }

    /// True (and logged) the first time a phase completes for `epoch`;
    /// false on re-runs, which makes every phase a no-op the second time.
    fn log_phase(&self, epoch: u64, phase: JoinPhase, name: &'static str) -> bool {
        let fresh = self.phases.lock().insert((epoch, phase));
        if fresh {
            self.trace(name, 1, &[("epoch", epoch)]);
        }
        fresh
    }

    fn phase_done(&self, epoch: u64, phase: JoinPhase) -> bool {
        self.phases.lock().contains(&(epoch, phase))
    }

    /// Join (or resume joining) the session: run the four-phase
    /// handshake against `peers` and return once every peer acknowledged
    /// this incarnation. Idempotent — completed phases are skipped, so
    /// calling `join` again after a partial failure resumes where the
    /// previous attempt stopped, and a fully joined node returns
    /// immediately without re-sending anything.
    pub fn join(&self, peers: &[NodeId], timeout_ns: u64) -> Result<()> {
        let epoch = self.epoch();

        // Phase 1 — connect: every peer must be reachable over a wired
        // special channel. Pure validation; safe to re-run, logged once.
        if !self.phase_done(epoch, JoinPhase::Connect) {
            for &p in peers {
                let hop = self.routes.hop(p)?;
                if !self.special.contains_key(&hop.net) {
                    return Err(MadError::Unroutable(p));
                }
            }
            self.log_phase(epoch, JoinPhase::Connect, "phase_connect");
        }

        // Phase 2 — exchange: put this incarnation's join request on the
        // wire toward every peer. Requests are idempotent on the
        // responder side (a duplicate is re-acked), so the phase is
        // logged as soon as the sends are issued.
        if !self.phase_done(epoch, JoinPhase::Exchange) {
            for &p in peers {
                self.send_member(p, MemberEvent::JoinRequest, self.rank.0, epoch)?;
            }
            self.log_phase(epoch, JoinPhase::Exchange, "phase_exchange");
        }

        // Phase 3 — verify: wait until every peer echoed *this* epoch
        // back. Acks from an older incarnation don't count. Unacked
        // peers are re-asked while waiting, so a verify retry after a
        // lost packet still converges. The wait runs in bounded slices —
        // never one sleep to the full deadline — so the re-ask actually
        // fires without depending on a wake from the very delivery path
        // being verified; requests are idempotent (the responder just
        // re-acks), making the retry cadence free of protocol effects.
        if !self.phase_done(epoch, JoinPhase::Verify) {
            let deadline = self.runtime.now_nanos().saturating_add(timeout_ns);
            let slice = (timeout_ns / 8).max(1);
            loop {
                let seen = self.event.epoch();
                let missing: Vec<NodeId> = {
                    let acks = self.acks.lock();
                    peers
                        .iter()
                        .copied()
                        .filter(|p| acks.get(&p.0).copied() != Some(epoch))
                        .collect()
                };
                if missing.is_empty() {
                    break;
                }
                for p in &missing {
                    let _ = self.send_member(*p, MemberEvent::JoinRequest, self.rank.0, epoch);
                }
                let now = self.runtime.now_nanos();
                if now >= deadline {
                    return Err(MadError::Protocol(format!(
                        "membership verify timed out on node {} epoch {epoch}: \
                         no acknowledgment from {missing:?}",
                        self.rank
                    )));
                }
                let _ = self
                    .event
                    .wait_past_timeout(seen, (deadline - now).min(slice));
            }
            self.log_phase(epoch, JoinPhase::Verify, "phase_verify");
        }

        // Phase 4 — activate: record ourselves active and announce it.
        if !self.phase_done(epoch, JoinPhase::Activate) {
            self.view.lock().insert(
                self.rank.0,
                MemberRecord {
                    epoch,
                    state: MemberState::Active,
                },
            );
            for &p in peers {
                let _ = self.send_member(p, MemberEvent::Announce, self.rank.0, epoch);
            }
            self.joins.fetch_add(1, Ordering::Relaxed);
            self.log_phase(epoch, JoinPhase::Activate, "phase_activate");
        }
        Ok(())
    }

    /// Leave the session gracefully: announce the departure to `peers`
    /// (each retires this node's path in its selector on receipt) and
    /// clear the current incarnation's phase log so a later plain
    /// [`MembershipPlane::join`] runs the full handshake again. The
    /// caller drains its own in-flight streams first — leave is a
    /// control-plane announcement, not a stream teardown.
    pub fn leave(&self, peers: &[NodeId]) {
        let epoch = self.epoch();
        for &p in peers {
            let _ = self.send_member(p, MemberEvent::Leave, self.rank.0, epoch);
        }
        self.view.lock().insert(
            self.rank.0,
            MemberRecord {
                epoch,
                state: MemberState::Left,
            },
        );
        self.phases.lock().retain(|(e, _)| *e != epoch);
        self.leaves.fetch_add(1, Ordering::Relaxed);
        self.trace("leave", 1, &[("epoch", epoch)]);
    }

    /// Rejoin after a crash: bump the incarnation epoch (so everything
    /// stamped with the previous one is provably stale), discard the old
    /// incarnation's acknowledgments, and run the full handshake.
    pub fn rejoin(&self, peers: &[NodeId], timeout_ns: u64) -> Result<u64> {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.acks.lock().clear();
        self.rejoins.fetch_add(1, Ordering::Relaxed);
        self.trace("rejoin", 1, &[("epoch", epoch)]);
        self.join(peers, timeout_ns)?;
        Ok(epoch)
    }

    /// Handle one kind-11 packet that arrived on a special conduit:
    /// relay it if addressed elsewhere, otherwise apply it to the local
    /// view (dropping stale incarnations first). Called by gateway
    /// engines, endpoint responders, and pumping writers alike.
    pub(crate) fn handle_packet(&self, tag: &StreamTag, body: &PacketBody, packet: &[u8]) {
        if tag.dest != self.rank {
            let _ = self.send_toward(tag.dest, packet);
            return;
        }
        let PacketBody::Member(msg) = body else {
            return;
        };
        let known = self.view.lock().get(&msg.node).map_or(0, |r| r.epoch);
        if msg.epoch < known {
            // A leftover of a previous incarnation of `node` — the
            // epoch stamp is what makes the staleness provable.
            self.stale_drops.fetch_add(1, Ordering::Relaxed);
            self.trace(
                "stale_drop",
                1,
                &[("node", msg.node as u64), ("epoch", msg.epoch)],
            );
            return;
        }
        match msg.event {
            MemberEvent::JoinRequest => self.serve_join_request(tag, msg, known),
            MemberEvent::JoinAck => {
                if msg.node == self.rank.0 {
                    self.acks.lock().insert(tag.src.0, msg.epoch);
                    self.trace("join_ack", 1, &[("node", tag.src.0 as u64)]);
                }
            }
            MemberEvent::Leave => {
                self.record(msg, MemberState::Left);
                self.trace(
                    "peer_leave",
                    1,
                    &[("node", msg.node as u64), ("epoch", msg.epoch)],
                );
                if let Some(mp) = self.mp.lock().as_ref() {
                    if mp.mark_dead(msg.node) {
                        self.trace("retire", 1, &[("node", msg.node as u64)]);
                    }
                }
            }
            MemberEvent::Announce => {
                self.record(msg, MemberState::Active);
                self.trace(
                    "announce",
                    1,
                    &[("node", msg.node as u64), ("epoch", msg.epoch)],
                );
                self.observe_in_selector(msg.node, msg.epoch);
            }
        }
        // Wake local waiters — the verify loop in `join` and any
        // application thread blocked in [`MembershipPlane::wait_member_state`].
        self.event.bump();
    }

    /// Block until this plane records `node` in `state` (or a higher
    /// incarnation of it), up to `timeout_ns`. Returns true when the
    /// state was observed, false on timeout. Membership announcements
    /// are fire-and-forget, so a peer that wants to *act* on another
    /// node's departure or activation synchronizes here.
    pub fn wait_member_state(&self, node: NodeId, state: MemberState, timeout_ns: u64) -> bool {
        let deadline = self.runtime.now_nanos().saturating_add(timeout_ns);
        loop {
            let seen = self.event.epoch();
            if self.member_state(node) == Some(state) {
                return true;
            }
            let now = self.runtime.now_nanos();
            if now >= deadline {
                return false;
            }
            let _ = self.event.wait_past_timeout(seen, deadline - now);
        }
    }

    /// Serve an inbound join request: record the (re)joining node,
    /// acknowledge by echoing its epoch, and — when the epoch advanced
    /// past a known previous incarnation — readmit its selector path.
    fn serve_join_request(&self, tag: &StreamTag, msg: &MemberMsg, known: u64) {
        self.record(msg, MemberState::Joining);
        self.trace(
            "join_request",
            1,
            &[("node", msg.node as u64), ("epoch", msg.epoch)],
        );
        if msg.epoch > known && known > 0 {
            self.observe_in_selector(msg.node, msg.epoch);
        }
        self.acks_served.fetch_add(1, Ordering::Relaxed);
        let _ = self.send_member(tag.src, MemberEvent::JoinAck, msg.node, msg.epoch);
    }

    /// Record `msg.node` at `msg.epoch` in the given state. A same-epoch
    /// update never downgrades `Active` back to `Joining` (a duplicate
    /// join request re-acked after the announce must not regress).
    fn record(&self, msg: &MemberMsg, state: MemberState) {
        let mut view = self.view.lock();
        let r = view.entry(msg.node).or_insert(MemberRecord {
            epoch: msg.epoch,
            state,
        });
        if msg.epoch > r.epoch {
            r.epoch = msg.epoch;
            r.state = state;
        } else if !(r.state == MemberState::Active && state == MemberState::Joining) {
            r.state = state;
        }
    }

    /// Feed a (node, epoch) observation to the selector: a higher epoch
    /// readmits a path previously declared dead.
    fn observe_in_selector(&self, node: u32, epoch: u64) {
        if let Some(mp) = self.mp.lock().as_ref() {
            if matches!(
                mp.observe_epoch(node, epoch),
                mad_route::EpochObservation::Readmitted
            ) {
                self.trace("readmit", 1, &[("node", node as u64), ("epoch", epoch)]);
            }
        }
    }

    /// Encode and send one member event toward `dest` along the routing
    /// table.
    fn send_member(&self, dest: NodeId, event: MemberEvent, node: u32, epoch: u64) -> Result<()> {
        let tag = StreamTag {
            src: self.rank,
            dest,
            // Low bits of the epoch, for trace readability only — member
            // packets never touch stream or ledger state.
            msg_id: epoch as u32,
        };
        let msg = MemberMsg { event, node, epoch };
        self.send_toward(dest, &gtm::encode_member(&tag, &msg))
    }

    /// Send one verbatim packet toward `dest` along the routing table.
    fn send_toward(&self, dest: NodeId, packet: &[u8]) -> Result<()> {
        let hop = self.routes.hop(dest)?;
        let ch = self
            .special
            .get(&hop.net)
            .ok_or(MadError::Unroutable(dest))?;
        ch.send_packet(hop.node, &[packet])
    }

    /// Emit this plane's lifetime totals on its `member:` track (session
    /// teardown calls this once), so membership-enabled traces always
    /// carry the track even when no transition fired mid-run.
    pub(crate) fn flush_trace(&self) {
        if !self.tracer.enabled() {
            return;
        }
        let totals = [
            self.joins.load(Ordering::Relaxed),
            self.leaves.load(Ordering::Relaxed),
            self.rejoins.load(Ordering::Relaxed),
            self.stale_drops.load(Ordering::Relaxed),
            self.acks_served.load(Ordering::Relaxed),
        ];
        for (name, v) in TOTAL_NAMES.iter().zip(totals) {
            self.trace(name, v as i64, &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StdRuntime;

    fn plane() -> Arc<MembershipPlane> {
        let rt = StdRuntime::shared();
        let ev = rt.event();
        MembershipPlane::new(
            NodeId(0),
            RouteTable::default(),
            BTreeMap::new(),
            ev,
            rt,
            "t",
        )
    }

    /// Apply one member packet addressed to the plane, as if it had just
    /// come off a special conduit.
    fn deliver(p: &MembershipPlane, src: u32, event: MemberEvent, node: u32, epoch: u64) {
        let tag = StreamTag {
            src: NodeId(src),
            dest: NodeId(0),
            msg_id: epoch as u32,
        };
        let body = PacketBody::Member(MemberMsg { event, node, epoch });
        p.handle_packet(&tag, &body, &[]);
    }

    /// The epoch proof: once a node is known at incarnation N, every
    /// member packet stamped with an older incarnation is dropped —
    /// counted, and without touching the recorded state.
    #[test]
    fn stale_incarnation_packets_are_dropped() {
        let p = plane();
        deliver(&p, 7, MemberEvent::Announce, 7, 3);
        assert_eq!(p.member_epoch(NodeId(7)), 3);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Active));

        // A leftover Leave from incarnation 2 must not retire the node…
        deliver(&p, 7, MemberEvent::Leave, 7, 2);
        assert_eq!(p.stale_drops(), 1);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Active));
        assert_eq!(p.member_epoch(NodeId(7)), 3);

        // …nor must a stray join request from incarnation 1.
        deliver(&p, 7, MemberEvent::JoinRequest, 7, 1);
        assert_eq!(p.stale_drops(), 2);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Active));

        // The *current* incarnation's Leave still applies.
        deliver(&p, 7, MemberEvent::Leave, 7, 3);
        assert_eq!(p.stale_drops(), 2);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Left));
    }

    /// A duplicate join request re-played after the announce (the
    /// responder re-acks it) must not regress Active back to Joining.
    #[test]
    fn duplicate_join_request_never_downgrades_active() {
        let p = plane();
        deliver(&p, 7, MemberEvent::JoinRequest, 7, 1);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Joining));
        deliver(&p, 7, MemberEvent::Announce, 7, 1);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Active));
        deliver(&p, 7, MemberEvent::JoinRequest, 7, 1);
        assert_eq!(p.member_state(NodeId(7)), Some(MemberState::Active));
    }

    /// The handshake is idempotent: a second `join` in the same
    /// incarnation finds every phase logged and re-runs nothing.
    #[test]
    fn join_is_idempotent_within_an_incarnation() {
        let p = plane();
        p.join(&[], 0).unwrap();
        assert_eq!(p.phases_completed(), 4);
        assert_eq!(p.member_state(NodeId(0)), Some(MemberState::Active));
        p.join(&[], 0).unwrap();
        assert_eq!(p.phases_completed(), 4);
        assert_eq!(p.epoch(), 1);
    }

    /// Rejoin bumps the incarnation epoch and runs the whole handshake
    /// again under the new epoch.
    #[test]
    fn rejoin_bumps_epoch_and_reruns_all_phases() {
        let p = plane();
        p.join(&[], 0).unwrap();
        assert_eq!(p.epoch(), 1);
        let e = p.rejoin(&[], 0).unwrap();
        assert_eq!(e, 2);
        assert_eq!(p.epoch(), 2);
        assert_eq!(p.phases_completed(), 4); // of the *new* incarnation
        assert_eq!(p.member_epoch(NodeId(0)), 2);
    }

    /// A graceful leave clears the incarnation's phase log, so a plain
    /// `join` afterwards runs the full handshake again (same epoch).
    #[test]
    fn leave_clears_the_phase_log() {
        let p = plane();
        p.join(&[], 0).unwrap();
        p.leave(&[]);
        assert_eq!(p.member_state(NodeId(0)), Some(MemberState::Left));
        assert_eq!(p.phases_completed(), 0);
        p.join(&[], 0).unwrap();
        assert_eq!(p.member_state(NodeId(0)), Some(MemberState::Active));
        assert_eq!(p.epoch(), 1);
    }
}
