//! Self-tuning control plane: online retuning of the credit window and
//! forwarding batch size.
//!
//! The static `credit_window` / `max_batch` knobs in
//! [`crate::gateway::GatewayConfig`] pick one operating point for the
//! whole run. Under churn (nodes joining and leaving, paths dying and
//! reviving) no single point is right: a window sized for the steady
//! state starves when a rejoin floods the fabric, and a batch sized for
//! bulk wastes latency on a trickle. This module closes the loop:
//!
//! * [`Tuning`] is the shared mutable operating point — one per virtual
//!   channel, read lock-free by the hot paths (the gateway self-grant
//!   site, the forwarding/flush batching loops, the writer's stream
//!   open) on every use, so a retune takes effect on the next stream or
//!   batch without touching anything in flight.
//! * [`Controller`] is the per-gateway-node policy loop. Each tick it
//!   consumes the same [`crate::gateway::GatewayStats`] delta stream the
//!   watchdog uses (its own [`crate::gateway::DeltaCursor`] lane, so
//!   neither steals the other's window) and nudges the tuning: credit
//!   starvation raises the window, queue saturation grows the batch and
//!   trims the window, sustained calm decays both back toward the
//!   configured baseline. Every step is hysteresis-gated and clamped to
//!   a bounded stride inside `[floor, ceil]`, so the loop cannot
//!   oscillate unboundedly even with several gateway controllers
//!   nudging one shared tuning. Decisions land on a `ctl:{vc}@{rank}`
//!   trace track (validated by `trace_check --require-membership`).
//!
//! Retunes are safe by construction: windows only govern streams opened
//! after the change (grants are issued at stream open), and batch sizes
//! never exceed the configured ceiling, which the session caps at the
//! bootstrap `max_batch` unless batching was enabled (> 1) to begin
//! with — landing buffers on the receive side size their trains from
//! their own config, so a node that never expected trains never sees
//! them.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use mad_trace::Tracer;
use mad_util::reactor::{Context, Poll, PollTask};

use crate::gateway::{DeltaCursor, GatewayStats, GatewayStop};
use crate::runtime::{RtEvent, Runtime};

/// The live operating point of one virtual channel, shared between the
/// controllers that write it and the hot paths that read it.
#[derive(Debug)]
pub struct Tuning {
    /// Effective credit window in packets; 0 encodes "flow control off"
    /// (a `None` bootstrap window stays off — the controller never turns
    /// flow control on or off, only resizes an enabled window).
    window: AtomicU32,
    /// Effective forwarding batch cap in sub-packets per train.
    batch: AtomicUsize,
    /// Effective rendezvous threshold in bytes; 0 encodes "eager-only"
    /// (a zero bootstrap threshold stays eager-only — the controller
    /// never turns the rendezvous path on or off, only moves an enabled
    /// crossover point).
    rendezvous: AtomicUsize,
}

impl Tuning {
    /// Seed the tuning from the bootstrap gateway knobs.
    pub fn new(
        credit_window: Option<u32>,
        max_batch: usize,
        rendezvous_threshold: usize,
    ) -> Arc<Self> {
        Arc::new(Tuning {
            window: AtomicU32::new(credit_window.unwrap_or(0)),
            batch: AtomicUsize::new(max_batch.max(1)),
            rendezvous: AtomicUsize::new(rendezvous_threshold),
        })
    }

    /// The effective credit window (`None` = flow control off).
    pub fn credit_window(&self) -> Option<u32> {
        match self.window.load(Ordering::Relaxed) {
            0 => None,
            w => Some(w),
        }
    }

    /// The effective forwarding batch cap.
    pub fn max_batch(&self) -> usize {
        self.batch.load(Ordering::Relaxed)
    }

    /// The effective rendezvous threshold in bytes (0 = eager-only).
    pub fn rendezvous_threshold(&self) -> usize {
        self.rendezvous.load(Ordering::Relaxed)
    }
}

/// Policy knobs of one [`Controller`]
/// ([`crate::session::VcOptions::controller`]).
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Evaluation interval.
    pub interval_ns: u64,
    /// Window stride per decision, in packets.
    pub window_step: u32,
    /// Lower clamp of the retuned window.
    pub window_floor: u32,
    /// Upper clamp of the retuned window.
    pub window_ceil: u32,
    /// Upper clamp of the retuned batch (the session additionally caps
    /// this at the bootstrap `max_batch` when batching is disabled).
    pub batch_ceil: usize,
    /// Consecutive ticks a signal must persist before a step is taken.
    pub hysteresis_ticks: u32,
    /// Stall count below which a window never counts as saturated
    /// (mirrors the watchdog's saturation gate).
    pub saturation_min_stalls: u64,
    /// Stall fraction of handoff attempts above which a busy window
    /// counts as saturated.
    pub saturation_stall_ratio: f64,
    /// Rendezvous-threshold stride per decision, in bytes.
    pub rendezvous_step: usize,
    /// Lower clamp of the retuned rendezvous threshold.
    pub rendezvous_floor: usize,
    /// Upper clamp of the retuned rendezvous threshold.
    pub rendezvous_ceil: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            interval_ns: 5_000_000, // 5 ms
            window_step: 4,
            window_floor: 2,
            window_ceil: 256,
            batch_ceil: 8,
            hysteresis_ticks: 2,
            saturation_min_stalls: 8,
            saturation_stall_ratio: 0.5,
            rendezvous_step: 16 * 1024,
            rendezvous_floor: 4 * 1024,
            rendezvous_ceil: 1024 * 1024,
        }
    }
}

/// One gateway node's policy loop over one channel's shared [`Tuning`].
pub(crate) struct Controller {
    cfg: ControllerConfig,
    tuning: Arc<Tuning>,
    stats: Arc<GatewayStats>,
    tracer: Tracer,
    /// The `ctl:{vc}@{rank}` trace track.
    track: String,
    /// Bootstrap operating point calm decays back toward.
    base_window: u32,
    base_batch: usize,
    base_rendezvous: usize,
    /// True when the bootstrap config enabled batching — the only case
    /// in which the controller may raise the batch (see module docs).
    may_batch: bool,
    starve_streak: u32,
    sat_streak: u32,
    calm_streak: u32,
    adjustments: u64,
}

impl Controller {
    pub(crate) fn new(
        cfg: ControllerConfig,
        tuning: Arc<Tuning>,
        stats: Arc<GatewayStats>,
        tracer: Tracer,
        track: String,
    ) -> Controller {
        let base_window = tuning.window.load(Ordering::Relaxed);
        let base_batch = tuning.batch.load(Ordering::Relaxed);
        let base_rendezvous = tuning.rendezvous.load(Ordering::Relaxed);
        Controller {
            cfg,
            tuning,
            stats,
            tracer,
            track,
            base_window,
            base_batch,
            base_rendezvous,
            may_batch: base_batch > 1,
            starve_streak: 0,
            sat_streak: 0,
            calm_streak: 0,
            adjustments: 0,
        }
    }

    pub(crate) fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    fn trace(&self, name: &'static str, value: i64) {
        self.tracer.count_on(&self.track, "ctl", name, value, &[]);
    }

    /// Step the window by `delta` packets, clamped to the configured
    /// band, tracing the new value. No-op when flow control is off or
    /// the clamp absorbs the whole step.
    fn step_window(&mut self, delta: i64, name: &'static str) {
        let cur = self.tuning.window.load(Ordering::Relaxed);
        if cur == 0 {
            return;
        }
        let next = (cur as i64 + delta)
            .clamp(self.cfg.window_floor as i64, self.cfg.window_ceil as i64)
            as u32;
        if next != cur {
            self.tuning.window.store(next, Ordering::Relaxed);
            self.adjustments += 1;
            self.trace(name, next as i64);
        }
    }

    /// Step the batch cap by `delta` trains, clamped to
    /// `[1, batch_ceil]`, tracing the new value. No-op unless batching
    /// was enabled at bootstrap.
    fn step_batch(&mut self, delta: i64, name: &'static str) {
        if !self.may_batch {
            return;
        }
        let cur = self.tuning.batch.load(Ordering::Relaxed);
        let next = (cur as i64 + delta).clamp(1, self.cfg.batch_ceil as i64) as usize;
        if next != cur {
            self.tuning.batch.store(next, Ordering::Relaxed);
            self.adjustments += 1;
            self.trace(name, next as i64);
        }
    }

    /// Step the rendezvous threshold by `delta` bytes, clamped to the
    /// configured band, tracing the new value. No-op when the rendezvous
    /// path is off (threshold 0) or the clamp absorbs the whole step —
    /// the controller moves the crossover point, it never flips the
    /// protocol switch itself.
    fn step_rendezvous(&mut self, delta: i64, name: &'static str) {
        let cur = self.tuning.rendezvous.load(Ordering::Relaxed);
        if cur == 0 {
            return;
        }
        let next = (cur as i64 + delta).clamp(
            self.cfg.rendezvous_floor as i64,
            self.cfg.rendezvous_ceil as i64,
        ) as usize;
        if next != cur {
            self.tuning.rendezvous.store(next, Ordering::Relaxed);
            self.adjustments += 1;
            self.trace(name, next as i64);
        }
    }

    /// Evaluate one window ending `now`.
    pub(crate) fn tick(&mut self, now_ns: u64) {
        let d = self.stats.delta_for(DeltaCursor::Controller, now_ns);
        let starved = d.credit_timeouts > 0;
        let attempts = d.stalls + d.fragments;
        let saturated = d.stalls >= self.cfg.saturation_min_stalls
            && attempts > 0
            && d.stalls as f64 / attempts as f64 >= self.cfg.saturation_stall_ratio;

        if starved {
            self.starve_streak += 1;
            self.calm_streak = 0;
        } else {
            self.starve_streak = 0;
        }
        if saturated {
            self.sat_streak += 1;
            self.calm_streak = 0;
        } else {
            self.sat_streak = 0;
        }

        if self.starve_streak >= self.cfg.hysteresis_ticks {
            // Credit starvation: writers hit their grant deadline. Widen
            // the window so freshly opened streams get deeper credit,
            // and lower the rendezvous crossover so more blocks take the
            // whole-window grant instead of per-fragment takes.
            self.step_window(self.cfg.window_step as i64, "window_raise");
            self.step_rendezvous(-(self.cfg.rendezvous_step as i64), "rendezvous_lower");
            self.starve_streak = 0;
            return;
        }
        if self.sat_streak >= self.cfg.hysteresis_ticks {
            // Queue saturation: handoffs keep finding the pipeline full.
            // Amortize per-train overhead with a bigger batch, trim the
            // window so fewer packets pile into the choked hop, and
            // raise the rendezvous crossover so fewer whole windows
            // flood into it at once.
            self.step_batch(1, "batch_raise");
            self.step_window(-(self.cfg.window_step as i64), "window_lower");
            self.step_rendezvous(self.cfg.rendezvous_step as i64, "rendezvous_raise");
            self.sat_streak = 0;
            return;
        }
        if !starved && !saturated {
            self.calm_streak += 1;
            if self.calm_streak >= self.cfg.hysteresis_ticks.saturating_mul(4) {
                // Sustained calm: decay one stride back toward the
                // bootstrap operating point.
                let w = self.tuning.window.load(Ordering::Relaxed);
                if w != 0 && w != self.base_window {
                    let (delta, name) = if w > self.base_window {
                        (
                            -((w - self.base_window).min(self.cfg.window_step) as i64),
                            "window_lower",
                        )
                    } else {
                        (
                            ((self.base_window - w).min(self.cfg.window_step)) as i64,
                            "window_raise",
                        )
                    };
                    self.step_window(delta, name);
                }
                let b = self.tuning.batch.load(Ordering::Relaxed);
                if b > self.base_batch {
                    self.step_batch(-1, "batch_lower");
                }
                let r = self.tuning.rendezvous.load(Ordering::Relaxed);
                if r != 0 && r != self.base_rendezvous {
                    let (delta, name) = if r > self.base_rendezvous {
                        (
                            -((r - self.base_rendezvous).min(self.cfg.rendezvous_step) as i64),
                            "rendezvous_lower",
                        )
                    } else {
                        (
                            ((self.base_rendezvous - r).min(self.cfg.rendezvous_step)) as i64,
                            "rendezvous_raise",
                        )
                    };
                    self.step_rendezvous(delta, name);
                }
                self.calm_streak = 0;
            }
        }
    }

    /// The teardown tick: evaluate the final window, then summarize the
    /// run (total adjustments and the final operating point) so a
    /// controller-enabled trace always carries `ctl:` events, however
    /// quiet the run.
    pub(crate) fn finish(&mut self, now_ns: u64) {
        self.tick(now_ns);
        self.trace("adjustments", self.adjustments as i64);
        self.trace("window", self.tuning.window.load(Ordering::Relaxed) as i64);
        self.trace("batch", self.tuning.batch.load(Ordering::Relaxed) as i64);
        self.trace(
            "rendezvous",
            self.tuning.rendezvous.load(Ordering::Relaxed) as i64,
        );
    }
}

/// The threaded engine's controller driver: a dedicated runtime thread
/// ticking at the configured interval, woken early by teardown bumps of
/// the node event (the same shape as the metrics watchdog driver).
pub(crate) fn run_controller(
    mut ctl: Controller,
    runtime: Arc<dyn Runtime>,
    event: Arc<dyn RtEvent>,
    stop: Arc<GatewayStop>,
) {
    let mut next = runtime.now_nanos().saturating_add(ctl.interval_ns());
    loop {
        let seen = event.epoch();
        if stop.stop_requested() {
            ctl.finish(runtime.now_nanos());
            return;
        }
        let now = runtime.now_nanos();
        if now >= next {
            ctl.tick(now);
            next = now.saturating_add(ctl.interval_ns());
        }
        let wait = next.saturating_sub(runtime.now_nanos()).max(1);
        let _ = event.wait_past_timeout(seen, wait);
    }
}

/// The reactor engine's controller driver: the same policy loop as a
/// timer task on the gateway node's shared worker pool.
pub(crate) struct ControllerTask {
    ctl: Controller,
    stop: Arc<GatewayStop>,
    next: u64,
}

impl ControllerTask {
    pub(crate) fn new(ctl: Controller, stop: Arc<GatewayStop>) -> Self {
        ControllerTask { ctl, stop, next: 0 }
    }
}

impl PollTask for ControllerTask {
    fn poll(&mut self, cx: &mut Context) -> Poll {
        if self.stop.stop_requested() {
            self.ctl.finish(cx.now_ns());
            return Poll::Ready;
        }
        let now = cx.now_ns();
        if self.next == 0 {
            self.next = now.saturating_add(self.ctl.interval_ns());
        }
        if now >= self.next {
            self.ctl.tick(now);
            self.next = now.saturating_add(self.ctl.interval_ns());
        }
        cx.wake_at(self.next);
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_trace::Tracer;

    fn controller(cfg: ControllerConfig, window: Option<u32>, batch: usize) -> Controller {
        controller_rdv(cfg, window, batch, 0)
    }

    fn controller_rdv(
        cfg: ControllerConfig,
        window: Option<u32>,
        batch: usize,
        rendezvous: usize,
    ) -> Controller {
        let tuning = Tuning::new(window, batch, rendezvous);
        let stats = Arc::new(GatewayStats::default());
        Controller::new(cfg, tuning, stats, Tracer::off(), "ctl:t@0".into())
    }

    fn starve(c: &Controller) {
        c.stats.credit_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    fn saturate(c: &Controller) {
        c.stats.stalls.fetch_add(64, Ordering::Relaxed);
        c.stats.fragments.fetch_add(8, Ordering::Relaxed);
    }

    #[test]
    fn tuning_encodes_disabled_window_as_none() {
        let t = Tuning::new(None, 4, 0);
        assert_eq!(t.credit_window(), None);
        assert_eq!(t.max_batch(), 4);
        assert_eq!(t.rendezvous_threshold(), 0);
        let t = Tuning::new(Some(8), 1, 64 * 1024);
        assert_eq!(t.credit_window(), Some(8));
        assert_eq!(t.rendezvous_threshold(), 64 * 1024);
    }

    #[test]
    fn starvation_lowers_rendezvous_threshold() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller_rdv(cfg, Some(8), 1, 64 * 1024);
        starve(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(
            c.tuning.rendezvous_threshold(),
            64 * 1024 - cfg.rendezvous_step
        );
        // Saturation pushes it back up.
        saturate(&c);
        c.tick(2 * cfg.interval_ns);
        assert_eq!(c.tuning.rendezvous_threshold(), 64 * 1024);
    }

    #[test]
    fn rendezvous_steps_stay_clamped_and_calm_decays() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            rendezvous_floor: 40 * 1024,
            ..ControllerConfig::default()
        };
        let mut c = controller_rdv(cfg, Some(8), 1, 48 * 1024);
        starve(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.rendezvous_threshold(), 40 * 1024); // clamped at floor
                                                                // Calm decays back toward the bootstrap threshold.
        let mut now = cfg.interval_ns;
        for _ in 0..4 {
            now += cfg.interval_ns;
            c.tick(now);
        }
        assert_eq!(c.tuning.rendezvous_threshold(), 48 * 1024);
    }

    #[test]
    fn controller_never_enables_eager_only_rendezvous() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller_rdv(cfg, Some(8), 1, 0);
        saturate(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.rendezvous_threshold(), 0); // stays eager-only
    }

    #[test]
    fn starvation_raises_window_after_hysteresis() {
        let cfg = ControllerConfig::default();
        let mut c = controller(cfg, Some(8), 1);
        // One starved tick is not enough (hysteresis = 2)…
        starve(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.credit_window(), Some(8));
        // …a second consecutive one steps the window up.
        starve(&c);
        c.tick(2 * cfg.interval_ns);
        assert_eq!(c.tuning.credit_window(), Some(8 + cfg.window_step));
        assert_eq!(c.adjustments, 1);
    }

    #[test]
    fn window_steps_stay_clamped() {
        let cfg = ControllerConfig {
            window_ceil: 10,
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller(cfg, Some(8), 1);
        for i in 1..=5 {
            starve(&c);
            c.tick(i * cfg.interval_ns);
        }
        assert_eq!(c.tuning.credit_window(), Some(10)); // clamped at ceil
    }

    #[test]
    fn saturation_grows_batch_and_trims_window_when_batching_enabled() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller(cfg, Some(32), 2);
        saturate(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.max_batch(), 3);
        assert_eq!(c.tuning.credit_window(), Some(32 - cfg.window_step));
    }

    #[test]
    fn batch_never_retuned_when_batching_disabled() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller(cfg, Some(32), 1);
        saturate(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.max_batch(), 1); // batching stays off
        assert_eq!(c.tuning.credit_window(), Some(32 - cfg.window_step));
    }

    #[test]
    fn calm_decays_back_to_baseline() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller(cfg, Some(8), 2);
        // Push the window up and the batch out.
        starve(&c);
        c.tick(cfg.interval_ns);
        saturate(&c);
        c.tick(2 * cfg.interval_ns);
        assert_eq!(c.tuning.credit_window(), Some(8));
        assert_eq!(c.tuning.max_batch(), 3);
        // Then calm: 4×hysteresis quiet ticks per decay step.
        let mut now = 2 * cfg.interval_ns;
        for _ in 0..8 {
            now += cfg.interval_ns;
            c.tick(now);
        }
        assert_eq!(c.tuning.max_batch(), 2);
        assert_eq!(c.tuning.credit_window(), Some(8));
    }

    #[test]
    fn controller_never_enables_disabled_flow_control() {
        let cfg = ControllerConfig {
            hysteresis_ticks: 1,
            ..ControllerConfig::default()
        };
        let mut c = controller(cfg, None, 2);
        starve(&c);
        c.tick(cfg.interval_ns);
        assert_eq!(c.tuning.credit_window(), None);
    }
}
