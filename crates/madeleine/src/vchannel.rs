//! Virtual channels (paper §2.2).
//!
//! A virtual channel groups, for every network it spans, **two** real
//! channels: a *regular* channel for messages delivered to their final
//! destination and a *special* channel for messages that must cross a
//! gateway. When the application sends over the virtual channel, the
//! appropriate real channel is chosen dynamically from the routing table;
//! forwarded messages are encoded by the GTM so gateways can relay them
//! without knowing anything about the application.
//!
//! Messages always complete their last hop on the *regular* channel (the
//! multi-gateway disambiguation argument of §2.2.2), so a receiver cannot
//! tell from the channel alone whether a message was forwarded. On the
//! wire two framings coexist:
//!
//! * plain messages from non-gateway senders open with a one-byte
//!   [`NOTE_DIRECT`] packet ("we chose to transmit this information before
//!   the actual message body transmission") followed by the raw body;
//! * everything else — forwarded streams relayed by a gateway *and* direct
//!   messages sent by gateway-resident applications — is GTM version-2
//!   framed, every packet carrying its stream tag.
//!
//! Gateway-resident senders cannot use the plain framing: their node's
//! forwarding engine interleaves relayed packets on the same outgoing
//! conduits at fragment granularity, and a raw (non-self-described) body
//! in the middle of that stream would be unparseable. Their direct
//! messages therefore travel as GTM streams flagged *direct*, which keeps
//! `is_forwarded()` honest. The first byte disambiguates the two framings
//! (`NOTE_DIRECT` = 0, GTM magic = 0xAD).
//!
//! The receive side runs a small demultiplexer: packets are pumped one at
//! a time from ready conduits into a [`StreamAssembler`], which hands back
//! whole streams in header-arrival order. While a reader drains its
//! stream, packets of other interleaved streams arriving on the same
//! conduit are buffered, not lost. Fragment payloads are copied out of the
//! received packet into the application buffer; the copy is charged to the
//! cost model only on static-mode networks (matching the old direct
//! `recv_into` landing — on dynamic-mode networks it models the NIC
//! demultiplexing into a posted receive).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use mad_trace::{trace_count, trace_span, Tracer};

use crate::channel::Channel;
use crate::conduit::BufferMode;
use crate::credit::{cancel_error, FlowControl};
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::gtm::{
    self, CancelReason, GtmHeader, GtmWriter, StreamAssembler, StreamItem, StreamKey, StreamTag,
};
use crate::message::{MessageReader, MessageWriter};
use crate::routing::RouteTable;
use crate::runtime::RtEvent;
use crate::types::{NetworkId, NodeId};

/// Note byte announcing a plain direct message (non-gateway senders only).
pub const NOTE_DIRECT: u8 = 0;

/// Receive-side demultiplexing state: the assembler plus, per stream, the
/// conduit it arrives on (so a reader knows where to pump for more).
struct Demux {
    asm: StreamAssembler,
    via: BTreeMap<StreamKey, (NetworkId, NodeId)>,
}

/// A virtual channel, seen from one node.
pub struct VirtualChannel {
    name: String,
    rank: NodeId,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    mtu: usize,
    recv_event: Arc<dyn RtEvent>,
    /// True when this node runs a forwarding engine for the channel; its
    /// direct sends must then be GTM-framed (see module docs).
    is_gateway: bool,
    /// Credit-based flow control for forwarded sends, when the session
    /// configured a window (see [`crate::credit`]).
    flow: Option<FlowControl>,
    next_msg_id: AtomicU32,
    demux: Mutex<Demux>,
    tracer: Tracer,
    /// Session buffer pool: received packets are adopted into it so their
    /// landing buffers recycle once the application consumes them.
    pool: Arc<mad_util::pool::BufferPool>,
}

impl std::fmt::Debug for VirtualChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualChannel")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("networks", &self.regular.keys().collect::<Vec<_>>())
            .field("mtu", &self.mtu)
            .field("is_gateway", &self.is_gateway)
            .finish()
    }
}

impl VirtualChannel {
    /// Assemble a virtual channel (session-bootstrap use).
    #[allow(clippy::too_many_arguments)] // a one-caller bootstrap function
    pub fn assemble(
        name: String,
        rank: NodeId,
        regular: BTreeMap<NetworkId, Arc<Channel>>,
        special: BTreeMap<NetworkId, Arc<Channel>>,
        routes: RouteTable,
        mtu: usize,
        recv_event: Arc<dyn RtEvent>,
        is_gateway: bool,
        flow: Option<FlowControl>,
    ) -> Self {
        let tracer = regular
            .values()
            .next()
            .map(|c| c.tracer().clone())
            .unwrap_or_default();
        let pool = regular
            .values()
            .next()
            .map(|c| c.runtime().pool().clone())
            .unwrap_or_default();
        VirtualChannel {
            name,
            rank,
            regular,
            special,
            routes,
            mtu,
            recv_event,
            is_gateway,
            flow,
            next_msg_id: AtomicU32::new(0),
            demux: Mutex::new(Demux {
                asm: StreamAssembler::with_pool(pool.clone()),
                via: BTreeMap::new(),
            }),
            tracer,
            pool,
        }
    }

    /// The virtual channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The route-wide fragment size used for forwarded messages.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Ranks reachable over this virtual channel.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut d: Vec<NodeId> = self.routes.destinations().collect();
        d.sort_unstable();
        d
    }

    /// True if messages to `dest` cross at least one gateway.
    pub fn is_forwarded(&self, dest: NodeId) -> Result<bool> {
        Ok(!self.routes.hop(dest)?.last)
    }

    /// Allocate the tag of a new outgoing stream.
    fn next_tag(&self, dest: NodeId) -> StreamTag {
        StreamTag {
            src: self.rank,
            dest,
            msg_id: self.next_msg_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Begin a message to `dest`; transparently picks the direct path or
    /// the GTM + gateway path.
    pub fn begin_packing(&self, dest: NodeId) -> Result<VcWriter<'_, '_>> {
        let hop = self.routes.hop(dest)?;
        if hop.last {
            let channel = self
                .regular
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            if self.is_gateway {
                // The forwarding engine interleaves relayed packets on this
                // conduit, so the body must be self-described: send a GTM
                // stream flagged as direct instead of a raw message.
                // Direct streams never enter a forwarding engine, so no
                // hop buffers fragments and no flow control applies.
                let w = GtmWriter::begin(channel, dest, self.next_tag(dest), self.mtu, true, None)?;
                Ok(VcWriter::Gtm {
                    w,
                    forwarded: false,
                })
            } else {
                // Hold the conduit for the whole message: only this node's
                // application sends here, and the note + raw body must stay
                // contiguous because neither is self-described.
                let mut writer = channel.begin_packing_exclusive(dest)?;
                writer.send_control(&[&[NOTE_DIRECT]])?;
                Ok(VcWriter::Direct(writer))
            }
        } else {
            let channel = self
                .special
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            // On a gateway node the engine's polling threads own the
            // special conduits' receive sides and deposit arriving grants;
            // everywhere else the writer must pump its own conduit.
            let flow = self.flow.as_ref().map(|f| f.writer(!self.is_gateway));
            let w = GtmWriter::begin(
                channel,
                hop.node,
                self.next_tag(dest),
                self.mtu,
                false,
                flow,
            )?;
            Ok(VcWriter::Gtm { w, forwarded: true })
        }
    }

    /// Block until a whole message is available to start receiving: either
    /// a plain direct message or a GTM stream whose header has arrived.
    pub fn begin_unpacking(&self) -> Result<VcReader<'_>> {
        loop {
            if let Some((key, header, via)) = self.claim_ready_stream() {
                return Ok(VcReader::Gtm(GtmStreamReader {
                    vc: self,
                    key,
                    header,
                    via,
                    finished: false,
                }));
            }
            let (net, peer) = self.select_any()?;
            let channel = &self.regular[&net];
            let packet = channel.lock_conduit(peer)?.recv_owned()?;
            channel.stats().on_recv(peer.0, packet.len());
            if packet.as_slice() == [NOTE_DIRECT] {
                drop(self.pool.adopt(packet)); // spent note: recycle
                return Ok(VcReader::Direct(channel.begin_unpacking_from(peer)?));
            }
            self.push_demux(net, peer, packet)?;
        }
    }

    /// Pop the oldest stream whose header has arrived, if any.
    fn claim_ready_stream(&self) -> Option<(StreamKey, GtmHeader, (NetworkId, NodeId))> {
        let mut d = self.demux.lock().unwrap();
        let key = d.asm.pop_ready()?;
        let header = d.asm.header(key).expect("ready stream has a header");
        let via = d.via[&key];
        Some((key, header, via))
    }

    /// Feed one received packet into the demultiplexer. Batch frames split
    /// into several packets and may open several streams at once.
    fn push_demux(&self, net: NetworkId, peer: NodeId, packet: Vec<u8>) -> Result<()> {
        trace_count!(self.tracer, "gtm", "decode", 1);
        let mut d = self.demux.lock().unwrap();
        for key in d.asm.push_packet(self.pool.adopt(packet))? {
            d.via.insert(key, (net, peer));
        }
        Ok(())
    }

    /// Find a regular-channel conduit with a pending packet, scanning
    /// networks and peers in deterministic order.
    fn select_any(&self) -> Result<(NetworkId, NodeId)> {
        loop {
            let seen = self.recv_event.epoch();
            let mut all_closed = true;
            for (&net, channel) in &self.regular {
                let peers: Vec<NodeId> = channel.peers().collect();
                for peer in peers {
                    let c = channel.lock_conduit(peer)?;
                    if c.ready() {
                        return Ok((net, peer));
                    }
                    if !c.closed() {
                        all_closed = false;
                    }
                }
            }
            if all_closed {
                return Err(MadError::Disconnected);
            }
            self.recv_event.wait_past(seen);
        }
    }
}

/// Writer over a virtual channel: either a plain message on the regular
/// channel or a GTM stream (toward a gateway, or direct-but-framed from a
/// gateway-resident sender).
pub enum VcWriter<'c, 'd> {
    /// Plain direct delivery on the shared network.
    Direct(MessageWriter<'c, 'd>),
    /// GTM-framed stream.
    Gtm {
        /// The stream writer.
        w: GtmWriter<'c>,
        /// True when the stream actually crosses a gateway.
        forwarded: bool,
    },
}

impl<'d> VcWriter<'_, 'd> {
    /// Append a data block (`mad_pack`).
    pub fn pack(&mut self, data: &'d [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.pack(data, send, recv),
            VcWriter::Gtm { w, .. } => w.pack(data, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_packing(self) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.end_packing(),
            VcWriter::Gtm { w, .. } => w.end_packing(),
        }
    }

    /// True if this message crosses a gateway.
    pub fn is_forwarded(&self) -> bool {
        matches!(
            self,
            VcWriter::Gtm {
                forwarded: true,
                ..
            }
        )
    }
}

/// Reader of one GTM stream, pulling items from the channel demultiplexer
/// and pumping the stream's conduit when it runs dry. Packets of *other*
/// streams encountered while pumping are buffered for their own readers.
pub struct GtmStreamReader<'c> {
    vc: &'c VirtualChannel,
    key: StreamKey,
    header: GtmHeader,
    via: (NetworkId, NodeId),
    finished: bool,
}

impl GtmStreamReader<'_> {
    /// The original sender of the stream.
    pub fn source(&self) -> NodeId {
        self.header.tag.src
    }

    /// True if the stream crossed at least one gateway.
    pub fn is_forwarded(&self) -> bool {
        !self.header.direct
    }

    /// The stream was cancelled in flight: drop its demux state, seal the
    /// reader (no end packet will ever come) and build the typed error.
    fn cancel_cleanup(&mut self, reason: CancelReason) -> MadError {
        self.finished = true;
        let mut d = self.vc.demux.lock().unwrap();
        d.asm.finish(self.key);
        d.via.remove(&self.key);
        cancel_error(reason, &self.header.tag)
    }

    /// Next item of this stream, pumping the via-conduit as needed.
    fn next_item(&self) -> Result<StreamItem> {
        loop {
            if let Some(item) = self.vc.demux.lock().unwrap().asm.next_item(self.key) {
                return Ok(item);
            }
            let (net, peer) = self.via;
            let channel = &self.vc.regular[&net];
            let packet = channel.lock_conduit(peer)?.recv_owned()?;
            channel.stats().on_recv(peer.0, packet.len());
            if packet.as_slice() == [NOTE_DIRECT] {
                // The via peer interleaves GTM packets (it is a gateway or a
                // gateway-resident sender); a raw note here is a bug.
                drop(self.vc.pool.adopt(packet));
                return Err(MadError::Protocol(
                    "plain direct note interleaved with GTM stream packets".into(),
                ));
            }
            self.vc.push_demux(net, peer, packet)?;
        }
    }

    /// Receive the next block into `dst`, validating the self-description
    /// against the caller's expectation. Data is valid on return (the GTM
    /// is eager, so express semantics hold for every block).
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let _reassemble = trace_span!(
            self.vc.tracer,
            "vc",
            "reassemble",
            "src" = self.header.tag.src.0 as u64,
            "bytes" = dst.len() as u64,
        );
        let desc = match self.next_item()? {
            StreamItem::Part(d) => d,
            StreamItem::Cancelled(reason) => return Err(self.cancel_cleanup(reason)),
            other => {
                return Err(MadError::Protocol(format!(
                    "expected GTM part descriptor, got {other:?}"
                )))
            }
        };
        if desc.len != dst.len() as u64 {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block is {} bytes, unpack expected {}",
                desc.len,
                dst.len()
            )));
        }
        if desc.send != send || desc.recv != recv {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block flags ({:?},{:?}) != unpack flags ({:?},{:?})",
                desc.send, desc.recv, send, recv
            )));
        }
        let channel = &self.vc.regular[&self.via.0];
        let charge_copies = channel.caps().mode == BufferMode::Static;
        let mut cursor = 0;
        while cursor < dst.len() {
            let payload_pkt = match self.next_item()? {
                StreamItem::Frag(p) => p,
                StreamItem::Cancelled(reason) => return Err(self.cancel_cleanup(reason)),
                other => {
                    return Err(MadError::Protocol(format!(
                        "expected GTM fragment, got {other:?}"
                    )))
                }
            };
            let payload = gtm::frag_payload(&payload_pkt);
            let end = cursor + payload.len();
            if end > dst.len() {
                return Err(MadError::Protocol(format!(
                    "fragment overruns its block: {} > {}",
                    end,
                    dst.len()
                )));
            }
            dst[cursor..end].copy_from_slice(payload);
            if charge_copies {
                channel.runtime().charge_copy(payload.len());
            }
            cursor = end;
        }
        Ok(())
    }

    /// Consume the end packet and drop the stream's demux state.
    pub fn end_unpacking(mut self) -> Result<()> {
        self.finished = true;
        let item = self.next_item()?;
        let mut d = self.vc.demux.lock().unwrap();
        d.asm.finish(self.key);
        d.via.remove(&self.key);
        match item {
            StreamItem::End => Ok(()),
            // The demux state is already dropped above, which is all the
            // cleanup a cancelled stream needs here.
            StreamItem::Cancelled(reason) => Err(cancel_error(reason, &self.header.tag)),
            other => Err(MadError::Protocol(format!(
                "expected GTM end, got {other:?}"
            ))),
        }
    }
}

impl Drop for GtmStreamReader<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmStreamReader dropped without end_unpacking");
        }
    }
}

/// Reader over a virtual channel: plain or GTM decoding, per the framing.
pub enum VcReader<'c> {
    /// The message came straight from its sender as a plain body.
    Direct(MessageReader<'c>),
    /// The message is a GTM stream (forwarded, or direct-but-framed).
    Gtm(GtmStreamReader<'c>),
}

impl VcReader<'_> {
    /// The original sender (for GTM streams, from the stream header).
    pub fn source(&self) -> NodeId {
        match self {
            VcReader::Direct(r) => r.source(),
            VcReader::Gtm(r) => r.source(),
        }
    }

    /// True if this message crossed a gateway.
    pub fn is_forwarded(&self) -> bool {
        match self {
            VcReader::Direct(_) => false,
            VcReader::Gtm(r) => r.is_forwarded(),
        }
    }

    /// Receive the next block (`mad_unpack`), mirroring the sender's flags.
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.unpack(dst, send, recv),
            VcReader::Gtm(r) => r.unpack(dst, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_unpacking(self) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.end_unpacking(),
            VcReader::Gtm(r) => r.end_unpacking(),
        }
    }
}
