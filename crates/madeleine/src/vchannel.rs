//! Virtual channels (paper §2.2).
//!
//! A virtual channel groups, for every network it spans, **two** real
//! channels: a *regular* channel for messages delivered to their final
//! destination and a *special* channel for messages that must cross a
//! gateway. When the application sends over the virtual channel, the
//! appropriate real channel is chosen dynamically from the routing table;
//! forwarded messages are encoded by the GTM so gateways can relay them
//! without knowing anything about the application.
//!
//! Messages always complete their last hop on the *regular* channel (the
//! multi-gateway disambiguation argument of §2.2.2), so a receiver cannot
//! tell from the channel alone whether a message was forwarded. On the
//! wire two framings coexist:
//!
//! * plain messages from non-gateway senders open with a one-byte
//!   [`NOTE_DIRECT`] packet ("we chose to transmit this information before
//!   the actual message body transmission") followed by the raw body;
//! * everything else — forwarded streams relayed by a gateway *and* direct
//!   messages sent by gateway-resident applications — is GTM version-2
//!   framed, every packet carrying its stream tag.
//!
//! Gateway-resident senders cannot use the plain framing: their node's
//! forwarding engine interleaves relayed packets on the same outgoing
//! conduits at fragment granularity, and a raw (non-self-described) body
//! in the middle of that stream would be unparseable. Their direct
//! messages therefore travel as GTM streams flagged *direct*, which keeps
//! `is_forwarded()` honest. The first byte disambiguates the two framings
//! (`NOTE_DIRECT` = 0, GTM magic = 0xAD).
//!
//! The receive side runs a small demultiplexer: packets are pumped one at
//! a time from ready conduits into a [`StreamAssembler`], which hands back
//! whole streams in header-arrival order. While a reader drains its
//! stream, packets of other interleaved streams arriving on the same
//! conduit are buffered, not lost. Fragment payloads are copied out of the
//! received packet into the application buffer; the copy is charged to the
//! cost model only on static-mode networks (matching the old direct
//! `recv_into` landing — on dynamic-mode networks it models the NIC
//! demultiplexing into a posted receive).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use mad_route::{PathHop, StripePolicy};
use mad_trace::{trace_count, trace_instant, trace_span, Tracer};

use crate::channel::Channel;
use crate::conduit::BufferMode;
use crate::credit::{cancel_error, FlowControl};
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::gtm::{
    self, CancelReason, GtmHeader, GtmPartDesc, GtmWriter, PacketBody, StreamAssembler, StreamItem,
    StreamKey, StreamTag, PRELUDE_LEN, STRIPE_OVERHEAD,
};
use crate::message::{MessageReader, MessageWriter};
use crate::multipath::MultiPath;
use crate::routing::RouteTable;
use crate::runtime::RtEvent;
use crate::types::{NetworkId, NodeId};

/// Note byte announcing a plain direct message (non-gateway senders only).
pub const NOTE_DIRECT: u8 = 0;

/// Receive-side demultiplexing state: the assembler plus, per stream, the
/// conduit it arrives on (so a reader knows where to pump for more).
struct Demux {
    asm: StreamAssembler,
    via: BTreeMap<StreamKey, (NetworkId, NodeId)>,
}

/// A virtual channel, seen from one node.
pub struct VirtualChannel {
    name: String,
    rank: NodeId,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    mtu: usize,
    recv_event: Arc<dyn RtEvent>,
    /// True when this node runs a forwarding engine for the channel; its
    /// direct sends must then be GTM-framed (see module docs).
    is_gateway: bool,
    /// Credit-based flow control for forwarded sends, when the session
    /// configured a window (see [`crate::credit`]).
    flow: Option<FlowControl>,
    /// The channel's shared multi-path routing plane, when the session
    /// enabled one. `None` keeps every path below byte-identical to the
    /// single-path library.
    multipath: Option<Arc<MultiPath>>,
    /// The node's telemetry plane on this channel, when the session
    /// enabled live metrics (in-band pulls, registry access).
    metrics: Option<Arc<crate::metrics_plane::MetricsPlane>>,
    /// The node's membership plane on this channel, when the session
    /// enabled dynamic membership (join/leave/rejoin, epoch tracking).
    member: Option<Arc<crate::membership::MembershipPlane>>,
    next_msg_id: AtomicU32,
    demux: Mutex<Demux>,
    tracer: Tracer,
    /// Session buffer pool: received packets are adopted into it so their
    /// landing buffers recycle once the application consumes them.
    pool: Arc<mad_util::pool::BufferPool>,
}

impl std::fmt::Debug for VirtualChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualChannel")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("networks", &self.regular.keys().collect::<Vec<_>>())
            .field("mtu", &self.mtu)
            .field("is_gateway", &self.is_gateway)
            .finish()
    }
}

impl VirtualChannel {
    /// Assemble a virtual channel (session-bootstrap use).
    #[allow(clippy::too_many_arguments)] // a one-caller bootstrap function
    pub fn assemble(
        name: String,
        rank: NodeId,
        regular: BTreeMap<NetworkId, Arc<Channel>>,
        special: BTreeMap<NetworkId, Arc<Channel>>,
        routes: RouteTable,
        mtu: usize,
        recv_event: Arc<dyn RtEvent>,
        is_gateway: bool,
        flow: Option<FlowControl>,
        multipath: Option<Arc<MultiPath>>,
        metrics: Option<Arc<crate::metrics_plane::MetricsPlane>>,
        member: Option<Arc<crate::membership::MembershipPlane>>,
    ) -> Self {
        let tracer = regular
            .values()
            .next()
            .map(|c| c.tracer().clone())
            .unwrap_or_default();
        let pool = regular
            .values()
            .next()
            .map(|c| c.runtime().pool().clone())
            .unwrap_or_default();
        VirtualChannel {
            name,
            rank,
            regular,
            special,
            routes,
            mtu,
            recv_event,
            is_gateway,
            flow,
            multipath,
            metrics,
            member,
            next_msg_id: AtomicU32::new(0),
            demux: Mutex::new(Demux {
                asm: StreamAssembler::with_pool(pool.clone()),
                via: BTreeMap::new(),
            }),
            tracer,
            pool,
        }
    }

    /// The virtual channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The route-wide fragment size used for forwarded messages.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Ranks reachable over this virtual channel.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut d: Vec<NodeId> = self.routes.destinations().collect();
        d.sort_unstable();
        d
    }

    /// True if messages to `dest` cross at least one gateway.
    pub fn is_forwarded(&self, dest: NodeId) -> Result<bool> {
        Ok(!self.routes.hop(dest)?.last)
    }

    /// The channel's multi-path routing plane, when the session enabled
    /// one (per-path byte splits, selector counters, route plans).
    pub fn multipath(&self) -> Option<&Arc<MultiPath>> {
        self.multipath.as_ref()
    }

    /// This node's telemetry plane on the channel, when the session
    /// enabled live metrics: registry access plus the in-band
    /// [`crate::metrics_plane::MetricsPlane::pull`] of remote snapshots.
    pub fn metrics_plane(&self) -> Option<&Arc<crate::metrics_plane::MetricsPlane>> {
        self.metrics.as_ref()
    }

    /// This node's membership plane on the channel, when the session
    /// enabled dynamic membership: the phase-logged
    /// [`crate::membership::MembershipPlane::join`] /
    /// [`crate::membership::MembershipPlane::leave`] /
    /// [`crate::membership::MembershipPlane::rejoin`] handshake plus the
    /// per-node epoch view.
    pub fn membership(&self) -> Option<&Arc<crate::membership::MembershipPlane>> {
        self.member.as_ref()
    }

    /// Allocate the tag of a new outgoing stream.
    fn next_tag(&self, dest: NodeId) -> StreamTag {
        StreamTag {
            src: self.rank,
            dest,
            msg_id: self.next_msg_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Begin a message to `dest`; transparently picks the direct path or
    /// the GTM + gateway path.
    pub fn begin_packing(&self, dest: NodeId) -> Result<VcWriter<'_, '_>> {
        let hop = self.routes.hop(dest)?;
        if hop.last {
            let channel = self
                .regular
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            if self.is_gateway {
                // The forwarding engine interleaves relayed packets on this
                // conduit, so the body must be self-described: send a GTM
                // stream flagged as direct instead of a raw message.
                // Direct streams never enter a forwarding engine, so no
                // hop buffers fragments and no flow control applies.
                let w = GtmWriter::begin(channel, dest, self.next_tag(dest), self.mtu, true, None)?;
                Ok(VcWriter::Gtm {
                    w,
                    forwarded: false,
                })
            } else {
                // Hold the conduit for the whole message: only this node's
                // application sends here, and the note + raw body must stay
                // contiguous because neither is self-described.
                let mut writer = channel.begin_packing_exclusive(dest)?;
                writer.send_control(&[&[NOTE_DIRECT]])?;
                Ok(VcWriter::Direct(writer))
            }
        } else {
            // Forwarded: with a multi-path plan of width ≥ 2 the stream
            // goes through the routing plane (adaptive path choice or
            // fragment striping). A one-path plan falls through to the
            // legacy code below, keeping single-gateway sessions
            // byte-identical to the pre-multipath library. Gateway-resident
            // senders also fall through: their engine's polling threads own
            // the special conduits' receive sides, so a multi-path writer
            // here could never pump its own handoff acks.
            if let (Some(mp), false) = (&self.multipath, self.is_gateway) {
                if let Some(ch) = self.regular.values().next() {
                    mp.refresh(ch.runtime().now_nanos());
                }
                let paths: Vec<PathHop> = mp
                    .plan(self.rank)
                    .paths(dest.0)
                    .iter()
                    .filter(|h| self.special.contains_key(&NetworkId(h.net)))
                    .copied()
                    .collect();
                if paths.len() >= 2 {
                    return match mp.policy() {
                        StripePolicy::PerFragment => self.begin_striped(dest, mp.clone(), paths),
                        StripePolicy::PerStream => self.begin_adaptive(dest, mp.clone(), paths),
                    };
                }
            }
            let channel = self
                .special
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            // On a gateway node the engine's polling threads own the
            // special conduits' receive sides and deposit arriving grants;
            // everywhere else the writer must pump its own conduit.
            let flow = self.flow.as_ref().map(|f| f.writer(!self.is_gateway));
            // Bulk payloads over the (controller-tunable) threshold run
            // the kind-12 rendezvous handshake; 0 keeps everything eager.
            let threshold = flow.as_ref().map(|f| f.rendezvous_threshold()).unwrap_or(0);
            let mut w = GtmWriter::begin(
                channel,
                hop.node,
                self.next_tag(dest),
                self.mtu,
                false,
                flow,
            )?;
            w.set_rendezvous_threshold(threshold);
            Ok(VcWriter::Gtm { w, forwarded: true })
        }
    }

    /// Start a per-stream adaptive multi-path message: the whole stream is
    /// bound to the cheapest live path now; a path fault mid-stream
    /// re-issues it on a surviving path (see [`MultipathWriter`]).
    fn begin_adaptive(
        &self,
        dest: NodeId,
        mp: Arc<MultiPath>,
        paths: Vec<PathHop>,
    ) -> Result<VcWriter<'_, '_>> {
        let hop = paths[0]; // placeholder; start() binds the real path
        let mut w = MultipathWriter {
            vc: self,
            mp,
            dest,
            tag: self.next_tag(dest),
            paths,
            packed: Vec::new(),
            inner: None,
            hop,
            tried: Vec::new(),
        };
        w.start(false)?;
        Ok(VcWriter::Multi(w))
    }

    /// Start a fragment-striped message over every live path (see
    /// [`StripedWriter`]). Falls back to the adaptive writer if fewer than
    /// two paths are currently live.
    fn begin_striped(
        &self,
        dest: NodeId,
        mp: Arc<MultiPath>,
        paths: Vec<PathHop>,
    ) -> Result<VcWriter<'_, '_>> {
        let mut live = mp.live(&paths);
        live.truncate(u8::MAX as usize);
        if live.len() < 2 {
            return self.begin_adaptive(dest, mp, paths);
        }
        // The stripe envelope must fit every path's packet limit; shrink
        // the announced MTU if a path is tighter than the route MTU.
        let mut mtu = self.mtu;
        for h in &live {
            let cap = self.special[&NetworkId(h.net)].caps().max_packet;
            mtu = mtu.min(cap.saturating_sub(PRELUDE_LEN + STRIPE_OVERHEAD));
        }
        assert!(mtu >= 1, "stripe envelope cannot fit any fragment");
        let tag = self.next_tag(dest);
        let mut header = GtmHeader::new(tag, mtu as u32, false);
        header.stripes = live.len() as u8;
        let pkt = gtm::encode_header(&header);
        // Every path's relays see the header before any envelope (conduit
        // FIFO per path), so each can open its per-stream state.
        for h in &live {
            self.special[&NetworkId(h.net)].send_packet(NodeId(h.node), &[&pkt])?;
        }
        let bytes_by_path = vec![0u64; live.len()];
        Ok(VcWriter::Striped(StripedWriter {
            vc: self,
            mp,
            tag,
            frag_prelude: gtm::frag_prelude(&tag),
            paths: live,
            mtu,
            next_seq: 0,
            rr: 0,
            bytes_by_path,
            finished: false,
        }))
    }

    /// Block until a whole message is available to start receiving: either
    /// a plain direct message or a GTM stream whose header has arrived.
    pub fn begin_unpacking(&self) -> Result<VcReader<'_>> {
        loop {
            if let Some((key, header, via)) = self.claim_ready_stream() {
                return Ok(VcReader::Gtm(GtmStreamReader {
                    vc: self,
                    key,
                    header,
                    via,
                    finished: false,
                    consumed: 0,
                    skip: 0,
                }));
            }
            let (net, peer) = self.select_any()?;
            let channel = &self.regular[&net];
            let packet = channel.lock_conduit(peer)?.recv_owned()?;
            channel.stats().on_recv(peer.0, packet.len());
            if packet.as_slice() == [NOTE_DIRECT] {
                drop(self.pool.adopt(packet)); // spent note: recycle
                return Ok(VcReader::Direct(channel.begin_unpacking_from(peer)?));
            }
            self.push_demux(net, peer, packet)?;
        }
    }

    /// Pop the oldest stream whose header has arrived, if any.
    fn claim_ready_stream(&self) -> Option<(StreamKey, GtmHeader, (NetworkId, NodeId))> {
        let mut d = self.demux.lock().unwrap();
        let key = d.asm.pop_ready()?;
        let header = d.asm.header(key).expect("ready stream has a header");
        let via = d.via[&key];
        Some((key, header, via))
    }

    /// Feed one received packet into the demultiplexer. Batch frames split
    /// into several packets and may open several streams at once.
    fn push_demux(&self, net: NetworkId, peer: NodeId, packet: Vec<u8>) -> Result<()> {
        trace_count!(self.tracer, "gtm", "decode", 1);
        // With a routing plane each stream is pinned to the conduit its
        // header arrived on, so stale packets of a failed-over attempt
        // (still in flight on the old path) are dropped, not interleaved.
        let origin = if self.multipath.is_some() {
            ((net.0 as u64 + 1) << 32) | peer.0 as u64
        } else {
            0
        };
        let mut d = self.demux.lock().unwrap();
        for key in d.asm.push_packet_from(origin, self.pool.adopt(packet))? {
            d.via.insert(key, (net, peer));
        }
        Ok(())
    }

    /// Find a regular-channel conduit with a pending packet, scanning
    /// networks and peers in deterministic order.
    fn select_any(&self) -> Result<(NetworkId, NodeId)> {
        loop {
            let seen = self.recv_event.epoch();
            let mut all_closed = true;
            for (&net, channel) in &self.regular {
                let peers: Vec<NodeId> = channel.peers().collect();
                for peer in peers {
                    let c = channel.lock_conduit(peer)?;
                    if c.ready() {
                        return Ok((net, peer));
                    }
                    if !c.closed() {
                        all_closed = false;
                    }
                }
            }
            if all_closed {
                return Err(MadError::Disconnected);
            }
            self.recv_event.wait_past(seen);
        }
    }
}

/// Writer over a virtual channel: either a plain message on the regular
/// channel or a GTM stream (toward a gateway, or direct-but-framed from a
/// gateway-resident sender).
pub enum VcWriter<'c, 'd> {
    /// Plain direct delivery on the shared network.
    Direct(MessageWriter<'c, 'd>),
    /// GTM-framed stream.
    Gtm {
        /// The stream writer.
        w: GtmWriter<'c>,
        /// True when the stream actually crosses a gateway.
        forwarded: bool,
    },
    /// Adaptive multi-path GTM stream: bound to one gateway path now,
    /// re-issued on a surviving path if that gateway dies mid-stream.
    Multi(MultipathWriter<'c, 'd>),
    /// Fragment-striped GTM stream over every live parallel path.
    Striped(StripedWriter<'c>),
}

impl<'d> VcWriter<'_, 'd> {
    /// Append a data block (`mad_pack`).
    pub fn pack(&mut self, data: &'d [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.pack(data, send, recv),
            VcWriter::Gtm { w, .. } => w.pack(data, send, recv),
            VcWriter::Multi(w) => w.pack(data, send, recv),
            VcWriter::Striped(w) => w.pack(data, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_packing(self) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.end_packing(),
            VcWriter::Gtm { w, .. } => w.end_packing(),
            VcWriter::Multi(w) => w.end_packing(),
            VcWriter::Striped(w) => w.end_packing(),
        }
    }

    /// True if this message crosses a gateway.
    pub fn is_forwarded(&self) -> bool {
        matches!(
            self,
            VcWriter::Gtm {
                forwarded: true,
                ..
            } | VcWriter::Multi(_)
                | VcWriter::Striped(_)
        )
    }
}

/// True when a send error means *this path* is unusable (the stream can be
/// re-issued on another path) rather than the stream itself being invalid.
fn is_path_fault(e: &MadError) -> bool {
    matches!(
        e,
        MadError::PeerUnreachable(_) | MadError::CreditTimeout { .. }
    )
}

/// Per-stream adaptive multi-path writer. The stream is an ordinary GTM
/// stream bound to the gateway the selector deems cheapest; every packed
/// block is also remembered (by reference — `pack` data must outlive the
/// writer anyway) so that, if the bound gateway dies mid-stream, the whole
/// stream can be re-issued from scratch on a surviving path with the
/// header's retry flag set. The receiver's assembler grafts the retry over
/// the partial first attempt, and readers skip the already-consumed prefix
/// of the replay ([`StreamItem::Restart`]).
pub struct MultipathWriter<'c, 'd> {
    vc: &'c VirtualChannel,
    mp: Arc<MultiPath>,
    dest: NodeId,
    tag: StreamTag,
    paths: Vec<PathHop>,
    /// Blocks packed so far, for failover replay.
    packed: Vec<(&'d [u8], SendMode, RecvMode)>,
    inner: Option<GtmWriter<'c>>,
    /// The path the live attempt is bound to (gateway rank + network).
    hop: PathHop,
    /// Gateways that already failed this stream (never re-chosen).
    tried: Vec<u32>,
}

impl<'d> MultipathWriter<'_, 'd> {
    /// Bind the stream to the cheapest live untried path and send its
    /// header. Path faults during the header send mark the path dead and
    /// move on; only running out of paths (or a non-path error) fails.
    fn start(&mut self, retry: bool) -> Result<()> {
        loop {
            let Some(hop) = self.mp.choose(self.dest, &self.paths, &self.tried) else {
                return Err(MadError::PeerUnreachable(self.dest));
            };
            let channel = &self.vc.special[&NetworkId(hop.net)];
            let flow = self.vc.flow.as_ref().map(|f| f.writer(!self.vc.is_gateway));
            // Request a handoff ack: the retry machinery can then also
            // cover a gateway that dies *after* accepting the whole stream
            // but before relaying its tail.
            match GtmWriter::begin_attempt(
                channel,
                NodeId(hop.node),
                self.tag,
                self.vc.mtu,
                false,
                retry,
                true,
                flow,
            ) {
                Ok(w) => {
                    self.inner = Some(w);
                    self.hop = hop;
                    if retry {
                        self.mp.note_failover();
                        trace_instant!(
                            self.vc.tracer,
                            "route",
                            "failover",
                            "gateway" = hop.node as u64,
                        );
                    }
                    return Ok(());
                }
                Err(e) if is_path_fault(&e) => {
                    self.mp.mark_dead(hop.node);
                    self.mp.complete(hop.node);
                    self.tried.push(hop.node);
                }
                Err(e) => {
                    self.mp.complete(hop.node);
                    return Err(e);
                }
            }
        }
    }

    /// The bound gateway died: retire it, re-issue the stream (retry
    /// header + replay of every packed block) on a surviving path.
    fn failover(&mut self) -> Result<()> {
        // The failed inner writer sealed itself on its error path.
        self.inner = None;
        self.mp.mark_dead(self.hop.node);
        self.mp.complete(self.hop.node);
        self.tried.push(self.hop.node);
        loop {
            self.start(true)?;
            match self.replay() {
                Ok(()) => return Ok(()),
                Err(e) if is_path_fault(&e) => {
                    self.inner = None;
                    self.mp.mark_dead(self.hop.node);
                    self.mp.complete(self.hop.node);
                    self.tried.push(self.hop.node);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-pack every block of the stream on the freshly bound path.
    fn replay(&mut self) -> Result<()> {
        let w = self.inner.as_mut().expect("replay without a live attempt");
        for &(data, send, recv) in &self.packed {
            w.pack(data, send, recv)?;
        }
        Ok(())
    }

    fn pack(&mut self, data: &'d [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        loop {
            let w = self.inner.as_mut().expect("pack on a finished stream");
            match w.pack(data, send, recv) {
                Ok(()) => {
                    self.packed.push((data, send, recv));
                    return Ok(());
                }
                // After a successful failover the replay covered `packed`
                // but not this block: loop to retry it on the new path.
                Err(e) if is_path_fault(&e) => self.failover()?,
                Err(e) => {
                    self.mp.complete(self.hop.node);
                    return Err(e);
                }
            }
        }
    }

    /// Finish the stream: send the end packet, then wait for the first-hop
    /// gateway's handoff ack. The ack (sent only after the gateway has
    /// retransmitted the end) closes the last failure window — a gateway
    /// that accepted the whole stream and died before relaying it would
    /// otherwise lose the stream with no one noticing. An ack deadline or
    /// a returning cancel marks the path dead and re-issues the stream on
    /// a survivor; the receiver absorbs replays of streams that did arrive
    /// (the ack, not the stream, was lost) as ghosts.
    fn end_packing(mut self) -> Result<()> {
        loop {
            let w = self.inner.take().expect("stream already finished");
            match w.end_packing().and_then(|()| self.wait_ack()) {
                Ok(()) => {
                    self.mp.complete(self.hop.node);
                    let bytes: u64 = self.packed.iter().map(|(d, _, _)| d.len() as u64).sum();
                    self.mp.note_bytes(self.hop.node, bytes);
                    return Ok(());
                }
                Err(e) if is_path_fault(&e) => self.failover()?,
                Err(e) => {
                    self.mp.complete(self.hop.node);
                    return Err(e);
                }
            }
        }
    }

    /// Pump the bound path's special conduit until the gateway's handoff
    /// ack for this stream arrives. Interleaved flow-control traffic of
    /// other streams is deposited into the shared ledger on the way; a
    /// cancel for this stream surfaces as its typed error; deadline expiry
    /// means the gateway died holding the stream.
    fn wait_ack(&self) -> Result<()> {
        let channel = &self.vc.special[&NetworkId(self.hop.net)];
        let peer = NodeId(self.hop.node);
        let runtime = channel.runtime();
        let deadline = runtime.now_nanos().saturating_add(self.mp.ack_timeout_ns());
        loop {
            let seen = channel.recv_event().epoch();
            // The node's metrics responder may have drained our ack off the
            // conduit while serving a pull; it parks such acks in the
            // plane's side table, and its deposit bumps the node event —
            // this wait's own event — so the claim below always runs.
            if let Some(p) = &self.vc.metrics {
                if p.take_ack(self.tag.key()) {
                    return Ok(());
                }
            }
            loop {
                let mut conduit = channel.lock_conduit(peer)?;
                if !conduit.ready() {
                    break;
                }
                let packet = runtime.pool().adopt(conduit.recv_owned()?);
                drop(conduit);
                channel.stats().on_recv(peer.0, packet.len());
                let (tag, body) = gtm::decode_packet(&packet)?;
                match body {
                    PacketBody::Ack if tag.key() == self.tag.key() => return Ok(()),
                    // An ack for some other stream: usually a stale one
                    // whose wait already gave up, but possibly a concurrent
                    // writer's — park it in the plane's side table so that
                    // writer can still claim it.
                    PacketBody::Ack => {
                        if let Some(p) = &self.vc.metrics {
                            p.deposit_ack(tag.key());
                        }
                    }
                    PacketBody::Credit(n) => {
                        if let Some(f) = &self.vc.flow {
                            f.ledger().deposit(tag.key(), n);
                        }
                    }
                    PacketBody::Cancel(reason) if tag.key() == self.tag.key() => {
                        return Err(cancel_error(reason, &self.tag));
                    }
                    PacketBody::Cancel(reason) => {
                        if let Some(f) = &self.vc.flow {
                            f.ledger().cancel(tag.key(), reason);
                        }
                    }
                    PacketBody::MetricsRequest | PacketBody::MetricsReply => {
                        if let Some(p) = &self.vc.metrics {
                            p.handle_packet(&tag, &body, &packet);
                        }
                    }
                    // Membership protocol traffic (kind 11) shares the
                    // special conduit: a late join ack or a peer's leave
                    // announcement may land while this writer waits.
                    PacketBody::Member(_) => {
                        if let Some(p) = &self.vc.member {
                            p.handle_packet(&tag, &body, &packet);
                        }
                    }
                    // A rendezvous CTS for a concurrent plain-path writer
                    // of this node: its whole-window grant goes into the
                    // shared ledger where that writer's wait_grant finds it.
                    PacketBody::RendezvousCts(m) => {
                        if let Some(f) = &self.vc.flow {
                            f.ledger().grant(tag.key(), m.window);
                        }
                    }
                    other => {
                        return Err(MadError::Protocol(format!(
                            "unexpected {other:?} while awaiting a handoff ack"
                        )))
                    }
                }
            }
            let now = runtime.now_nanos();
            if now >= deadline {
                return Err(MadError::PeerUnreachable(peer));
            }
            channel.recv_event().wait_past_timeout(seen, deadline - now);
        }
    }
}

/// Fragment-striped writer: the stream's header travels on *every* path,
/// and each body packet (descriptor, fragment, logical end) is wrapped in
/// a sequence-numbered stripe envelope and round-robined across the paths.
/// The receiver's assembler replays envelopes in sequence order, so the
/// reader sees exactly the single-path stream. Each path finally carries a
/// plain end packet as its transport terminator.
pub struct StripedWriter<'c> {
    vc: &'c VirtualChannel,
    mp: Arc<MultiPath>,
    tag: StreamTag,
    frag_prelude: [u8; PRELUDE_LEN],
    paths: Vec<PathHop>,
    /// Effective fragment size: the route MTU shrunk so prelude + envelope
    /// + fragment fits every path's packet limit.
    mtu: usize,
    next_seq: u32,
    rr: usize,
    bytes_by_path: Vec<u64>,
    finished: bool,
}

impl StripedWriter<'_> {
    /// Envelope one body packet and send it on the next path round-robin.
    /// Returns the path index used. A send failure marks unreachable paths
    /// dead so *future* streams shrink to the live set.
    fn send_next(&mut self, inner: &[&[u8]]) -> Result<usize> {
        let i = self.rr % self.paths.len();
        self.rr += 1;
        let hop = self.paths[i];
        let sp = gtm::stripe_prelude(&self.tag, self.next_seq);
        self.next_seq += 1;
        let mut parts: Vec<&[u8]> = Vec::with_capacity(inner.len() + 1);
        parts.push(&sp);
        parts.extend_from_slice(inner);
        let channel = &self.vc.special[&NetworkId(hop.net)];
        match channel.send_packet(NodeId(hop.node), &parts) {
            Ok(()) => Ok(i),
            Err(e) => {
                if matches!(e, MadError::PeerUnreachable(_)) {
                    self.mp.mark_dead(hop.node);
                }
                Err(e)
            }
        }
    }

    fn pack(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self.pack_inner(data, send, recv) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.finished = true;
                self.cancel_paths(0);
                Err(e)
            }
        }
    }

    fn pack_inner(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let part = gtm::encode_part(
            &self.tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send,
                recv,
            },
        );
        self.send_next(&[&part])?;
        for chunk in data.chunks(self.mtu) {
            let fp = self.frag_prelude;
            let i = self.send_next(&[&fp, chunk])?;
            self.bytes_by_path[i] += chunk.len() as u64;
        }
        Ok(())
    }

    /// Best-effort cancel on paths `from..` so downstream hops (and the
    /// receiver) release the stream instead of waiting for ends that will
    /// never come. Paths before `from` already carried their terminator.
    fn cancel_paths(&self, from: usize) {
        let pkt = gtm::encode_cancel(&self.tag, CancelReason::PeerUnreachable);
        for hop in &self.paths[from..] {
            let _ = self.vc.special[&NetworkId(hop.net)].send_packet(NodeId(hop.node), &[&pkt]);
        }
    }

    fn end_packing(mut self) -> Result<()> {
        let r = self.end_inner();
        self.finished = true;
        r
    }

    fn end_inner(&mut self) -> Result<()> {
        let end = gtm::encode_end(&self.tag);
        // The *logical* end rides an envelope (it carries the stream's
        // highest sequence number); the plain ends below only terminate
        // each path's transport-level stream state.
        if let Err(e) = self.send_next(&[&end]) {
            self.cancel_paths(0);
            return Err(e);
        }
        for i in 0..self.paths.len() {
            let hop = self.paths[i];
            let channel = &self.vc.special[&NetworkId(hop.net)];
            if let Err(e) = channel.send_packet(NodeId(hop.node), &[&end]) {
                if matches!(e, MadError::PeerUnreachable(_)) {
                    self.mp.mark_dead(hop.node);
                }
                self.cancel_paths(i);
                return Err(e);
            }
        }
        for (i, hop) in self.paths.iter().enumerate() {
            self.mp.note_bytes(hop.node, self.bytes_by_path[i]);
        }
        Ok(())
    }
}

impl Drop for StripedWriter<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("StripedWriter dropped without end_packing");
        }
    }
}

/// Reader of one GTM stream, pulling items from the channel demultiplexer
/// and pumping the stream's conduit when it runs dry. Packets of *other*
/// streams encountered while pumping are buffered for their own readers.
pub struct GtmStreamReader<'c> {
    vc: &'c VirtualChannel,
    key: StreamKey,
    header: GtmHeader,
    via: (NetworkId, NodeId),
    finished: bool,
    /// Items already handed to the caller, so a multi-path failover replay
    /// ([`StreamItem::Restart`]) can skip the same deterministic prefix.
    consumed: u64,
    /// Items of the current replay still to swallow silently.
    skip: u64,
}

impl GtmStreamReader<'_> {
    /// The original sender of the stream.
    pub fn source(&self) -> NodeId {
        self.header.tag.src
    }

    /// True if the stream crossed at least one gateway.
    pub fn is_forwarded(&self) -> bool {
        !self.header.direct
    }

    /// The stream was cancelled in flight: drop its demux state, seal the
    /// reader (no end packet will ever come) and build the typed error.
    fn cancel_cleanup(&mut self, reason: CancelReason) -> MadError {
        self.finished = true;
        let mut d = self.vc.demux.lock().unwrap();
        d.asm.finish(self.key);
        d.via.remove(&self.key);
        cancel_error(reason, &self.header.tag)
    }

    /// Next item of this stream, pumping conduits as needed. Without a
    /// routing plane only the stream's via-conduit is pumped; with one,
    /// any ready conduit is (stripes and failover replays arrive on paths
    /// other than the one the header came in on).
    fn next_item(&mut self) -> Result<StreamItem> {
        loop {
            let buffered = self.vc.demux.lock().unwrap().asm.next_item(self.key);
            if let Some(item) = buffered {
                match item {
                    StreamItem::Restart => {
                        // The sender re-issued the stream from scratch:
                        // swallow the prefix this reader already consumed
                        // (fragmentation is deterministic, so the replay's
                        // items line up one-to-one with the originals).
                        self.skip = self.consumed;
                        continue;
                    }
                    item @ StreamItem::Cancelled(_) => return Ok(item),
                    item => {
                        if self.skip > 0 {
                            self.skip -= 1;
                            continue;
                        }
                        self.consumed += 1;
                        return Ok(item);
                    }
                }
            }
            let (net, peer) = if self.vc.multipath.is_some() {
                self.vc.select_any()?
            } else {
                self.via
            };
            let channel = &self.vc.regular[&net];
            let packet = channel.lock_conduit(peer)?.recv_owned()?;
            channel.stats().on_recv(peer.0, packet.len());
            if packet.as_slice() == [NOTE_DIRECT] {
                // The via peer interleaves GTM packets (it is a gateway or a
                // gateway-resident sender); a raw note here is a bug.
                drop(self.vc.pool.adopt(packet));
                return Err(MadError::Protocol(
                    "plain direct note interleaved with GTM stream packets".into(),
                ));
            }
            self.vc.push_demux(net, peer, packet)?;
        }
    }

    /// Receive the next block into `dst`, validating the self-description
    /// against the caller's expectation. Data is valid on return (the GTM
    /// is eager, so express semantics hold for every block).
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let _reassemble = trace_span!(
            self.vc.tracer,
            "vc",
            "reassemble",
            "src" = self.header.tag.src.0 as u64,
            "bytes" = dst.len() as u64,
        );
        let desc = match self.next_item()? {
            StreamItem::Part(d) => d,
            StreamItem::Cancelled(reason) => return Err(self.cancel_cleanup(reason)),
            other => {
                return Err(MadError::Protocol(format!(
                    "expected GTM part descriptor, got {other:?}"
                )))
            }
        };
        if desc.len != dst.len() as u64 {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block is {} bytes, unpack expected {}",
                desc.len,
                dst.len()
            )));
        }
        if desc.send != send || desc.recv != recv {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block flags ({:?},{:?}) != unpack flags ({:?},{:?})",
                desc.send, desc.recv, send, recv
            )));
        }
        let channel = &self.vc.regular[&self.via.0];
        let charge_copies = channel.caps().mode == BufferMode::Static;
        let mut cursor = 0;
        while cursor < dst.len() {
            let payload_pkt = match self.next_item()? {
                StreamItem::Frag(p) => p,
                StreamItem::Cancelled(reason) => return Err(self.cancel_cleanup(reason)),
                other => {
                    return Err(MadError::Protocol(format!(
                        "expected GTM fragment, got {other:?}"
                    )))
                }
            };
            let payload = gtm::frag_payload(&payload_pkt);
            let end = cursor + payload.len();
            if end > dst.len() {
                return Err(MadError::Protocol(format!(
                    "fragment overruns its block: {} > {}",
                    end,
                    dst.len()
                )));
            }
            dst[cursor..end].copy_from_slice(payload);
            if charge_copies {
                channel.runtime().charge_copy(payload.len());
            }
            cursor = end;
        }
        Ok(())
    }

    /// Consume the end packet and drop the stream's demux state. Only a
    /// real end marks the stream *delivered* (so the assembler can absorb
    /// an ack-lost replay as a ghost); cancelled streams stay replayable.
    pub fn end_unpacking(mut self) -> Result<()> {
        self.finished = true;
        let item = self.next_item()?;
        let mut d = self.vc.demux.lock().unwrap();
        d.via.remove(&self.key);
        match item {
            StreamItem::End => {
                d.asm.finish_delivered(self.key);
                Ok(())
            }
            // Dropping the demux state is all the cleanup a cancelled
            // stream needs here.
            StreamItem::Cancelled(reason) => {
                d.asm.finish(self.key);
                Err(cancel_error(reason, &self.header.tag))
            }
            other => {
                d.asm.finish(self.key);
                Err(MadError::Protocol(format!(
                    "expected GTM end, got {other:?}"
                )))
            }
        }
    }
}

impl Drop for GtmStreamReader<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmStreamReader dropped without end_unpacking");
        }
    }
}

/// Reader over a virtual channel: plain or GTM decoding, per the framing.
pub enum VcReader<'c> {
    /// The message came straight from its sender as a plain body.
    Direct(MessageReader<'c>),
    /// The message is a GTM stream (forwarded, or direct-but-framed).
    Gtm(GtmStreamReader<'c>),
}

impl VcReader<'_> {
    /// The original sender (for GTM streams, from the stream header).
    pub fn source(&self) -> NodeId {
        match self {
            VcReader::Direct(r) => r.source(),
            VcReader::Gtm(r) => r.source(),
        }
    }

    /// True if this message crossed a gateway.
    pub fn is_forwarded(&self) -> bool {
        match self {
            VcReader::Direct(_) => false,
            VcReader::Gtm(r) => r.is_forwarded(),
        }
    }

    /// Receive the next block (`mad_unpack`), mirroring the sender's flags.
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.unpack(dst, send, recv),
            VcReader::Gtm(r) => r.unpack(dst, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_unpacking(self) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.end_unpacking(),
            VcReader::Gtm(r) => r.end_unpacking(),
        }
    }
}
