//! Virtual channels (paper §2.2).
//!
//! A virtual channel groups, for every network it spans, **two** real
//! channels: a *regular* channel for messages delivered to their final
//! destination and a *special* channel for messages that must cross a
//! gateway. When the application sends over the virtual channel, the
//! appropriate real channel is chosen dynamically from the routing table;
//! forwarded messages are encoded by the GTM so gateways can relay them
//! without knowing anything about the application.
//!
//! Messages always complete their last hop on the *regular* channel (the
//! multi-gateway disambiguation argument of §2.2.2), so a receiver cannot
//! tell from the channel alone whether a message was forwarded. A one-byte
//! *note* packet therefore precedes every message body ("we chose to
//! transmit this information before the actual message body transmission"),
//! selecting the plain or GTM decoding.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::channel::Channel;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::gtm::{GtmReader, GtmWriter};
use crate::message::{MessageReader, MessageWriter};
use crate::routing::RouteTable;
use crate::runtime::RtEvent;
use crate::types::{NetworkId, NodeId};

/// Note byte announcing a direct message.
pub const NOTE_DIRECT: u8 = 0;
/// Note byte announcing a gateway-forwarded (GTM-encoded) message.
pub const NOTE_FORWARDED: u8 = 1;

/// A virtual channel, seen from one node.
pub struct VirtualChannel {
    name: String,
    rank: NodeId,
    regular: BTreeMap<NetworkId, Arc<Channel>>,
    special: BTreeMap<NetworkId, Arc<Channel>>,
    routes: RouteTable,
    mtu: usize,
    recv_event: Arc<dyn RtEvent>,
}

impl std::fmt::Debug for VirtualChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualChannel")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("networks", &self.regular.keys().collect::<Vec<_>>())
            .field("mtu", &self.mtu)
            .finish()
    }
}

impl VirtualChannel {
    /// Assemble a virtual channel (session-bootstrap use).
    pub fn assemble(
        name: String,
        rank: NodeId,
        regular: BTreeMap<NetworkId, Arc<Channel>>,
        special: BTreeMap<NetworkId, Arc<Channel>>,
        routes: RouteTable,
        mtu: usize,
        recv_event: Arc<dyn RtEvent>,
    ) -> Self {
        VirtualChannel {
            name,
            rank,
            regular,
            special,
            routes,
            mtu,
            recv_event,
        }
    }

    /// The virtual channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// The route-wide fragment size used for forwarded messages.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Ranks reachable over this virtual channel.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut d: Vec<NodeId> = self.routes.destinations().collect();
        d.sort_unstable();
        d
    }

    /// True if messages to `dest` cross at least one gateway.
    pub fn is_forwarded(&self, dest: NodeId) -> Result<bool> {
        Ok(!self.routes.hop(dest)?.last)
    }

    /// Begin a message to `dest`; transparently picks the direct path or
    /// the GTM + gateway path.
    pub fn begin_packing(&self, dest: NodeId) -> Result<VcWriter<'_, '_>> {
        let hop = self.routes.hop(dest)?;
        if hop.last {
            let channel = self
                .regular
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            // Hold the conduit for the whole message: on gateway nodes the
            // forwarding engine delivers other nodes' messages over this
            // same conduit, and the note + body must stay contiguous.
            let mut writer = channel.begin_packing_exclusive(dest)?;
            writer.send_control(&[&[NOTE_DIRECT]])?;
            Ok(VcWriter::Direct(writer))
        } else {
            let channel = self
                .special
                .get(&hop.net)
                .ok_or(MadError::Unroutable(dest))?;
            Ok(VcWriter::Forwarded(GtmWriter::begin(
                channel, hop.node, self.rank, dest, self.mtu,
            )?))
        }
    }

    /// Block until a message arrives from anyone (over any of this node's
    /// networks) and begin receiving it.
    pub fn begin_unpacking(&self) -> Result<VcReader<'_>> {
        let (net, peer) = self.select_any()?;
        let channel = &self.regular[&net];
        let note = channel.lock_conduit(peer)?.recv_owned()?;
        match note.as_slice() {
            [NOTE_DIRECT] => Ok(VcReader::Direct(channel.begin_unpacking_from(peer)?)),
            [NOTE_FORWARDED] => Ok(VcReader::Forwarded(GtmReader::begin(channel, peer)?)),
            other => Err(MadError::Protocol(format!(
                "bad virtual-channel note packet: {other:?}"
            ))),
        }
    }

    /// Find a regular-channel conduit with a pending message, scanning
    /// networks and peers in deterministic order.
    fn select_any(&self) -> Result<(NetworkId, NodeId)> {
        loop {
            let seen = self.recv_event.epoch();
            let mut all_closed = true;
            for (&net, channel) in &self.regular {
                let peers: Vec<NodeId> = channel.peers().collect();
                for peer in peers {
                    let c = channel.lock_conduit(peer)?;
                    if c.ready() {
                        return Ok((net, peer));
                    }
                    if !c.closed() {
                        all_closed = false;
                    }
                }
            }
            if all_closed {
                return Err(MadError::Disconnected);
            }
            self.recv_event.wait_past(seen);
        }
    }
}

/// Writer over a virtual channel: either a plain message on the regular
/// channel or a GTM-encoded message toward a gateway.
pub enum VcWriter<'c, 'd> {
    /// Direct delivery on the shared network.
    Direct(MessageWriter<'c, 'd>),
    /// Gateway-forwarded delivery.
    Forwarded(GtmWriter<'c>),
}

impl<'d> VcWriter<'_, 'd> {
    /// Append a data block (`mad_pack`).
    pub fn pack(&mut self, data: &'d [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.pack(data, send, recv),
            VcWriter::Forwarded(w) => w.pack(data, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_packing(self) -> Result<()> {
        match self {
            VcWriter::Direct(w) => w.end_packing(),
            VcWriter::Forwarded(w) => w.end_packing(),
        }
    }

    /// True if this message crosses a gateway.
    pub fn is_forwarded(&self) -> bool {
        matches!(self, VcWriter::Forwarded(_))
    }
}

/// Reader over a virtual channel: plain or GTM decoding, per the note.
pub enum VcReader<'c> {
    /// The message came straight from its sender.
    Direct(MessageReader<'c>),
    /// The message crossed at least one gateway.
    Forwarded(GtmReader<'c>),
}

impl VcReader<'_> {
    /// The original sender (for forwarded messages, from the GTM header).
    pub fn source(&self) -> NodeId {
        match self {
            VcReader::Direct(r) => r.source(),
            VcReader::Forwarded(r) => r.source(),
        }
    }

    /// True if this message crossed a gateway.
    pub fn is_forwarded(&self) -> bool {
        matches!(self, VcReader::Forwarded(_))
    }

    /// Receive the next block (`mad_unpack`), mirroring the sender's flags.
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.unpack(dst, send, recv),
            VcReader::Forwarded(r) => r.unpack(dst, send, recv),
        }
    }

    /// Finalize the message.
    pub fn end_unpacking(self) -> Result<()> {
        match self {
            VcReader::Direct(r) => r.end_unpacking(),
            VcReader::Forwarded(r) => r.end_unpacking(),
        }
    }
}
