//! Transmission Modules: the protocol-facing bottom layer (paper §2.1.1).
//!
//! A [`Conduit`] virtualizes one reliable, in-order, packet-granular
//! point-to-point connection, the way a Madeleine Transmission Module wraps
//! BIP, SISCI or TCP. A [`Driver`] is the Protocol Management Module: a
//! factory of connected conduit pairs for one network.
//!
//! The static/dynamic buffer distinction (paper §2.1.1 and §2.3) is encoded
//! in the conduit operations themselves:
//!
//! * **dynamic** drivers transfer straight from/into user memory
//!   (`send` gathers without copying, `recv_into` lands data directly);
//! * **static** drivers require data to pass through driver-provided
//!   buffers: `send` must first copy into one (the driver charges that copy
//!   through the runtime), but [`Conduit::alloc_static`] +
//!   [`Conduit::send_static`] let a caller that *fills* such a buffer
//!   directly — the gateway receiving from another network — skip the copy.
//!   Symmetrically `recv_owned` surrenders the driver's receive buffer
//!   without copying, while `recv_into` pays a copy to user memory.
//!
//! The gateway's zero-copy handoff matrix (§2.3) is built purely from these
//! four operations, so it works for any driver pairing.

use std::sync::Arc;

use crate::error::{MadError, Result};
use crate::runtime::RtEvent;
use crate::types::NodeId;

/// Buffer discipline of a driver (paper §2.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferMode {
    /// User-allocated blocks are referenced directly (zero-copy).
    Dynamic,
    /// Data must transit through driver-provided buffers.
    Static,
}

/// Capabilities a Transmission Module advertises to the layers above.
#[derive(Debug, Clone, Copy)]
pub struct DriverCaps {
    /// Protocol name (e.g. `"sim-myrinet/bip"`).
    pub name: &'static str,
    /// Buffer discipline.
    pub mode: BufferMode,
    /// Maximum number of gathered segments per packet (≥ 1).
    pub max_gather: usize,
    /// Largest packet the driver accepts, in bytes.
    pub max_packet: usize,
    /// The packet size this driver performs best with; the GTM picks the
    /// minimum across a route (paper §2.3: "an optimal packet size for every
    /// network they go through").
    pub preferred_mtu: usize,
}

/// A driver-owned buffer for zero-copy staging on static-buffer networks.
///
/// The bytes live in a [`mad_util::pool::PooledBuf`], so a buffer landed
/// from recycled pool memory returns to the pool when it is dropped
/// without being sent (e.g. a gateway item cancelled mid-flight, or one
/// whose bytes were gathered into a batch frame). [`StaticBuf::into_vec`]
/// detaches instead — those bytes leave on the wire and are adopted back
/// by the receiving side.
#[derive(Debug)]
pub struct StaticBuf {
    owner: &'static str,
    data: mad_util::pool::PooledBuf,
}

impl StaticBuf {
    /// Create a buffer owned by driver `owner` (driver-internal use).
    pub fn new(owner: &'static str, len: usize) -> Self {
        StaticBuf {
            owner,
            data: vec![0u8; len].into(),
        }
    }

    /// Wrap pool-backed bytes as a buffer owned by `owner`. The gateway
    /// and the drivers land packets into recycled pool memory this way
    /// instead of allocating a fresh buffer per receive.
    pub fn from_pooled(owner: &'static str, data: mad_util::pool::PooledBuf) -> Self {
        StaticBuf { owner, data }
    }

    /// The driver this buffer belongs to.
    pub fn owner(&self) -> &'static str {
        self.owner
    }

    /// Writable view of the buffer.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Readable view of the buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shrink to `len` bytes, keeping ownership. Receivers that land
    /// variable-sized packets into an oversized buffer (the gateway's
    /// fragment-granular forwarding path) trim it to the received length
    /// before handing it on.
    pub fn truncate(&mut self, len: usize) {
        self.data.vec().truncate(len);
    }

    /// Consume into the raw bytes (driver-internal use). Detaches from
    /// the pool: callers put the bytes on the wire, and the receiving
    /// side adopts them back.
    pub fn into_vec(self) -> Vec<u8> {
        self.data.detach()
    }

    /// Check this buffer belongs to `user`, for `send_static` preconditions.
    pub fn check_owner(&self, user: &'static str) -> Result<()> {
        if self.owner == user {
            Ok(())
        } else {
            Err(MadError::ForeignStaticBuffer {
                owner: self.owner,
                user,
            })
        }
    }
}

/// One side of a reliable, in-order, packet-granular connection.
///
/// All methods take `&mut self`; a conduit is owned by one logical user at a
/// time (the channel wraps it in a lock when threads share it).
pub trait Conduit: Send {
    /// Advertised capabilities (constant for the conduit's lifetime).
    fn caps(&self) -> DriverCaps;

    /// Send one packet assembled from `parts` (scatter/gather). Static
    /// drivers copy the parts into a driver buffer first and charge that
    /// copy. Total length must be ≤ `caps().max_packet` and
    /// `parts.len()` ≤ `caps().max_gather`.
    fn send(&mut self, parts: &[&[u8]]) -> Result<()>;

    /// Send several complete GTM packets as one batch frame (one wire
    /// packet, one per-send overhead). The default implementation gathers
    /// the batch prelude, a u32 LE length prefix per packet, and the
    /// packet bytes through [`Conduit::send`], so drivers inherit their
    /// usual staging/copy accounting; a driver with native multi-packet
    /// submission may override. The caller keeps the framing within
    /// `caps().max_packet` and `1 + 2 × packets.len()` ≤
    /// `caps().max_gather`.
    fn send_batch(&mut self, packets: &[&[u8]]) -> Result<()> {
        let prelude = crate::gtm::batch_prelude();
        let lens: Vec<[u8; 4]> = packets
            .iter()
            .map(|p| (p.len() as u32).to_le_bytes())
            .collect();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(1 + 2 * packets.len());
        parts.push(&prelude);
        for (len, p) in lens.iter().zip(packets) {
            parts.push(len);
            parts.push(p);
        }
        self.send(&parts)
    }

    /// Send a driver-allocated buffer as one packet without any copy.
    /// The buffer must come from this conduit's [`Conduit::alloc_static`].
    fn send_static(&mut self, buf: StaticBuf) -> Result<()>;

    /// Allocate a `len`-byte driver buffer for zero-copy fill-then-send;
    /// `None` if this is a dynamic driver (no static buffers to offer).
    fn alloc_static(&mut self, len: usize) -> Option<StaticBuf>;

    /// Receive the next packet into `dst`, returning its length. Fails with
    /// [`MadError::BufferTooSmall`] if the packet exceeds `dst`. Dynamic
    /// drivers land data directly; static drivers charge one copy.
    fn recv_into(&mut self, dst: &mut [u8]) -> Result<usize>;

    /// Receive the next packet in the driver's least-copy owned form:
    /// dynamic drivers hand over the landed buffer, static drivers surrender
    /// their receive buffer — both copy-free.
    fn recv_owned(&mut self) -> Result<Vec<u8>>;

    /// True if a packet is already queued (never blocks).
    fn ready(&self) -> bool;

    /// True if a packet is awaiting service *right now* (never blocks).
    /// Defaults to [`Conduit::ready`]; drivers whose transport models
    /// in-flight delivery delay (the simulated NICs) override this to
    /// exclude packets still on the wire in modeled time — `ready` sees
    /// those as soon as the sender runs ahead, but nothing is actually
    /// backlogged at this end yet. The gateway's copy-placement
    /// accounting uses this to decide whether a receive-side copy
    /// delayed real work.
    fn backlog(&self) -> bool {
        self.ready()
    }

    /// True once the peer is gone *and* no queued packet remains: no data
    /// will ever arrive again. Lets multiplexed receivers terminate cleanly
    /// at session teardown.
    fn closed(&self) -> bool;

    /// Event bumped whenever a packet arrives for this conduit. Several
    /// conduits of one channel may share an event (multiplexed receive).
    fn recv_event(&self) -> Arc<dyn RtEvent>;
}

/// A Protocol Management Module: creates the connected conduit pairs of one
/// network. In this in-process reproduction, both ends are built centrally
/// at session bootstrap.
pub trait Driver: Send + Sync {
    /// Capabilities shared by every conduit of this driver.
    fn caps(&self) -> DriverCaps;

    /// Create a connected pair of conduits between ranks `a` and `b`.
    /// `ev_a`/`ev_b` are the arrival events of each side (typically one
    /// shared event per node per channel).
    fn connect(
        &self,
        a: NodeId,
        b: NodeId,
        ev_a: Arc<dyn RtEvent>,
        ev_b: Arc<dyn RtEvent>,
    ) -> (Box<dyn Conduit>, Box<dyn Conduit>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_buf_ownership_check() {
        let b = StaticBuf::new("sci", 16);
        assert!(b.check_owner("sci").is_ok());
        assert_eq!(
            b.check_owner("myri"),
            Err(MadError::ForeignStaticBuffer {
                owner: "sci",
                user: "myri"
            })
        );
    }

    #[test]
    fn static_buf_views() {
        let mut b = StaticBuf::new("x", 4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        b.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(b.into_vec(), vec![1, 2, 3, 4]);
    }
}
