//! The Generic Transmission Module (paper §2.2.1, §2.3).
//!
//! Every message that must travel through at least two different networks
//! is handled by this module on *both* endpoints, guaranteeing that buffers
//! are grouped identically on both sides regardless of which BMMs the
//! underlying networks prefer — the gateway never regroups anything.
//!
//! The GTM also makes messages **self-described**, which regular Madeleine
//! messages are not: a gateway knows nothing about the messages it relays,
//! so each forwarded message carries its destination, the route-wide MTU,
//! and per-block size/flag descriptors.
//!
//! ## Wire format (version 2)
//!
//! Version 2 extends the self-description from the *message* level down to
//! the *packet* level: every packet — control and fragment alike — opens
//! with a fixed 15-byte prelude identifying the stream it belongs to:
//!
//! ```text
//! offset 0   GTM_MAGIC (0xAD)
//! offset 1   GTM_VERSION (2)
//! offset 2   kind: 1 = header, 2 = part descriptor, 3 = end, 4 = fragment,
//!            5 = credit, 6 = cancel, 7 = batch
//! offset 3   source rank       (u32 LE)
//! offset 7   destination rank  (u32 LE)
//! offset 11  message id        (u32 LE, per-source counter)
//! ```
//!
//! followed by a kind-specific body:
//!
//! * **header** — route-wide MTU (u32 LE) + a flags byte (bit 0: the
//!   message is a *direct* delivery from a gateway-resident sender and
//!   never crossed a gateway);
//! * **part** — block length (u64 LE) + emission/reception constraint
//!   bytes;
//! * **fragment** — raw block bytes (at most MTU of them) at offset 15;
//! * **end** — nothing ("the description of an empty message").
//!
//! Because each packet names its stream, packets from concurrent messages
//! may interleave freely on a shared conduit: gateways forward at fragment
//! granularity instead of draining one message at a time, and the receive
//! side demultiplexes with [`StreamAssembler`]. The §7b lesson-2 atomicity
//! invariant consequently shrinks from hold-the-conduit-per-message to
//! hold-per-packet — each packet is sent as a single gather operation
//! under a single conduit-lock hold.
//!
//! The stream tag rides *inside* the fragment packet (as a gather prelude)
//! rather than as a separate control packet: per-packet send overhead on
//! the modeled networks is 20–60 µs, so a tag packet per fragment would
//! nearly double forwarding cost, while 15 extra bytes in-packet are noise.
//! The tag is route-invariant, which lets gateways relay packets verbatim
//! — the zero-copy forwarding matrix of §2.3 is unchanged.
//!
//! ## Batch frames
//!
//! A **batch** packet (kind 7, zero stream tag) carries a train of complete
//! GTM packets, each prefixed by its u32 LE length:
//!
//! ```text
//! offset 0   common prelude, kind = 7, src = dest = msg_id = 0
//! offset 15  len₀ (u32 LE) ‖ packet₀ ‖ len₁ (u32 LE) ‖ packet₁ ‖ …
//! ```
//!
//! Gateways use it to amortize the per-send buffer-switch overhead: several
//! queued packets bound for the same next hop leave as one conduit send and
//! are split back into individual packets by the receiving relay or
//! [`StreamAssembler`]. Batches never nest, and they are a transport-hop
//! artifact — a relay always re-batches (or not) according to its own queue
//! state rather than forwarding a batch frame verbatim.

#![deny(clippy::redundant_clone, clippy::large_types_passed_by_value)]

use std::collections::{BTreeMap, VecDeque};

use mad_trace::{trace_count, trace_span};
use mad_util::pool::PooledBuf;

use crate::channel::Channel;
use crate::credit::WriterFlow;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::types::NodeId;

/// First byte of every GTM packet.
pub const GTM_MAGIC: u8 = 0xAD;
/// Wire-format version emitted and accepted by this module.
pub const GTM_VERSION: u8 = 2;
/// Length of the common packet prelude; also the fragment payload offset.
pub const PRELUDE_LEN: usize = 15;

pub(crate) const KIND_HEADER: u8 = 1;
pub(crate) const KIND_PART: u8 = 2;
pub(crate) const KIND_END: u8 = 3;
pub(crate) const KIND_FRAG: u8 = 4;
pub(crate) const KIND_CREDIT: u8 = 5;
pub(crate) const KIND_CANCEL: u8 = 6;
pub(crate) const KIND_BATCH: u8 = 7;

/// Per-sub-packet framing overhead inside a batch frame (the u32 length
/// prefix). `PRELUDE_LEN + Σ (BATCH_ENTRY_OVERHEAD + lenᵢ)` is the full
/// frame size — senders use this to respect the conduit's packet limit.
pub const BATCH_ENTRY_OVERHEAD: usize = 4;

const HEADER_LEN: usize = PRELUDE_LEN + 5;
const PART_LEN: usize = PRELUDE_LEN + 10;
const CREDIT_LEN: usize = PRELUDE_LEN + 4;
const CANCEL_LEN: usize = PRELUDE_LEN + 1;

/// Flag bit: the stream is a direct (zero-gateway) delivery.
const FLAG_DIRECT: u8 = 1;

/// Identity of one in-flight message stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamTag {
    /// Originating rank.
    pub src: NodeId,
    /// Final destination rank.
    pub dest: NodeId,
    /// Per-source message counter, unique among the source's live streams.
    pub msg_id: u32,
}

/// Demultiplexing key: `(source rank, message id)`. The destination is not
/// part of the key — at any given hop all streams from one source share a
/// message-id space, and the final receiver only sees its own.
pub type StreamKey = (u32, u32);

impl StreamTag {
    /// The demultiplexing key for this stream.
    pub fn key(&self) -> StreamKey {
        (self.src.0, self.msg_id)
    }
}

/// Message-level self-description carried by the header packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmHeader {
    /// The stream this header opens.
    pub tag: StreamTag,
    /// Fragment size used for the whole route.
    pub mtu: u32,
    /// True for direct (zero-gateway) deliveries from gateway-resident
    /// senders; such streams never enter a forwarding engine.
    pub direct: bool,
}

/// Per-block self-description carried by a descriptor packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmPartDesc {
    /// Block length in bytes.
    pub len: u64,
    /// Emission constraint the sender packed with.
    pub send: SendMode,
    /// Reception constraint the receiver must unpack with.
    pub recv: RecvMode,
}

/// Why a stream was cancelled mid-flight, carried by the cancel packet so
/// every party drops the stream with the same typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// A hop toward the destination stopped responding (send failure).
    PeerUnreachable,
    /// A credit wait exceeded its deadline (downstream stalled).
    CreditTimeout,
}

impl CancelReason {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            CancelReason::PeerUnreachable => 1,
            CancelReason::CreditTimeout => 2,
        }
    }

    pub(crate) fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(CancelReason::PeerUnreachable),
            2 => Some(CancelReason::CreditTimeout),
            _ => None,
        }
    }
}

/// The kind-specific body of a decoded packet. Fragment payload bytes stay
/// in the packet buffer (from offset [`PRELUDE_LEN`]); use
/// [`frag_payload`] to borrow them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBody {
    /// Start of a stream.
    Header(GtmHeader),
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// One MTU-bounded slice of block data.
    Frag,
    /// End of the stream.
    End,
    /// Flow control: the downstream end of a conduit has retransmitted this
    /// many of the stream's fragments and grants the sender the right to
    /// emit as many more. Flows *against* the stream direction.
    Credit(u32),
    /// The stream is dead and will never deliver its end packet; every
    /// holder of its state must drop it and surface the typed reason.
    Cancel(CancelReason),
    /// A length-prefixed train of complete packets sent as one conduit
    /// operation; split with [`batch_packets`]. Carries no stream tag of
    /// its own.
    Batch,
}

fn prelude_into(v: &mut Vec<u8>, kind: u8, tag: &StreamTag) {
    v.push(GTM_MAGIC);
    v.push(GTM_VERSION);
    v.push(kind);
    v.extend_from_slice(&tag.src.0.to_le_bytes());
    v.extend_from_slice(&tag.dest.0.to_le_bytes());
    v.extend_from_slice(&tag.msg_id.to_le_bytes());
}

/// Encode a header packet into `v` (cleared first). The `_into` encoders
/// exist so hot paths can stage control packets in recycled buffers
/// instead of allocating a fresh `Vec` per packet.
pub fn encode_header_into(v: &mut Vec<u8>, h: &GtmHeader) {
    v.clear();
    v.reserve(HEADER_LEN);
    prelude_into(v, KIND_HEADER, &h.tag);
    v.extend_from_slice(&h.mtu.to_le_bytes());
    v.push(if h.direct { FLAG_DIRECT } else { 0 });
}

/// Encode a header packet.
pub fn encode_header(h: &GtmHeader) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN);
    encode_header_into(&mut v, h);
    v
}

/// Encode a block-descriptor packet into `v` (cleared first).
pub fn encode_part_into(v: &mut Vec<u8>, tag: &StreamTag, d: &GtmPartDesc) {
    v.clear();
    v.reserve(PART_LEN);
    prelude_into(v, KIND_PART, tag);
    v.extend_from_slice(&d.len.to_le_bytes());
    v.push(d.send.to_wire());
    v.push(d.recv.to_wire());
}

/// Encode a block-descriptor packet.
pub fn encode_part(tag: &StreamTag, d: &GtmPartDesc) -> Vec<u8> {
    let mut v = Vec::with_capacity(PART_LEN);
    encode_part_into(&mut v, tag, d);
    v
}

/// Encode the end-of-stream packet into `v` (cleared first).
pub fn encode_end_into(v: &mut Vec<u8>, tag: &StreamTag) {
    v.clear();
    v.reserve(PRELUDE_LEN);
    prelude_into(v, KIND_END, tag);
}

/// Encode the end-of-stream packet.
pub fn encode_end(tag: &StreamTag) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    encode_end_into(&mut v, tag);
    v
}

/// Encode a credit grant of `count` fragments for a stream into `v`
/// (cleared first). Credits travel hop-by-hop on the same (bidirectional)
/// conduit as the stream, in the opposite direction.
pub fn encode_credit_into(v: &mut Vec<u8>, tag: &StreamTag, count: u32) {
    assert!(count > 0, "a credit grant must carry at least one credit");
    v.clear();
    v.reserve(CREDIT_LEN);
    prelude_into(v, KIND_CREDIT, tag);
    v.extend_from_slice(&count.to_le_bytes());
}

/// Encode a credit grant of `count` fragments for a stream.
pub fn encode_credit(tag: &StreamTag, count: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(CREDIT_LEN);
    encode_credit_into(&mut v, tag, count);
    v
}

/// Encode a stream-cancel packet into `v` (cleared first).
pub fn encode_cancel_into(v: &mut Vec<u8>, tag: &StreamTag, reason: CancelReason) {
    v.clear();
    v.reserve(CANCEL_LEN);
    prelude_into(v, KIND_CANCEL, tag);
    v.push(reason.to_wire());
}

/// Encode a stream-cancel packet.
pub fn encode_cancel(tag: &StreamTag, reason: CancelReason) -> Vec<u8> {
    let mut v = Vec::with_capacity(CANCEL_LEN);
    encode_cancel_into(&mut v, tag, reason);
    v
}

/// The constant prelude of a batch frame. A batch carries no stream of its
/// own, so the tag fields are zero; the sub-packet train follows as a
/// gather send `[prelude, len₀, packet₀, len₁, packet₁, …]`.
pub fn batch_prelude() -> [u8; PRELUDE_LEN] {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(
        &mut v,
        KIND_BATCH,
        &StreamTag {
            src: NodeId(0),
            dest: NodeId(0),
            msg_id: 0,
        },
    );
    v.try_into().expect("prelude length")
}

/// Assemble a batch frame from complete packets. Test/diagnostic helper —
/// hot paths gather the identical layout wire-side with
/// [`crate::conduit::Conduit::send_batch`] instead of staging a frame.
pub fn encode_batch(packets: &[&[u8]]) -> Vec<u8> {
    assert!(!packets.is_empty(), "a batch carries at least one packet");
    let total = PRELUDE_LEN
        + packets
            .iter()
            .map(|p| BATCH_ENTRY_OVERHEAD + p.len())
            .sum::<usize>();
    let mut v = Vec::with_capacity(total);
    v.extend_from_slice(&batch_prelude());
    for p in packets {
        v.extend_from_slice(&(p.len() as u32).to_le_bytes());
        v.extend_from_slice(p);
    }
    v
}

/// Iterate the complete sub-packets of a validated batch frame, in order.
/// Fails if `frame` is not a well-formed batch packet.
pub fn batch_packets(frame: &[u8]) -> Result<BatchPackets<'_>> {
    match decode_packet(frame)? {
        (_, PacketBody::Batch) => Ok(BatchPackets {
            rest: &frame[PRELUDE_LEN..],
        }),
        _ => Err(MadError::Protocol(
            "batch_packets on a non-batch GTM packet".into(),
        )),
    }
}

/// Iterator over the sub-packet slices of a batch frame; see
/// [`batch_packets`]. Infallible because the frame was validated whole at
/// decode time.
pub struct BatchPackets<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for BatchPackets<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let len = u32::from_le_bytes(self.rest[..4].try_into().unwrap()) as usize;
        let (pkt, rest) = self.rest[4..].split_at(len);
        self.rest = rest;
        Some(pkt)
    }
}

/// The constant fragment prelude for a stream. Senders emit each fragment
/// as one gather send `[prelude, chunk]`, so the tag costs no extra packet.
pub fn frag_prelude(tag: &StreamTag) -> [u8; PRELUDE_LEN] {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(&mut v, KIND_FRAG, tag);
    v.try_into().expect("prelude length")
}

/// Borrow the payload bytes of a fragment packet.
pub fn frag_payload(packet: &[u8]) -> &[u8] {
    &packet[PRELUDE_LEN..]
}

/// Decode any GTM packet into its stream tag and body. Fails on anything
/// that is not well-formed version-2 framing.
pub fn decode_packet(packet: &[u8]) -> Result<(StreamTag, PacketBody)> {
    let err = |msg: &str| MadError::Protocol(format!("GTM packet: {msg}"));
    if packet.len() < PRELUDE_LEN || packet[0] != GTM_MAGIC {
        return Err(err("bad magic"));
    }
    if packet[1] != GTM_VERSION {
        return Err(err("unsupported version"));
    }
    let tag = StreamTag {
        src: NodeId(u32::from_le_bytes(packet[3..7].try_into().unwrap())),
        dest: NodeId(u32::from_le_bytes(packet[7..11].try_into().unwrap())),
        msg_id: u32::from_le_bytes(packet[11..15].try_into().unwrap()),
    };
    let body = match packet[2] {
        KIND_HEADER => {
            if packet.len() != HEADER_LEN {
                return Err(err("header length"));
            }
            let mtu = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if mtu == 0 {
                return Err(err("zero MTU"));
            }
            let flags = packet[19];
            if flags & !FLAG_DIRECT != 0 {
                return Err(err("unknown header flags"));
            }
            PacketBody::Header(GtmHeader {
                tag,
                mtu,
                direct: flags & FLAG_DIRECT != 0,
            })
        }
        KIND_PART => {
            if packet.len() != PART_LEN {
                return Err(err("descriptor length"));
            }
            let len = u64::from_le_bytes(packet[15..23].try_into().unwrap());
            let send = SendMode::from_wire(packet[23]).ok_or_else(|| err("send mode"))?;
            let recv = RecvMode::from_wire(packet[24]).ok_or_else(|| err("recv mode"))?;
            PacketBody::Part(GtmPartDesc { len, send, recv })
        }
        KIND_END => {
            if packet.len() != PRELUDE_LEN {
                return Err(err("end length"));
            }
            PacketBody::End
        }
        KIND_FRAG => {
            if packet.len() == PRELUDE_LEN {
                return Err(err("empty fragment"));
            }
            PacketBody::Frag
        }
        KIND_CREDIT => {
            if packet.len() != CREDIT_LEN {
                return Err(err("credit length"));
            }
            let count = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if count == 0 {
                return Err(err("zero credit grant"));
            }
            PacketBody::Credit(count)
        }
        KIND_CANCEL => {
            if packet.len() != CANCEL_LEN {
                return Err(err("cancel length"));
            }
            let reason = CancelReason::from_wire(packet[15]).ok_or_else(|| err("cancel reason"))?;
            PacketBody::Cancel(reason)
        }
        KIND_BATCH => {
            // Validate the whole train up front so the sub-packet iterator
            // can be infallible: every length prefix must delimit a
            // plausibly-framed, non-nested packet.
            let mut rest = &packet[PRELUDE_LEN..];
            if rest.is_empty() {
                return Err(err("empty batch"));
            }
            while !rest.is_empty() {
                if rest.len() < 4 {
                    return Err(err("truncated batch length prefix"));
                }
                let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
                rest = &rest[4..];
                if len < PRELUDE_LEN || len > rest.len() {
                    return Err(err("batch entry length"));
                }
                if rest[2] == KIND_BATCH {
                    return Err(err("nested batch"));
                }
                rest = &rest[len..];
            }
            PacketBody::Batch
        }
        _ => Err(err("unknown kind"))?,
    };
    Ok((tag, body))
}

/// Number of fragments a `len`-byte block occupies at a given MTU.
pub fn fragment_count(len: u64, mtu: u32) -> u64 {
    if len == 0 {
        0
    } else {
        len.div_ceil(mtu as u64)
    }
}

/// Sender side of the GTM: writes a self-described, MTU-fragmented stream
/// toward the first hop (a gateway over a *special* channel, or — for
/// direct streams from gateway-resident senders — the destination itself
/// over the *regular* channel).
///
/// The GTM transmits eagerly — each block leaves at `pack` time — which is
/// what keeps the gateway pipeline fed. Unlike version 1, the conduit is
/// *not* held across the message: every packet is self-described, so each
/// is sent under its own lock hold and packets of concurrent streams
/// interleave freely on shared conduits.
pub struct GtmWriter<'c> {
    channel: &'c Channel,
    first_hop: NodeId,
    tag: StreamTag,
    frag_prelude: [u8; PRELUDE_LEN],
    mtu: usize,
    finished: bool,
    flow: Option<WriterFlow>,
    /// Recycled staging buffer for the stream's control packets (header,
    /// descriptors, end, cancel) — one pool hit per stream instead of one
    /// heap allocation per packet.
    scratch: PooledBuf,
}

impl<'c> GtmWriter<'c> {
    /// Start a stream: emits the header packet immediately. When `flow` is
    /// given the stream is credit-controlled: each fragment consumes one
    /// credit from the stream's window before it may leave, and the wait is
    /// deadline-bounded (see [`crate::credit`]).
    pub fn begin(
        channel: &'c Channel,
        first_hop: NodeId,
        tag: StreamTag,
        mtu: usize,
        direct: bool,
        flow: Option<WriterFlow>,
    ) -> Result<Self> {
        assert!(mtu > 0, "GTM MTU must be positive");
        assert!(
            mtu.saturating_add(PRELUDE_LEN) <= channel.caps().max_packet,
            "GTM MTU plus fragment prelude exceeds the first hop's max packet size"
        );
        let mut scratch = channel.runtime().pool().get(PART_LEN);
        encode_header_into(
            scratch.vec(),
            &GtmHeader {
                tag,
                mtu: mtu as u32,
                direct,
            },
        );
        if let Some(flow) = &flow {
            flow.open(tag.key());
        }
        if let Err(e) = channel.send_packet(first_hop, &[&scratch]) {
            if let Some(flow) = &flow {
                flow.close(tag.key());
            }
            return Err(e);
        }
        trace_count!(channel.tracer(), "gtm", "encode", 1);
        Ok(GtmWriter {
            channel,
            first_hop,
            tag,
            frag_prelude: frag_prelude(&tag),
            mtu,
            finished: false,
            flow,
            scratch,
        })
    }

    /// Append a block: descriptor packet, then tagged MTU-sized fragments.
    ///
    /// On error the stream is dead: the writer seals itself (no further
    /// packets, dropping it is fine), the stream's credit account is
    /// released, and — if the stream was cancelled (credit timeout or
    /// unreachable peer) — a best-effort cancel packet chases the stream so
    /// downstream hops can release its state instead of waiting for an end
    /// that will never come.
    pub fn pack(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self.pack_inner(data, send, recv) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.abort(&e);
                Err(e)
            }
        }
    }

    fn pack_inner(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let _pack = trace_span!(
            self.channel.tracer(),
            "gtm",
            "pack",
            "dest" = self.tag.dest.0 as u64,
            "bytes" = data.len() as u64,
        );
        encode_part_into(
            self.scratch.vec(),
            &self.tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send,
                recv,
            },
        );
        self.channel.send_packet(self.first_hop, &[&self.scratch])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        for chunk in data.chunks(self.mtu) {
            if let Some(flow) = &self.flow {
                flow.take(self.channel, self.first_hop, &self.tag)?;
            }
            self.channel
                .send_packet(self.first_hop, &[&self.frag_prelude, chunk])?;
            trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        }
        Ok(())
    }

    /// Seal a failed stream: release its credit account and, when the local
    /// credit wait is what gave up, tell downstream hops to drop it.
    fn abort(&mut self, cause: &MadError) {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        let reason = match cause {
            MadError::CreditTimeout { .. } => Some(CancelReason::CreditTimeout),
            MadError::PeerUnreachable(_) => Some(CancelReason::PeerUnreachable),
            _ => None,
        };
        if let Some(reason) = reason {
            // Best effort — the first hop may itself be unreachable.
            encode_cancel_into(self.scratch.vec(), &self.tag, reason);
            let _ = self.channel.send_packet(self.first_hop, &[&self.scratch]);
        }
    }

    /// Finish the stream with the end packet.
    pub fn end_packing(mut self) -> Result<()> {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        encode_end_into(self.scratch.vec(), &self.tag);
        self.channel.send_packet(self.first_hop, &[&self.scratch])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        Ok(())
    }
}

impl Drop for GtmWriter<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmWriter dropped without end_packing");
        }
    }
}

/// One buffered item of a partially received stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// A fragment packet, stored verbatim (payload at [`PRELUDE_LEN`]).
    /// Pool-backed when the assembler has a pool, so consuming a fragment
    /// recycles its landing buffer.
    Frag(PooledBuf),
    /// End of the stream.
    End,
    /// The stream was cancelled upstream and will never end normally.
    Cancelled(CancelReason),
}

struct PendingStream {
    header: GtmHeader,
    items: VecDeque<StreamItem>,
}

/// Receive-side demultiplexer: turns an interleaved sequence of version-2
/// packets (from any number of conduits) back into per-stream item queues.
///
/// Purely computational — no I/O, no locking — so the interleave/reassemble
/// logic is testable in isolation. Streams become *ready* in header-arrival
/// order; [`StreamAssembler::pop_ready`] hands them out FIFO, which is what
/// preserves per-sender delivery order end to end.
#[derive(Default)]
pub struct StreamAssembler {
    streams: BTreeMap<StreamKey, PendingStream>,
    ready: VecDeque<StreamKey>,
    /// When present, fragments split out of batch frames are copied into
    /// recycled buffers instead of fresh heap allocations.
    pool: Option<std::sync::Arc<mad_util::pool::BufferPool>>,
}

impl StreamAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty assembler drawing batch-split fragment copies from `pool`.
    pub fn with_pool(pool: std::sync::Arc<mad_util::pool::BufferPool>) -> Self {
        StreamAssembler {
            pool: Some(pool),
            ..Self::default()
        }
    }

    /// Feed one received packet — possibly a batch frame, which is split
    /// into its sub-packets in order. Returns the keys of the streams the
    /// packet opened (headers that just arrived); empty for anything else.
    pub fn push_packet(&mut self, packet: impl Into<PooledBuf>) -> Result<Vec<StreamKey>> {
        let packet = packet.into();
        let (tag, body) = decode_packet(&packet)?;
        if matches!(body, PacketBody::Batch) {
            let mut opened = Vec::new();
            for sub in batch_packets(&packet)? {
                let buf = match &self.pool {
                    Some(pool) => {
                        let mut b = pool.get(sub.len());
                        b.vec().extend_from_slice(sub);
                        b
                    }
                    None => PooledBuf::from(sub.to_vec()),
                };
                opened.extend(self.push_one(buf)?);
            }
            return Ok(opened);
        }
        self.push_one_decoded(packet, tag, body)
    }

    fn push_one(&mut self, packet: PooledBuf) -> Result<Vec<StreamKey>> {
        let (tag, body) = decode_packet(&packet)?;
        self.push_one_decoded(packet, tag, body)
    }

    fn push_one_decoded(
        &mut self,
        packet: PooledBuf,
        tag: StreamTag,
        body: PacketBody,
    ) -> Result<Vec<StreamKey>> {
        let key = tag.key();
        match body {
            PacketBody::Batch => Err(MadError::Protocol(
                "nested batch frame reached a stream assembler".into(),
            )),
            PacketBody::Credit(_) => {
                // Credits are hop-by-hop flow control consumed by writers
                // and gateway engines; one surviving to an assembler means
                // a routing layer leaked it.
                Err(MadError::Protocol(format!(
                    "credit packet for stream {key:?} reached a stream assembler"
                )))
            }
            PacketBody::Header(header) => {
                if self.streams.contains_key(&key) {
                    return Err(MadError::Protocol(format!(
                        "duplicate GTM header for stream {key:?}"
                    )));
                }
                self.streams.insert(
                    key,
                    PendingStream {
                        header,
                        items: VecDeque::new(),
                    },
                );
                self.ready.push_back(key);
                Ok(vec![key])
            }
            body => {
                let stream = self.streams.get_mut(&key).ok_or_else(|| {
                    MadError::Protocol(format!("GTM packet for unknown stream {key:?}"))
                })?;
                stream.items.push_back(match body {
                    PacketBody::Part(d) => StreamItem::Part(d),
                    PacketBody::Frag => StreamItem::Frag(packet),
                    PacketBody::End => StreamItem::End,
                    PacketBody::Cancel(reason) => StreamItem::Cancelled(reason),
                    PacketBody::Header(_) | PacketBody::Credit(_) | PacketBody::Batch => {
                        unreachable!()
                    }
                });
                Ok(Vec::new())
            }
        }
    }

    /// Next unclaimed stream, in header-arrival order.
    pub fn pop_ready(&mut self) -> Option<StreamKey> {
        self.ready.pop_front()
    }

    /// The header of a known stream.
    pub fn header(&self, key: StreamKey) -> Option<GtmHeader> {
        self.streams.get(&key).map(|s| s.header)
    }

    /// Pop the next buffered item of a stream, if any.
    pub fn next_item(&mut self, key: StreamKey) -> Option<StreamItem> {
        self.streams.get_mut(&key)?.items.pop_front()
    }

    /// Drop a fully consumed stream.
    pub fn finish(&mut self, key: StreamKey) {
        self.streams.remove(&key);
    }

    /// True when no stream state is held at all.
    pub fn is_idle(&self) -> bool {
        self.streams.is_empty() && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(src: u32, dest: u32, msg_id: u32) -> StreamTag {
        StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        }
    }

    #[test]
    fn control_round_trips() {
        let h = GtmHeader {
            tag: tag(3, 7, 41),
            mtu: 16384,
            direct: false,
        };
        assert_eq!(
            decode_packet(&encode_header(&h)),
            Ok((h.tag, PacketBody::Header(h)))
        );
        let hd = GtmHeader {
            tag: tag(2, 5, 0),
            mtu: 1,
            direct: true,
        };
        assert_eq!(
            decode_packet(&encode_header(&hd)),
            Ok((hd.tag, PacketBody::Header(hd)))
        );
        let d = GtmPartDesc {
            len: 123456789,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        let t = tag(1, 2, 3);
        assert_eq!(
            decode_packet(&encode_part(&t, &d)),
            Ok((t, PacketBody::Part(d)))
        );
        assert_eq!(decode_packet(&encode_end(&t)), Ok((t, PacketBody::End)));
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"abc");
        assert_eq!(decode_packet(&frag), Ok((t, PacketBody::Frag)));
        assert_eq!(frag_payload(&frag), b"abc");
        assert_eq!(
            decode_packet(&encode_credit(&t, 1)),
            Ok((t, PacketBody::Credit(1)))
        );
        assert_eq!(
            decode_packet(&encode_credit(&t, u32::MAX)),
            Ok((t, PacketBody::Credit(u32::MAX)))
        );
        for reason in [CancelReason::PeerUnreachable, CancelReason::CreditTimeout] {
            assert_eq!(
                decode_packet(&encode_cancel(&t, reason)),
                Ok((t, PacketBody::Cancel(reason)))
            );
        }
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(decode_packet(&[]).is_err());
        assert!(decode_packet(&[0x00; PRELUDE_LEN]).is_err());
        // Version 1 framing must be rejected, not misparsed.
        let mut v1ish = encode_end(&tag(0, 1, 0));
        v1ish[1] = 1;
        assert!(decode_packet(&v1ish).is_err());
        // Unknown kind.
        let mut bad = encode_end(&tag(0, 1, 0));
        bad[2] = 99;
        assert!(decode_packet(&bad).is_err());
        // Truncated header.
        let h = encode_header(&GtmHeader {
            tag: tag(0, 1, 0),
            mtu: 64,
            direct: false,
        });
        assert!(decode_packet(&h[..h.len() - 1]).is_err());
        // Zero MTU.
        let mut z = h.clone();
        z[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&z).is_err());
        // Unknown flag bits.
        let mut f = h.clone();
        f[19] = 0xF0;
        assert!(decode_packet(&f).is_err());
        // Bad flag bytes in a descriptor.
        let mut d = encode_part(
            &tag(0, 1, 0),
            &GtmPartDesc {
                len: 1,
                send: SendMode::Safer,
                recv: RecvMode::Express,
            },
        );
        d[23] = 77;
        assert!(decode_packet(&d).is_err());
        // A fragment must carry at least one payload byte.
        assert!(decode_packet(&frag_prelude(&tag(0, 1, 0))).is_err());
        // A zero-count credit grant is meaningless and must be rejected.
        let mut c = encode_credit(&tag(0, 1, 0), 1);
        c[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&c).is_err());
        // Truncated credit.
        let c2 = encode_credit(&tag(0, 1, 0), 3);
        assert!(decode_packet(&c2[..c2.len() - 1]).is_err());
        // Unknown cancel reason byte.
        let mut k = encode_cancel(&tag(0, 1, 0), CancelReason::PeerUnreachable);
        k[15] = 0;
        assert!(decode_packet(&k).is_err());
    }

    #[test]
    fn assembler_rejects_stray_credits_and_queues_cancels() {
        let t = tag(5, 6, 1);
        let mut asm = StreamAssembler::new();
        asm.push_packet(encode_header(&GtmHeader {
            tag: t,
            mtu: 8,
            direct: false,
        }))
        .unwrap();
        // A credit must never reach an assembler, even for a live stream.
        assert!(asm.push_packet(encode_credit(&t, 2)).is_err());
        // A cancel ends the stream in-band, after already-buffered items.
        asm.push_packet(encode_cancel(&t, CancelReason::CreditTimeout))
            .unwrap();
        let k = asm.pop_ready().unwrap();
        assert_eq!(
            asm.next_item(k),
            Some(StreamItem::Cancelled(CancelReason::CreditTimeout))
        );
    }

    #[test]
    fn batch_round_trips() {
        let t = tag(1, 2, 3);
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"payload");
        let end = encode_end(&t);
        let credit = encode_credit(&t, 4);
        let frame = encode_batch(&[&frag, &end, &credit]);
        assert_eq!(decode_packet(&frame).unwrap().1, PacketBody::Batch);
        let subs: Vec<&[u8]> = batch_packets(&frame).unwrap().collect();
        assert_eq!(subs, vec![&frag[..], &end[..], &credit[..]]);
    }

    #[test]
    fn malformed_batches_rejected() {
        let t = tag(0, 1, 0);
        let end = encode_end(&t);
        // An empty batch is meaningless.
        assert!(decode_packet(&batch_prelude()).is_err());
        // Truncated train: length prefix promises more than is there.
        let mut frame = encode_batch(&[&end]);
        frame.truncate(frame.len() - 1);
        assert!(decode_packet(&frame).is_err());
        // Nested batches are forbidden.
        let inner = encode_batch(&[&end]);
        assert!(decode_packet(&encode_batch(&[&inner])).is_err());
        // batch_packets refuses non-batch input.
        assert!(batch_packets(&end).is_err());
    }

    #[test]
    fn assembler_splits_batch_frames() {
        let t = tag(8, 9, 2);
        let header = encode_header(&GtmHeader {
            tag: t,
            mtu: 4,
            direct: false,
        });
        let part = encode_part(
            &t,
            &GtmPartDesc {
                len: 3,
                send: SendMode::Later,
                recv: RecvMode::Cheaper,
            },
        );
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"xyz");
        let end = encode_end(&t);
        let frame = encode_batch(&[&header, &part, &frag, &end]);

        let pool = mad_util::pool::BufferPool::new();
        let mut asm = StreamAssembler::with_pool(pool);
        let opened = asm.push_packet(frame).unwrap();
        assert_eq!(opened, vec![t.key()], "batch split reports opened streams");
        let k = asm.pop_ready().unwrap();
        assert!(matches!(asm.next_item(k), Some(StreamItem::Part(d)) if d.len == 3));
        match asm.next_item(k) {
            Some(StreamItem::Frag(f)) => assert_eq!(frag_payload(&f), b"xyz"),
            other => panic!("expected fragment, got {other:?}"),
        }
        assert_eq!(asm.next_item(k), Some(StreamItem::End));
        asm.finish(k);
        assert!(asm.is_idle());
    }

    #[test]
    fn fragment_counts() {
        assert_eq!(fragment_count(0, 1024), 0);
        assert_eq!(fragment_count(1, 1024), 1);
        assert_eq!(fragment_count(1024, 1024), 1);
        assert_eq!(fragment_count(1025, 1024), 2);
        assert_eq!(fragment_count(10 * 1024, 1024), 10);
    }

    #[test]
    fn assembler_demultiplexes_interleaved_streams() {
        let (ta, tb) = (tag(0, 9, 0), tag(4, 9, 7));
        let mut frag_a = frag_prelude(&ta).to_vec();
        frag_a.extend_from_slice(b"aaaa");
        let mut frag_b = frag_prelude(&tb).to_vec();
        frag_b.extend_from_slice(b"bb");
        let part = |t: &StreamTag, len: u64| {
            encode_part(
                t,
                &GtmPartDesc {
                    len,
                    send: SendMode::Later,
                    recv: RecvMode::Cheaper,
                },
            )
        };

        let mut asm = StreamAssembler::new();
        // Interleave two streams packet by packet.
        asm.push_packet(encode_header(&GtmHeader {
            tag: ta,
            mtu: 4,
            direct: false,
        }))
        .unwrap();
        asm.push_packet(encode_header(&GtmHeader {
            tag: tb,
            mtu: 4,
            direct: true,
        }))
        .unwrap();
        asm.push_packet(part(&ta, 4)).unwrap();
        asm.push_packet(part(&tb, 2)).unwrap();
        asm.push_packet(frag_b.clone()).unwrap();
        asm.push_packet(frag_a.clone()).unwrap();
        asm.push_packet(encode_end(&tb)).unwrap();
        asm.push_packet(encode_end(&ta)).unwrap();

        // Ready order follows header arrival.
        let ka = asm.pop_ready().unwrap();
        let kb = asm.pop_ready().unwrap();
        assert_eq!(ka, ta.key());
        assert_eq!(kb, tb.key());
        assert!(!asm.header(ka).unwrap().direct);
        assert!(asm.header(kb).unwrap().direct);
        // Each stream drains in its own order, unpolluted by the other.
        assert!(matches!(asm.next_item(ka), Some(StreamItem::Part(d)) if d.len == 4));
        assert_eq!(asm.next_item(ka), Some(StreamItem::Frag(frag_a.into())));
        assert_eq!(asm.next_item(ka), Some(StreamItem::End));
        assert!(matches!(asm.next_item(kb), Some(StreamItem::Part(d)) if d.len == 2));
        assert_eq!(asm.next_item(kb), Some(StreamItem::Frag(frag_b.into())));
        assert_eq!(asm.next_item(kb), Some(StreamItem::End));
        asm.finish(ka);
        asm.finish(kb);
        assert!(asm.is_idle());
    }

    #[test]
    fn assembler_rejects_protocol_violations() {
        let t = tag(1, 2, 3);
        let mut asm = StreamAssembler::new();
        // Body packet for a stream whose header never arrived.
        assert!(asm.push_packet(encode_end(&t)).is_err());
        let h = GtmHeader {
            tag: t,
            mtu: 16,
            direct: false,
        };
        asm.push_packet(encode_header(&h)).unwrap();
        // Duplicate header for a live stream.
        assert!(asm.push_packet(encode_header(&h)).is_err());
    }
}
