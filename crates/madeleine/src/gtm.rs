//! The Generic Transmission Module (paper §2.2.1, §2.3).
//!
//! Every message that must travel through at least two different networks
//! is handled by this module on *both* endpoints, guaranteeing that buffers
//! are grouped identically on both sides regardless of which BMMs the
//! underlying networks prefer — the gateway never regroups anything.
//!
//! The GTM also makes messages **self-described**, which regular Madeleine
//! messages are not: a gateway knows nothing about the messages it relays,
//! so each forwarded message carries its destination, the route-wide MTU,
//! and per-block size/flag descriptors. The protocol (paper §2.3):
//!
//! 1. a *header* packet: source rank, destination rank, MTU;
//! 2. per packed block: a *descriptor* packet (length + emission/reception
//!    constraints) followed by the block itself, fragmented into packets of
//!    at most MTU bytes;
//! 3. a terminating *end* packet ("the description of an empty message").
//!
//! Control packets are tiny and framed; fragments are raw bytes (no
//! per-fragment header), so gateways and receivers can land them with zero
//! copies.

use crate::channel::Channel;
use crate::conduit::Conduit;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::runtime::RtLockGuard;
use crate::types::NodeId;

/// First byte of every GTM control packet.
pub const GTM_MAGIC: u8 = 0xAD;

const KIND_HEADER: u8 = 1;
const KIND_PART: u8 = 2;
const KIND_END: u8 = 3;

/// Message-level self-description carried by the header packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmHeader {
    /// Originating rank.
    pub src: NodeId,
    /// Final destination rank.
    pub dest: NodeId,
    /// Fragment size used for the whole route.
    pub mtu: u32,
}

/// Per-block self-description carried by a descriptor packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmPartDesc {
    /// Block length in bytes.
    pub len: u64,
    /// Emission constraint the sender packed with.
    pub send: SendMode,
    /// Reception constraint the receiver must unpack with.
    pub recv: RecvMode,
}

/// A decoded GTM control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Start of a forwarded message.
    Header(GtmHeader),
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// End of the message.
    End,
}

/// Encode a header packet.
pub fn encode_header(h: &GtmHeader) -> Vec<u8> {
    let mut v = Vec::with_capacity(14);
    v.push(GTM_MAGIC);
    v.push(KIND_HEADER);
    v.extend_from_slice(&h.src.0.to_le_bytes());
    v.extend_from_slice(&h.dest.0.to_le_bytes());
    v.extend_from_slice(&h.mtu.to_le_bytes());
    v
}

/// Encode a block-descriptor packet.
pub fn encode_part(d: &GtmPartDesc) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.push(GTM_MAGIC);
    v.push(KIND_PART);
    v.extend_from_slice(&d.len.to_le_bytes());
    v.push(d.send.to_wire());
    v.push(d.recv.to_wire());
    v
}

/// Encode the end-of-message packet.
pub fn encode_end() -> Vec<u8> {
    vec![GTM_MAGIC, KIND_END]
}

/// Decode a control packet. Fails on anything that is not well-formed GTM
/// control framing (fragments must never be fed here: callers track when a
/// fragment is expected from the preceding descriptor).
pub fn decode_control(packet: &[u8]) -> Result<Control> {
    let err = |msg: &str| MadError::Protocol(format!("GTM control: {msg}"));
    if packet.len() < 2 || packet[0] != GTM_MAGIC {
        return Err(err("bad magic"));
    }
    match packet[1] {
        KIND_HEADER => {
            if packet.len() != 14 {
                return Err(err("header length"));
            }
            let src = u32::from_le_bytes(packet[2..6].try_into().unwrap());
            let dest = u32::from_le_bytes(packet[6..10].try_into().unwrap());
            let mtu = u32::from_le_bytes(packet[10..14].try_into().unwrap());
            if mtu == 0 {
                return Err(err("zero MTU"));
            }
            Ok(Control::Header(GtmHeader {
                src: NodeId(src),
                dest: NodeId(dest),
                mtu,
            }))
        }
        KIND_PART => {
            if packet.len() != 12 {
                return Err(err("descriptor length"));
            }
            let len = u64::from_le_bytes(packet[2..10].try_into().unwrap());
            let send = SendMode::from_wire(packet[10]).ok_or_else(|| err("send mode"))?;
            let recv = RecvMode::from_wire(packet[11]).ok_or_else(|| err("recv mode"))?;
            Ok(Control::Part(GtmPartDesc { len, send, recv }))
        }
        KIND_END => {
            if packet.len() != 2 {
                return Err(err("end length"));
            }
            Ok(Control::End)
        }
        _ => Err(err("unknown kind")),
    }
}

/// Number of fragments a `len`-byte block occupies at a given MTU.
pub fn fragment_count(len: u64, mtu: u32) -> u64 {
    if len == 0 {
        0
    } else {
        len.div_ceil(mtu as u64)
    }
}

/// Sender side of the GTM: writes a self-described, MTU-fragmented message
/// toward the first hop (a gateway, over a *special* channel).
///
/// The GTM transmits eagerly — each block leaves at `pack` time — which is
/// what keeps the gateway pipeline fed. The first-hop conduit is held
/// exclusively from `begin` to `end_packing`: on gateway nodes the
/// forwarding engine relays other nodes' messages over the *same* special
/// conduits, and whole-message locking is what keeps the two streams from
/// interleaving.
pub struct GtmWriter<'c> {
    conduit: RtLockGuard<'c, Box<dyn Conduit>>,
    mtu: usize,
    finished: bool,
}

impl<'c> GtmWriter<'c> {
    /// Start a forwarded message: emits the header packet immediately.
    pub fn begin(
        channel: &'c Channel,
        first_hop: NodeId,
        src: NodeId,
        dest: NodeId,
        mtu: usize,
    ) -> Result<Self> {
        assert!(mtu > 0, "GTM MTU must be positive");
        assert!(
            mtu <= channel.caps().max_packet,
            "GTM MTU exceeds the first hop's max packet size"
        );
        let header = encode_header(&GtmHeader {
            src,
            dest,
            mtu: mtu as u32,
        });
        let mut conduit = channel.lock_conduit(first_hop)?;
        conduit.send(&[&header])?;
        Ok(GtmWriter {
            conduit,
            mtu,
            finished: false,
        })
    }

    /// Append a block: descriptor packet, then raw MTU-sized fragments.
    pub fn pack(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let desc = encode_part(&GtmPartDesc {
            len: data.len() as u64,
            send,
            recv,
        });
        self.conduit.send(&[&desc])?;
        for chunk in data.chunks(self.mtu) {
            self.conduit.send(&[chunk])?;
        }
        Ok(())
    }

    /// Finish the message with the end packet and release the conduit.
    pub fn end_packing(mut self) -> Result<()> {
        self.finished = true;
        self.conduit.send(&[&encode_end()])
    }
}

impl Drop for GtmWriter<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmWriter dropped without end_packing");
        }
    }
}

/// Receiver side of the GTM, used by the final destination after the
/// last-hop gateway announced a forwarded message on the regular channel.
pub struct GtmReader<'c> {
    channel: &'c Channel,
    /// The last-hop gateway we are physically receiving from.
    via: NodeId,
    header: GtmHeader,
    finished: bool,
}

impl<'c> GtmReader<'c> {
    /// Read the header packet from `via` and set up the reader.
    pub fn begin(channel: &'c Channel, via: NodeId) -> Result<Self> {
        let packet = channel.lock_conduit(via)?.recv_owned()?;
        match decode_control(&packet)? {
            Control::Header(header) => Ok(GtmReader {
                channel,
                via,
                header,
                finished: false,
            }),
            other => Err(MadError::Protocol(format!(
                "expected GTM header, got {other:?}"
            ))),
        }
    }

    /// The original sender of the forwarded message.
    pub fn source(&self) -> NodeId {
        self.header.src
    }

    /// The message header.
    pub fn header(&self) -> GtmHeader {
        self.header
    }

    /// Receive the next block into `dst`, validating the self-description
    /// against the caller's expectation. Data is valid on return (the GTM
    /// is eager, so express semantics hold for every block).
    pub fn unpack(&mut self, dst: &mut [u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let mut conduit = self.channel.lock_conduit(self.via)?;
        let packet = conduit.recv_owned()?;
        let desc = match decode_control(&packet)? {
            Control::Part(d) => d,
            other => {
                return Err(MadError::Protocol(format!(
                    "expected GTM part descriptor, got {other:?}"
                )))
            }
        };
        if desc.len != dst.len() as u64 {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block is {} bytes, unpack expected {}",
                desc.len,
                dst.len()
            )));
        }
        if desc.send != send || desc.recv != recv {
            return Err(MadError::SequenceMismatch(format!(
                "forwarded block flags ({:?},{:?}) != unpack flags ({:?},{:?})",
                desc.send, desc.recv, send, recv
            )));
        }
        let mut cursor = 0;
        while cursor < dst.len() {
            let n = conduit.recv_into(&mut dst[cursor..])?;
            cursor += n;
        }
        Ok(())
    }

    /// Consume the end packet and finish.
    pub fn end_unpacking(mut self) -> Result<()> {
        self.finished = true;
        let packet = self.channel.lock_conduit(self.via)?.recv_owned()?;
        match decode_control(&packet)? {
            Control::End => Ok(()),
            other => Err(MadError::Protocol(format!(
                "expected GTM end, got {other:?}"
            ))),
        }
    }
}

impl Drop for GtmReader<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmReader dropped without end_unpacking");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_round_trips() {
        let h = GtmHeader {
            src: NodeId(3),
            dest: NodeId(7),
            mtu: 16384,
        };
        assert_eq!(decode_control(&encode_header(&h)), Ok(Control::Header(h)));
        let d = GtmPartDesc {
            len: 123456789,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        assert_eq!(decode_control(&encode_part(&d)), Ok(Control::Part(d)));
        assert_eq!(decode_control(&encode_end()), Ok(Control::End));
    }

    #[test]
    fn malformed_controls_rejected() {
        assert!(decode_control(&[]).is_err());
        assert!(decode_control(&[0x00, KIND_END]).is_err());
        assert!(decode_control(&[GTM_MAGIC, 99]).is_err());
        assert!(decode_control(&[GTM_MAGIC, KIND_HEADER, 1, 2]).is_err());
        // Zero MTU header.
        let mut h = encode_header(&GtmHeader {
            src: NodeId(0),
            dest: NodeId(1),
            mtu: 1,
        });
        h[10..14].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_control(&h).is_err());
        // Bad flag bytes in a descriptor.
        let mut d = encode_part(&GtmPartDesc {
            len: 1,
            send: SendMode::Safer,
            recv: RecvMode::Express,
        });
        d[10] = 77;
        assert!(decode_control(&d).is_err());
    }

    #[test]
    fn fragment_counts() {
        assert_eq!(fragment_count(0, 1024), 0);
        assert_eq!(fragment_count(1, 1024), 1);
        assert_eq!(fragment_count(1024, 1024), 1);
        assert_eq!(fragment_count(1025, 1024), 2);
        assert_eq!(fragment_count(10 * 1024, 1024), 10);
    }
}
