//! The Generic Transmission Module (paper §2.2.1, §2.3).
//!
//! Every message that must travel through at least two different networks
//! is handled by this module on *both* endpoints, guaranteeing that buffers
//! are grouped identically on both sides regardless of which BMMs the
//! underlying networks prefer — the gateway never regroups anything.
//!
//! The GTM also makes messages **self-described**, which regular Madeleine
//! messages are not: a gateway knows nothing about the messages it relays,
//! so each forwarded message carries its destination, the route-wide MTU,
//! and per-block size/flag descriptors.
//!
//! ## Wire format (version 2)
//!
//! Version 2 extends the self-description from the *message* level down to
//! the *packet* level: every packet — control and fragment alike — opens
//! with a fixed 15-byte prelude identifying the stream it belongs to:
//!
//! ```text
//! offset 0   GTM_MAGIC (0xAD)
//! offset 1   GTM_VERSION (2)
//! offset 2   kind: 1 = header, 2 = part descriptor, 3 = end, 4 = fragment
//! offset 3   source rank       (u32 LE)
//! offset 7   destination rank  (u32 LE)
//! offset 11  message id        (u32 LE, per-source counter)
//! ```
//!
//! followed by a kind-specific body:
//!
//! * **header** — route-wide MTU (u32 LE) + a flags byte (bit 0: the
//!   message is a *direct* delivery from a gateway-resident sender and
//!   never crossed a gateway);
//! * **part** — block length (u64 LE) + emission/reception constraint
//!   bytes;
//! * **fragment** — raw block bytes (at most MTU of them) at offset 15;
//! * **end** — nothing ("the description of an empty message").
//!
//! Because each packet names its stream, packets from concurrent messages
//! may interleave freely on a shared conduit: gateways forward at fragment
//! granularity instead of draining one message at a time, and the receive
//! side demultiplexes with [`StreamAssembler`]. The §7b lesson-2 atomicity
//! invariant consequently shrinks from hold-the-conduit-per-message to
//! hold-per-packet — each packet is sent as a single gather operation
//! under a single conduit-lock hold.
//!
//! The stream tag rides *inside* the fragment packet (as a gather prelude)
//! rather than as a separate control packet: per-packet send overhead on
//! the modeled networks is 20–60 µs, so a tag packet per fragment would
//! nearly double forwarding cost, while 15 extra bytes in-packet are noise.
//! The tag is route-invariant, which lets gateways relay packets verbatim
//! — the zero-copy forwarding matrix of §2.3 is unchanged.

use std::collections::{BTreeMap, VecDeque};

use mad_trace::{trace_count, trace_span};

use crate::channel::Channel;
use crate::credit::WriterFlow;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::types::NodeId;

/// First byte of every GTM packet.
pub const GTM_MAGIC: u8 = 0xAD;
/// Wire-format version emitted and accepted by this module.
pub const GTM_VERSION: u8 = 2;
/// Length of the common packet prelude; also the fragment payload offset.
pub const PRELUDE_LEN: usize = 15;

pub(crate) const KIND_HEADER: u8 = 1;
pub(crate) const KIND_PART: u8 = 2;
pub(crate) const KIND_END: u8 = 3;
pub(crate) const KIND_FRAG: u8 = 4;
pub(crate) const KIND_CREDIT: u8 = 5;
pub(crate) const KIND_CANCEL: u8 = 6;

const HEADER_LEN: usize = PRELUDE_LEN + 5;
const PART_LEN: usize = PRELUDE_LEN + 10;
const CREDIT_LEN: usize = PRELUDE_LEN + 4;
const CANCEL_LEN: usize = PRELUDE_LEN + 1;

/// Flag bit: the stream is a direct (zero-gateway) delivery.
const FLAG_DIRECT: u8 = 1;

/// Identity of one in-flight message stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamTag {
    /// Originating rank.
    pub src: NodeId,
    /// Final destination rank.
    pub dest: NodeId,
    /// Per-source message counter, unique among the source's live streams.
    pub msg_id: u32,
}

/// Demultiplexing key: `(source rank, message id)`. The destination is not
/// part of the key — at any given hop all streams from one source share a
/// message-id space, and the final receiver only sees its own.
pub type StreamKey = (u32, u32);

impl StreamTag {
    /// The demultiplexing key for this stream.
    pub fn key(&self) -> StreamKey {
        (self.src.0, self.msg_id)
    }
}

/// Message-level self-description carried by the header packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmHeader {
    /// The stream this header opens.
    pub tag: StreamTag,
    /// Fragment size used for the whole route.
    pub mtu: u32,
    /// True for direct (zero-gateway) deliveries from gateway-resident
    /// senders; such streams never enter a forwarding engine.
    pub direct: bool,
}

/// Per-block self-description carried by a descriptor packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmPartDesc {
    /// Block length in bytes.
    pub len: u64,
    /// Emission constraint the sender packed with.
    pub send: SendMode,
    /// Reception constraint the receiver must unpack with.
    pub recv: RecvMode,
}

/// Why a stream was cancelled mid-flight, carried by the cancel packet so
/// every party drops the stream with the same typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// A hop toward the destination stopped responding (send failure).
    PeerUnreachable,
    /// A credit wait exceeded its deadline (downstream stalled).
    CreditTimeout,
}

impl CancelReason {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            CancelReason::PeerUnreachable => 1,
            CancelReason::CreditTimeout => 2,
        }
    }

    pub(crate) fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(CancelReason::PeerUnreachable),
            2 => Some(CancelReason::CreditTimeout),
            _ => None,
        }
    }
}

/// The kind-specific body of a decoded packet. Fragment payload bytes stay
/// in the packet buffer (from offset [`PRELUDE_LEN`]); use
/// [`frag_payload`] to borrow them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBody {
    /// Start of a stream.
    Header(GtmHeader),
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// One MTU-bounded slice of block data.
    Frag,
    /// End of the stream.
    End,
    /// Flow control: the downstream end of a conduit has retransmitted this
    /// many of the stream's fragments and grants the sender the right to
    /// emit as many more. Flows *against* the stream direction.
    Credit(u32),
    /// The stream is dead and will never deliver its end packet; every
    /// holder of its state must drop it and surface the typed reason.
    Cancel(CancelReason),
}

fn prelude_into(v: &mut Vec<u8>, kind: u8, tag: &StreamTag) {
    v.push(GTM_MAGIC);
    v.push(GTM_VERSION);
    v.push(kind);
    v.extend_from_slice(&tag.src.0.to_le_bytes());
    v.extend_from_slice(&tag.dest.0.to_le_bytes());
    v.extend_from_slice(&tag.msg_id.to_le_bytes());
}

/// Encode a header packet.
pub fn encode_header(h: &GtmHeader) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN);
    prelude_into(&mut v, KIND_HEADER, &h.tag);
    v.extend_from_slice(&h.mtu.to_le_bytes());
    v.push(if h.direct { FLAG_DIRECT } else { 0 });
    v
}

/// Encode a block-descriptor packet.
pub fn encode_part(tag: &StreamTag, d: &GtmPartDesc) -> Vec<u8> {
    let mut v = Vec::with_capacity(PART_LEN);
    prelude_into(&mut v, KIND_PART, tag);
    v.extend_from_slice(&d.len.to_le_bytes());
    v.push(d.send.to_wire());
    v.push(d.recv.to_wire());
    v
}

/// Encode the end-of-stream packet.
pub fn encode_end(tag: &StreamTag) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(&mut v, KIND_END, tag);
    v
}

/// Encode a credit grant of `count` fragments for a stream. Credits travel
/// hop-by-hop on the same (bidirectional) conduit as the stream, in the
/// opposite direction.
pub fn encode_credit(tag: &StreamTag, count: u32) -> Vec<u8> {
    assert!(count > 0, "a credit grant must carry at least one credit");
    let mut v = Vec::with_capacity(CREDIT_LEN);
    prelude_into(&mut v, KIND_CREDIT, tag);
    v.extend_from_slice(&count.to_le_bytes());
    v
}

/// Encode a stream-cancel packet.
pub fn encode_cancel(tag: &StreamTag, reason: CancelReason) -> Vec<u8> {
    let mut v = Vec::with_capacity(CANCEL_LEN);
    prelude_into(&mut v, KIND_CANCEL, tag);
    v.push(reason.to_wire());
    v
}

/// The constant fragment prelude for a stream. Senders emit each fragment
/// as one gather send `[prelude, chunk]`, so the tag costs no extra packet.
pub fn frag_prelude(tag: &StreamTag) -> [u8; PRELUDE_LEN] {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(&mut v, KIND_FRAG, tag);
    v.try_into().expect("prelude length")
}

/// Borrow the payload bytes of a fragment packet.
pub fn frag_payload(packet: &[u8]) -> &[u8] {
    &packet[PRELUDE_LEN..]
}

/// Decode any GTM packet into its stream tag and body. Fails on anything
/// that is not well-formed version-2 framing.
pub fn decode_packet(packet: &[u8]) -> Result<(StreamTag, PacketBody)> {
    let err = |msg: &str| MadError::Protocol(format!("GTM packet: {msg}"));
    if packet.len() < PRELUDE_LEN || packet[0] != GTM_MAGIC {
        return Err(err("bad magic"));
    }
    if packet[1] != GTM_VERSION {
        return Err(err("unsupported version"));
    }
    let tag = StreamTag {
        src: NodeId(u32::from_le_bytes(packet[3..7].try_into().unwrap())),
        dest: NodeId(u32::from_le_bytes(packet[7..11].try_into().unwrap())),
        msg_id: u32::from_le_bytes(packet[11..15].try_into().unwrap()),
    };
    let body = match packet[2] {
        KIND_HEADER => {
            if packet.len() != HEADER_LEN {
                return Err(err("header length"));
            }
            let mtu = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if mtu == 0 {
                return Err(err("zero MTU"));
            }
            let flags = packet[19];
            if flags & !FLAG_DIRECT != 0 {
                return Err(err("unknown header flags"));
            }
            PacketBody::Header(GtmHeader {
                tag,
                mtu,
                direct: flags & FLAG_DIRECT != 0,
            })
        }
        KIND_PART => {
            if packet.len() != PART_LEN {
                return Err(err("descriptor length"));
            }
            let len = u64::from_le_bytes(packet[15..23].try_into().unwrap());
            let send = SendMode::from_wire(packet[23]).ok_or_else(|| err("send mode"))?;
            let recv = RecvMode::from_wire(packet[24]).ok_or_else(|| err("recv mode"))?;
            PacketBody::Part(GtmPartDesc { len, send, recv })
        }
        KIND_END => {
            if packet.len() != PRELUDE_LEN {
                return Err(err("end length"));
            }
            PacketBody::End
        }
        KIND_FRAG => {
            if packet.len() == PRELUDE_LEN {
                return Err(err("empty fragment"));
            }
            PacketBody::Frag
        }
        KIND_CREDIT => {
            if packet.len() != CREDIT_LEN {
                return Err(err("credit length"));
            }
            let count = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if count == 0 {
                return Err(err("zero credit grant"));
            }
            PacketBody::Credit(count)
        }
        KIND_CANCEL => {
            if packet.len() != CANCEL_LEN {
                return Err(err("cancel length"));
            }
            let reason = CancelReason::from_wire(packet[15]).ok_or_else(|| err("cancel reason"))?;
            PacketBody::Cancel(reason)
        }
        _ => Err(err("unknown kind"))?,
    };
    Ok((tag, body))
}

/// Number of fragments a `len`-byte block occupies at a given MTU.
pub fn fragment_count(len: u64, mtu: u32) -> u64 {
    if len == 0 {
        0
    } else {
        len.div_ceil(mtu as u64)
    }
}

/// Sender side of the GTM: writes a self-described, MTU-fragmented stream
/// toward the first hop (a gateway over a *special* channel, or — for
/// direct streams from gateway-resident senders — the destination itself
/// over the *regular* channel).
///
/// The GTM transmits eagerly — each block leaves at `pack` time — which is
/// what keeps the gateway pipeline fed. Unlike version 1, the conduit is
/// *not* held across the message: every packet is self-described, so each
/// is sent under its own lock hold and packets of concurrent streams
/// interleave freely on shared conduits.
pub struct GtmWriter<'c> {
    channel: &'c Channel,
    first_hop: NodeId,
    tag: StreamTag,
    frag_prelude: [u8; PRELUDE_LEN],
    mtu: usize,
    finished: bool,
    flow: Option<WriterFlow>,
}

impl<'c> GtmWriter<'c> {
    /// Start a stream: emits the header packet immediately. When `flow` is
    /// given the stream is credit-controlled: each fragment consumes one
    /// credit from the stream's window before it may leave, and the wait is
    /// deadline-bounded (see [`crate::credit`]).
    pub fn begin(
        channel: &'c Channel,
        first_hop: NodeId,
        tag: StreamTag,
        mtu: usize,
        direct: bool,
        flow: Option<WriterFlow>,
    ) -> Result<Self> {
        assert!(mtu > 0, "GTM MTU must be positive");
        assert!(
            mtu.saturating_add(PRELUDE_LEN) <= channel.caps().max_packet,
            "GTM MTU plus fragment prelude exceeds the first hop's max packet size"
        );
        let header = encode_header(&GtmHeader {
            tag,
            mtu: mtu as u32,
            direct,
        });
        if let Some(flow) = &flow {
            flow.open(tag.key());
        }
        if let Err(e) = channel.send_packet(first_hop, &[&header]) {
            if let Some(flow) = &flow {
                flow.close(tag.key());
            }
            return Err(e);
        }
        trace_count!(channel.tracer(), "gtm", "encode", 1);
        Ok(GtmWriter {
            channel,
            first_hop,
            tag,
            frag_prelude: frag_prelude(&tag),
            mtu,
            finished: false,
            flow,
        })
    }

    /// Append a block: descriptor packet, then tagged MTU-sized fragments.
    ///
    /// On error the stream is dead: the writer seals itself (no further
    /// packets, dropping it is fine), the stream's credit account is
    /// released, and — if the stream was cancelled (credit timeout or
    /// unreachable peer) — a best-effort cancel packet chases the stream so
    /// downstream hops can release its state instead of waiting for an end
    /// that will never come.
    pub fn pack(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self.pack_inner(data, send, recv) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.abort(&e);
                Err(e)
            }
        }
    }

    fn pack_inner(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let _pack = trace_span!(
            self.channel.tracer(),
            "gtm",
            "pack",
            "dest" = self.tag.dest.0 as u64,
            "bytes" = data.len() as u64,
        );
        let desc = encode_part(
            &self.tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send,
                recv,
            },
        );
        self.channel.send_packet(self.first_hop, &[&desc])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        for chunk in data.chunks(self.mtu) {
            if let Some(flow) = &self.flow {
                flow.take(self.channel, self.first_hop, &self.tag)?;
            }
            self.channel
                .send_packet(self.first_hop, &[&self.frag_prelude, chunk])?;
            trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        }
        Ok(())
    }

    /// Seal a failed stream: release its credit account and, when the local
    /// credit wait is what gave up, tell downstream hops to drop it.
    fn abort(&mut self, cause: &MadError) {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        let reason = match cause {
            MadError::CreditTimeout { .. } => Some(CancelReason::CreditTimeout),
            MadError::PeerUnreachable(_) => Some(CancelReason::PeerUnreachable),
            _ => None,
        };
        if let Some(reason) = reason {
            // Best effort — the first hop may itself be unreachable.
            let _ = self
                .channel
                .send_packet(self.first_hop, &[&encode_cancel(&self.tag, reason)]);
        }
    }

    /// Finish the stream with the end packet.
    pub fn end_packing(mut self) -> Result<()> {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        self.channel
            .send_packet(self.first_hop, &[&encode_end(&self.tag)])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        Ok(())
    }
}

impl Drop for GtmWriter<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmWriter dropped without end_packing");
        }
    }
}

/// One buffered item of a partially received stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// A fragment packet, stored verbatim (payload at [`PRELUDE_LEN`]).
    Frag(Vec<u8>),
    /// End of the stream.
    End,
    /// The stream was cancelled upstream and will never end normally.
    Cancelled(CancelReason),
}

struct PendingStream {
    header: GtmHeader,
    items: VecDeque<StreamItem>,
}

/// Receive-side demultiplexer: turns an interleaved sequence of version-2
/// packets (from any number of conduits) back into per-stream item queues.
///
/// Purely computational — no I/O, no locking — so the interleave/reassemble
/// logic is testable in isolation. Streams become *ready* in header-arrival
/// order; [`StreamAssembler::pop_ready`] hands them out FIFO, which is what
/// preserves per-sender delivery order end to end.
#[derive(Default)]
pub struct StreamAssembler {
    streams: BTreeMap<StreamKey, PendingStream>,
    ready: VecDeque<StreamKey>,
}

impl StreamAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one received packet. Returns the stream key when the packet
    /// opened a new stream (its header just arrived).
    pub fn push_packet(&mut self, packet: Vec<u8>) -> Result<Option<StreamKey>> {
        let (tag, body) = decode_packet(&packet)?;
        let key = tag.key();
        match body {
            PacketBody::Credit(_) => {
                // Credits are hop-by-hop flow control consumed by writers
                // and gateway engines; one surviving to an assembler means
                // a routing layer leaked it.
                Err(MadError::Protocol(format!(
                    "credit packet for stream {key:?} reached a stream assembler"
                )))
            }
            PacketBody::Header(header) => {
                if self.streams.contains_key(&key) {
                    return Err(MadError::Protocol(format!(
                        "duplicate GTM header for stream {key:?}"
                    )));
                }
                self.streams.insert(
                    key,
                    PendingStream {
                        header,
                        items: VecDeque::new(),
                    },
                );
                self.ready.push_back(key);
                Ok(Some(key))
            }
            body => {
                let stream = self.streams.get_mut(&key).ok_or_else(|| {
                    MadError::Protocol(format!("GTM packet for unknown stream {key:?}"))
                })?;
                stream.items.push_back(match body {
                    PacketBody::Part(d) => StreamItem::Part(d),
                    PacketBody::Frag => StreamItem::Frag(packet),
                    PacketBody::End => StreamItem::End,
                    PacketBody::Cancel(reason) => StreamItem::Cancelled(reason),
                    PacketBody::Header(_) | PacketBody::Credit(_) => unreachable!(),
                });
                Ok(None)
            }
        }
    }

    /// Next unclaimed stream, in header-arrival order.
    pub fn pop_ready(&mut self) -> Option<StreamKey> {
        self.ready.pop_front()
    }

    /// The header of a known stream.
    pub fn header(&self, key: StreamKey) -> Option<GtmHeader> {
        self.streams.get(&key).map(|s| s.header)
    }

    /// Pop the next buffered item of a stream, if any.
    pub fn next_item(&mut self, key: StreamKey) -> Option<StreamItem> {
        self.streams.get_mut(&key)?.items.pop_front()
    }

    /// Drop a fully consumed stream.
    pub fn finish(&mut self, key: StreamKey) {
        self.streams.remove(&key);
    }

    /// True when no stream state is held at all.
    pub fn is_idle(&self) -> bool {
        self.streams.is_empty() && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(src: u32, dest: u32, msg_id: u32) -> StreamTag {
        StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        }
    }

    #[test]
    fn control_round_trips() {
        let h = GtmHeader {
            tag: tag(3, 7, 41),
            mtu: 16384,
            direct: false,
        };
        assert_eq!(
            decode_packet(&encode_header(&h)),
            Ok((h.tag, PacketBody::Header(h)))
        );
        let hd = GtmHeader {
            tag: tag(2, 5, 0),
            mtu: 1,
            direct: true,
        };
        assert_eq!(
            decode_packet(&encode_header(&hd)),
            Ok((hd.tag, PacketBody::Header(hd)))
        );
        let d = GtmPartDesc {
            len: 123456789,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        let t = tag(1, 2, 3);
        assert_eq!(
            decode_packet(&encode_part(&t, &d)),
            Ok((t, PacketBody::Part(d)))
        );
        assert_eq!(decode_packet(&encode_end(&t)), Ok((t, PacketBody::End)));
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"abc");
        assert_eq!(decode_packet(&frag), Ok((t, PacketBody::Frag)));
        assert_eq!(frag_payload(&frag), b"abc");
        assert_eq!(
            decode_packet(&encode_credit(&t, 1)),
            Ok((t, PacketBody::Credit(1)))
        );
        assert_eq!(
            decode_packet(&encode_credit(&t, u32::MAX)),
            Ok((t, PacketBody::Credit(u32::MAX)))
        );
        for reason in [CancelReason::PeerUnreachable, CancelReason::CreditTimeout] {
            assert_eq!(
                decode_packet(&encode_cancel(&t, reason)),
                Ok((t, PacketBody::Cancel(reason)))
            );
        }
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(decode_packet(&[]).is_err());
        assert!(decode_packet(&[0x00; PRELUDE_LEN]).is_err());
        // Version 1 framing must be rejected, not misparsed.
        let mut v1ish = encode_end(&tag(0, 1, 0));
        v1ish[1] = 1;
        assert!(decode_packet(&v1ish).is_err());
        // Unknown kind.
        let mut bad = encode_end(&tag(0, 1, 0));
        bad[2] = 99;
        assert!(decode_packet(&bad).is_err());
        // Truncated header.
        let h = encode_header(&GtmHeader {
            tag: tag(0, 1, 0),
            mtu: 64,
            direct: false,
        });
        assert!(decode_packet(&h[..h.len() - 1]).is_err());
        // Zero MTU.
        let mut z = h.clone();
        z[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&z).is_err());
        // Unknown flag bits.
        let mut f = h.clone();
        f[19] = 0xF0;
        assert!(decode_packet(&f).is_err());
        // Bad flag bytes in a descriptor.
        let mut d = encode_part(
            &tag(0, 1, 0),
            &GtmPartDesc {
                len: 1,
                send: SendMode::Safer,
                recv: RecvMode::Express,
            },
        );
        d[23] = 77;
        assert!(decode_packet(&d).is_err());
        // A fragment must carry at least one payload byte.
        assert!(decode_packet(&frag_prelude(&tag(0, 1, 0))).is_err());
        // A zero-count credit grant is meaningless and must be rejected.
        let mut c = encode_credit(&tag(0, 1, 0), 1);
        c[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&c).is_err());
        // Truncated credit.
        let c2 = encode_credit(&tag(0, 1, 0), 3);
        assert!(decode_packet(&c2[..c2.len() - 1]).is_err());
        // Unknown cancel reason byte.
        let mut k = encode_cancel(&tag(0, 1, 0), CancelReason::PeerUnreachable);
        k[15] = 0;
        assert!(decode_packet(&k).is_err());
    }

    #[test]
    fn assembler_rejects_stray_credits_and_queues_cancels() {
        let t = tag(5, 6, 1);
        let mut asm = StreamAssembler::new();
        asm.push_packet(encode_header(&GtmHeader {
            tag: t,
            mtu: 8,
            direct: false,
        }))
        .unwrap();
        // A credit must never reach an assembler, even for a live stream.
        assert!(asm.push_packet(encode_credit(&t, 2)).is_err());
        // A cancel ends the stream in-band, after already-buffered items.
        asm.push_packet(encode_cancel(&t, CancelReason::CreditTimeout))
            .unwrap();
        let k = asm.pop_ready().unwrap();
        assert_eq!(
            asm.next_item(k),
            Some(StreamItem::Cancelled(CancelReason::CreditTimeout))
        );
    }

    #[test]
    fn fragment_counts() {
        assert_eq!(fragment_count(0, 1024), 0);
        assert_eq!(fragment_count(1, 1024), 1);
        assert_eq!(fragment_count(1024, 1024), 1);
        assert_eq!(fragment_count(1025, 1024), 2);
        assert_eq!(fragment_count(10 * 1024, 1024), 10);
    }

    #[test]
    fn assembler_demultiplexes_interleaved_streams() {
        let (ta, tb) = (tag(0, 9, 0), tag(4, 9, 7));
        let mut frag_a = frag_prelude(&ta).to_vec();
        frag_a.extend_from_slice(b"aaaa");
        let mut frag_b = frag_prelude(&tb).to_vec();
        frag_b.extend_from_slice(b"bb");
        let part = |t: &StreamTag, len: u64| {
            encode_part(
                t,
                &GtmPartDesc {
                    len,
                    send: SendMode::Later,
                    recv: RecvMode::Cheaper,
                },
            )
        };

        let mut asm = StreamAssembler::new();
        // Interleave two streams packet by packet.
        asm.push_packet(encode_header(&GtmHeader {
            tag: ta,
            mtu: 4,
            direct: false,
        }))
        .unwrap();
        asm.push_packet(encode_header(&GtmHeader {
            tag: tb,
            mtu: 4,
            direct: true,
        }))
        .unwrap();
        asm.push_packet(part(&ta, 4)).unwrap();
        asm.push_packet(part(&tb, 2)).unwrap();
        asm.push_packet(frag_b.clone()).unwrap();
        asm.push_packet(frag_a.clone()).unwrap();
        asm.push_packet(encode_end(&tb)).unwrap();
        asm.push_packet(encode_end(&ta)).unwrap();

        // Ready order follows header arrival.
        let ka = asm.pop_ready().unwrap();
        let kb = asm.pop_ready().unwrap();
        assert_eq!(ka, ta.key());
        assert_eq!(kb, tb.key());
        assert!(!asm.header(ka).unwrap().direct);
        assert!(asm.header(kb).unwrap().direct);
        // Each stream drains in its own order, unpolluted by the other.
        assert!(matches!(asm.next_item(ka), Some(StreamItem::Part(d)) if d.len == 4));
        assert_eq!(asm.next_item(ka), Some(StreamItem::Frag(frag_a)));
        assert_eq!(asm.next_item(ka), Some(StreamItem::End));
        assert!(matches!(asm.next_item(kb), Some(StreamItem::Part(d)) if d.len == 2));
        assert_eq!(asm.next_item(kb), Some(StreamItem::Frag(frag_b)));
        assert_eq!(asm.next_item(kb), Some(StreamItem::End));
        asm.finish(ka);
        asm.finish(kb);
        assert!(asm.is_idle());
    }

    #[test]
    fn assembler_rejects_protocol_violations() {
        let t = tag(1, 2, 3);
        let mut asm = StreamAssembler::new();
        // Body packet for a stream whose header never arrived.
        assert!(asm.push_packet(encode_end(&t)).is_err());
        let h = GtmHeader {
            tag: t,
            mtu: 16,
            direct: false,
        };
        asm.push_packet(encode_header(&h)).unwrap();
        // Duplicate header for a live stream.
        assert!(asm.push_packet(encode_header(&h)).is_err());
    }
}
