//! The Generic Transmission Module (paper §2.2.1, §2.3).
//!
//! Every message that must travel through at least two different networks
//! is handled by this module on *both* endpoints, guaranteeing that buffers
//! are grouped identically on both sides regardless of which BMMs the
//! underlying networks prefer — the gateway never regroups anything.
//!
//! The GTM also makes messages **self-described**, which regular Madeleine
//! messages are not: a gateway knows nothing about the messages it relays,
//! so each forwarded message carries its destination, the route-wide MTU,
//! and per-block size/flag descriptors.
//!
//! ## Wire format (version 2)
//!
//! Version 2 extends the self-description from the *message* level down to
//! the *packet* level: every packet — control and fragment alike — opens
//! with a fixed 15-byte prelude identifying the stream it belongs to:
//!
//! ```text
//! offset 0   GTM_MAGIC (0xAD)
//! offset 1   GTM_VERSION (2)
//! offset 2   kind: 1 = header, 2 = part descriptor, 3 = end, 4 = fragment,
//!            5 = credit, 6 = cancel, 7 = batch, 8 = stripe envelope,
//!            9 = handoff ack
//! offset 3   source rank       (u32 LE)
//! offset 7   destination rank  (u32 LE)
//! offset 11  message id        (u32 LE, per-source counter)
//! ```
//!
//! followed by a kind-specific body:
//!
//! * **header** — route-wide MTU (u32 LE) + a flags byte (bit 0: the
//!   message is a *direct* delivery from a gateway-resident sender and
//!   never crossed a gateway; bit 1: *retry*, the stream re-issues an
//!   earlier failed attempt with the same tag and replaces its partial
//!   state; bit 2: *striped*, the stream's packets arrive over several
//!   parallel paths inside sequence-numbered stripe envelopes — a striped
//!   header carries one extra byte, the path count);
//! * **part** — block length (u64 LE) + emission/reception constraint
//!   bytes;
//! * **fragment** — raw block bytes (at most MTU of them) at offset 15;
//! * **end** — nothing ("the description of an empty message");
//! * **stripe envelope** — a u32 LE global sequence number followed by one
//!   complete part/fragment/end packet of the same stream. Multi-path
//!   (striped) senders round-robin envelopes over parallel gateway routes;
//!   each route preserves order, and the receive side replays envelopes in
//!   sequence order, so reassembly is byte-identical to the single-path
//!   stream no matter how the paths interleave. On each path a plain
//!   (unenveloped) end packet additionally trails the stream so every
//!   relay on that path can close its per-stream state.
//!
//! Because each packet names its stream, packets from concurrent messages
//! may interleave freely on a shared conduit: gateways forward at fragment
//! granularity instead of draining one message at a time, and the receive
//! side demultiplexes with [`StreamAssembler`]. The §7b lesson-2 atomicity
//! invariant consequently shrinks from hold-the-conduit-per-message to
//! hold-per-packet — each packet is sent as a single gather operation
//! under a single conduit-lock hold.
//!
//! The stream tag rides *inside* the fragment packet (as a gather prelude)
//! rather than as a separate control packet: per-packet send overhead on
//! the modeled networks is 20–60 µs, so a tag packet per fragment would
//! nearly double forwarding cost, while 15 extra bytes in-packet are noise.
//! The tag is route-invariant, which lets gateways relay packets verbatim
//! — the zero-copy forwarding matrix of §2.3 is unchanged.
//!
//! ## Batch frames
//!
//! A **batch** packet (kind 7, zero stream tag) carries a train of complete
//! GTM packets, each prefixed by its u32 LE length:
//!
//! ```text
//! offset 0   common prelude, kind = 7, src = dest = msg_id = 0
//! offset 15  len₀ (u32 LE) ‖ packet₀ ‖ len₁ (u32 LE) ‖ packet₁ ‖ …
//! ```
//!
//! Gateways use it to amortize the per-send buffer-switch overhead: several
//! queued packets bound for the same next hop leave as one conduit send and
//! are split back into individual packets by the receiving relay or
//! [`StreamAssembler`]. Batches never nest, and they are a transport-hop
//! artifact — a relay always re-batches (or not) according to its own queue
//! state rather than forwarding a batch frame verbatim.

#![deny(clippy::redundant_clone, clippy::large_types_passed_by_value)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mad_trace::{trace_count, trace_span};
use mad_util::pool::PooledBuf;

use crate::channel::Channel;
use crate::credit::WriterFlow;
use crate::error::{MadError, Result};
use crate::flags::{RecvMode, SendMode};
use crate::types::NodeId;

/// First byte of every GTM packet.
pub const GTM_MAGIC: u8 = 0xAD;
/// Wire-format version emitted and accepted by this module.
pub const GTM_VERSION: u8 = 2;
/// Length of the common packet prelude; also the fragment payload offset.
pub const PRELUDE_LEN: usize = 15;

pub(crate) const KIND_HEADER: u8 = 1;
pub(crate) const KIND_PART: u8 = 2;
pub(crate) const KIND_END: u8 = 3;
pub(crate) const KIND_FRAG: u8 = 4;
pub(crate) const KIND_CREDIT: u8 = 5;
pub(crate) const KIND_CANCEL: u8 = 6;
pub(crate) const KIND_BATCH: u8 = 7;
pub(crate) const KIND_STRIPE: u8 = 8;
pub(crate) const KIND_ACK: u8 = 9;
pub(crate) const KIND_METRICS: u8 = 10;
pub(crate) const KIND_MEMBER: u8 = 11;
pub(crate) const KIND_RENDEZVOUS: u8 = 12;

/// Direction byte of a kind-10 metrics packet: a snapshot request.
const METRICS_REQUEST: u8 = 1;
/// Direction byte of a kind-10 metrics packet: a snapshot reply.
const METRICS_REPLY: u8 = 2;

/// Direction byte of a kind-12 rendezvous packet: request-to-send. Flows
/// *with* the stream, hop by hop, ahead of the block it announces.
const RENDEZVOUS_RTS: u8 = 1;
/// Direction byte of a kind-12 rendezvous packet: clear-to-send. Flows
/// *against* the stream, carrying the whole-window credit grant.
const RENDEZVOUS_CTS: u8 = 2;

/// Full length of a kind-11 membership packet: prelude, event byte,
/// subject node (u32 LE), membership epoch (u64 LE).
pub const MEMBER_PACKET_LEN: usize = PRELUDE_LEN + 1 + 4 + 8;

/// Full length of a kind-12 rendezvous packet: prelude, direction byte,
/// block length (u64 LE), fragment MTU (u32 LE), window (u32 LE,
/// requested fragments in an RTS, granted fragments in a CTS).
pub const RENDEZVOUS_PACKET_LEN: usize = PRELUDE_LEN + 1 + 8 + 4 + 4;

/// Byte budget for the encoded snapshot a metrics reply carries. Bounded
/// so one reply always fits a single packet on every driver (the gateway
/// landing buffer is sized to accept [`METRICS_PACKET_MAX`]); the
/// snapshot encoder truncates to fit and flags it in-band.
pub const METRICS_MAX: usize = 2048;

/// Largest kind-10 packet: prelude, direction byte, full reply payload.
pub const METRICS_PACKET_MAX: usize = PRELUDE_LEN + 1 + METRICS_MAX;

/// Per-sub-packet framing overhead inside a batch frame (the u32 length
/// prefix). `PRELUDE_LEN + Σ (BATCH_ENTRY_OVERHEAD + lenᵢ)` is the full
/// frame size — senders use this to respect the conduit's packet limit.
pub const BATCH_ENTRY_OVERHEAD: usize = 4;

const HEADER_LEN: usize = PRELUDE_LEN + 5;
const PART_LEN: usize = PRELUDE_LEN + 10;
const CREDIT_LEN: usize = PRELUDE_LEN + 4;
const CANCEL_LEN: usize = PRELUDE_LEN + 1;

/// Bytes a stripe envelope adds in front of its inner packet (the common
/// prelude plus the u32 LE sequence number). Striped senders budget
/// `mtu + PRELUDE_LEN + STRIPE_OVERHEAD` against the conduit packet limit.
pub const STRIPE_OVERHEAD: usize = PRELUDE_LEN + 4;

/// Flag bit: the stream is a direct (zero-gateway) delivery.
const FLAG_DIRECT: u8 = 1;
/// Flag bit: the stream re-issues a failed earlier attempt (same tag).
const FLAG_RETRY: u8 = 2;
/// Flag bit: the stream is striped over parallel paths; the header carries
/// an extra path-count byte and body packets travel in stripe envelopes.
const FLAG_STRIPED: u8 = 4;
/// Flag bit: the origin wants a handoff acknowledgment — the first-hop
/// gateway sends an ack packet back upstream once it has retransmitted the
/// stream's end packet. Multi-path senders set this to close the silent
/// loss window of a gateway that dies *after* accepting a whole stream but
/// *before* relaying its tail; an ack that never comes is what triggers
/// failover for a fully-handed-off stream.
const FLAG_ACKED: u8 = 8;

/// Identity of one in-flight message stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamTag {
    /// Originating rank.
    pub src: NodeId,
    /// Final destination rank.
    pub dest: NodeId,
    /// Per-source message counter, unique among the source's live streams.
    pub msg_id: u32,
}

/// Demultiplexing key: `(source rank, message id)`. The destination is not
/// part of the key — at any given hop all streams from one source share a
/// message-id space, and the final receiver only sees its own.
pub type StreamKey = (u32, u32);

impl StreamTag {
    /// The demultiplexing key for this stream.
    pub fn key(&self) -> StreamKey {
        (self.src.0, self.msg_id)
    }
}

/// Message-level self-description carried by the header packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmHeader {
    /// The stream this header opens.
    pub tag: StreamTag,
    /// Fragment size used for the whole route.
    pub mtu: u32,
    /// True for direct (zero-gateway) deliveries from gateway-resident
    /// senders; such streams never enter a forwarding engine.
    pub direct: bool,
    /// True when the stream re-issues a failed earlier attempt under the
    /// same tag: the receiver discards the partial first attempt and
    /// restarts the stream from scratch (multi-path failover).
    pub retry: bool,
    /// Number of parallel paths the stream is striped over (0 = not
    /// striped; striped streams use ≥ 2). Each path carries a copy of
    /// the header, sequence-numbered stripe envelopes, and a trailing
    /// plain end packet.
    pub stripes: u8,
    /// True when the origin wants a handoff acknowledgment from the
    /// first-hop gateway after the end packet is relayed (multi-path
    /// failover; see [`FLAG_ACKED`]).
    pub acked: bool,
}

impl GtmHeader {
    /// A plain single-path header (no retry, no striping, no ack).
    pub fn new(tag: StreamTag, mtu: u32, direct: bool) -> GtmHeader {
        GtmHeader {
            tag,
            mtu,
            direct,
            retry: false,
            stripes: 0,
            acked: false,
        }
    }
}

/// Per-block self-description carried by a descriptor packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtmPartDesc {
    /// Block length in bytes.
    pub len: u64,
    /// Emission constraint the sender packed with.
    pub send: SendMode,
    /// Reception constraint the receiver must unpack with.
    pub recv: RecvMode,
}

/// Why a stream was cancelled mid-flight, carried by the cancel packet so
/// every party drops the stream with the same typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// A hop toward the destination stopped responding (send failure).
    PeerUnreachable,
    /// A credit wait exceeded its deadline (downstream stalled).
    CreditTimeout,
}

impl CancelReason {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            CancelReason::PeerUnreachable => 1,
            CancelReason::CreditTimeout => 2,
        }
    }

    pub(crate) fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(CancelReason::PeerUnreachable),
            2 => Some(CancelReason::CreditTimeout),
            _ => None,
        }
    }
}

/// The kind-specific body of a decoded packet. Fragment payload bytes stay
/// in the packet buffer (from offset [`PRELUDE_LEN`]); use
/// [`frag_payload`] to borrow them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketBody {
    /// Start of a stream.
    Header(GtmHeader),
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// One MTU-bounded slice of block data.
    Frag,
    /// End of the stream.
    End,
    /// Flow control: the downstream end of a conduit has retransmitted this
    /// many of the stream's fragments and grants the sender the right to
    /// emit as many more. Flows *against* the stream direction.
    Credit(u32),
    /// The stream is dead and will never deliver its end packet; every
    /// holder of its state must drop it and surface the typed reason.
    Cancel(CancelReason),
    /// A length-prefixed train of complete packets sent as one conduit
    /// operation; split with [`batch_packets`]. Carries no stream tag of
    /// its own.
    Batch,
    /// A sequence-numbered envelope around one part/fragment/end packet of
    /// a striped stream; borrow the inner packet with [`stripe_inner`].
    Stripe(u32),
    /// Handoff acknowledgment: the first-hop gateway has retransmitted the
    /// stream's end packet (the whole stream left the gateway). Flows
    /// *against* the stream direction, like credits, and only for streams
    /// whose header set the acked flag.
    Ack,
    /// In-band metrics pull, request direction: `tag.src` asks `tag.dest`
    /// for its live metrics snapshot. Carries no payload; `tag.msg_id` is
    /// the requester's pull sequence, echoed by the reply. Routed hop by
    /// hop over special channels like any forwarded stream, but
    /// stateless — no stream is opened.
    MetricsRequest,
    /// In-band metrics pull, reply direction: `tag.src` (the replier)
    /// returns its encoded [`mad_metrics::Snapshot`] to `tag.dest`.
    /// Borrow the payload with [`metrics_payload`].
    MetricsReply,
    /// In-band membership control (kind 11): one event of the dynamic
    /// membership protocol, carrying the subject node and its
    /// epoch-stamped incarnation. Routed hop by hop over the special
    /// channels like metrics packets; stateless at every relay.
    Member(MemberMsg),
    /// Rendezvous request-to-send (kind 12, RTS direction): the sender
    /// announces a bulk block *before* its first fragment leaves, so
    /// every hop can pre-reserve its landing buffer class and the
    /// receiver's pool is warm when the fragments arrive. Relayed
    /// downstream in stream order (between the stream's packets); each
    /// flow-controlled hop answers upstream with a CTS.
    RendezvousRts(RendezvousMsg),
    /// Rendezvous clear-to-send (kind 12, CTS direction): the downstream
    /// hop grants the announced block's whole credit window up front, so
    /// rendezvous fragments skip the per-fragment credit takes of the
    /// eager path. Flows *against* the stream, like credits.
    RendezvousCts(RendezvousMsg),
}

/// One membership-protocol event on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberEvent {
    /// `tag.src` (a joiner or rejoiner) asks `tag.dest` to admit
    /// `node` at incarnation `epoch` and reply with its recorded view.
    JoinRequest,
    /// Reply to a join request: `tag.src` (the responder) echoes the
    /// subject `node` with the highest epoch it has recorded for it —
    /// the joiner's verify phase cross-checks this against its own.
    JoinAck,
    /// `node` leaves gracefully at `epoch`: receivers retire its paths.
    Leave,
    /// Activation broadcast: `node` is active at incarnation `epoch`;
    /// receivers readmit its paths and update their views.
    Announce,
}

impl MemberEvent {
    fn to_wire(self) -> u8 {
        match self {
            MemberEvent::JoinRequest => 1,
            MemberEvent::JoinAck => 2,
            MemberEvent::Leave => 3,
            MemberEvent::Announce => 4,
        }
    }

    fn from_wire(b: u8) -> Option<MemberEvent> {
        match b {
            1 => Some(MemberEvent::JoinRequest),
            2 => Some(MemberEvent::JoinAck),
            3 => Some(MemberEvent::Leave),
            4 => Some(MemberEvent::Announce),
            _ => None,
        }
    }
}

/// Payload of a kind-11 membership packet: the event, the subject node
/// (usually but not necessarily `tag.src` — acks echo the joiner), and
/// the epoch-stamped incarnation the event talks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberMsg {
    /// Which protocol step this is.
    pub event: MemberEvent,
    /// The node the event is about.
    pub node: u32,
    /// The incarnation the event asserts (or echoes) for `node`.
    pub epoch: u64,
}

/// Payload of a kind-12 rendezvous packet (both directions): the block
/// being announced and the credit window it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RendezvousMsg {
    /// Length in bytes of the announced block.
    pub total: u64,
    /// Fragment MTU the block will be cut at (every hop sizes its
    /// landing buffer from this, not from a per-fragment header).
    pub mtu: u32,
    /// Fragment window: requested (RTS, the block's fragment count) or
    /// granted (CTS) up-front credits.
    pub window: u32,
}

fn prelude_into(v: &mut Vec<u8>, kind: u8, tag: &StreamTag) {
    v.push(GTM_MAGIC);
    v.push(GTM_VERSION);
    v.push(kind);
    v.extend_from_slice(&tag.src.0.to_le_bytes());
    v.extend_from_slice(&tag.dest.0.to_le_bytes());
    v.extend_from_slice(&tag.msg_id.to_le_bytes());
}

/// Encode a header packet into `v` (cleared first). The `_into` encoders
/// exist so hot paths can stage control packets in recycled buffers
/// instead of allocating a fresh `Vec` per packet.
pub fn encode_header_into(v: &mut Vec<u8>, h: &GtmHeader) {
    assert_ne!(h.stripes, 1, "a striped stream uses at least two paths");
    assert!(
        !(h.retry && h.stripes > 0),
        "striped streams do not retry (fragments have no replay cursor)"
    );
    v.clear();
    v.reserve(HEADER_LEN + 1);
    prelude_into(v, KIND_HEADER, &h.tag);
    v.extend_from_slice(&h.mtu.to_le_bytes());
    let mut flags = 0u8;
    if h.direct {
        flags |= FLAG_DIRECT;
    }
    if h.retry {
        flags |= FLAG_RETRY;
    }
    if h.stripes > 0 {
        flags |= FLAG_STRIPED;
    }
    if h.acked {
        flags |= FLAG_ACKED;
    }
    v.push(flags);
    if h.stripes > 0 {
        v.push(h.stripes);
    }
}

/// Encode a header packet.
pub fn encode_header(h: &GtmHeader) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_LEN);
    encode_header_into(&mut v, h);
    v
}

/// Encode a block-descriptor packet into `v` (cleared first).
pub fn encode_part_into(v: &mut Vec<u8>, tag: &StreamTag, d: &GtmPartDesc) {
    v.clear();
    v.reserve(PART_LEN);
    prelude_into(v, KIND_PART, tag);
    v.extend_from_slice(&d.len.to_le_bytes());
    v.push(d.send.to_wire());
    v.push(d.recv.to_wire());
}

/// Encode a block-descriptor packet.
pub fn encode_part(tag: &StreamTag, d: &GtmPartDesc) -> Vec<u8> {
    let mut v = Vec::with_capacity(PART_LEN);
    encode_part_into(&mut v, tag, d);
    v
}

/// Encode the end-of-stream packet into `v` (cleared first).
pub fn encode_end_into(v: &mut Vec<u8>, tag: &StreamTag) {
    v.clear();
    v.reserve(PRELUDE_LEN);
    prelude_into(v, KIND_END, tag);
}

/// Encode the end-of-stream packet.
pub fn encode_end(tag: &StreamTag) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    encode_end_into(&mut v, tag);
    v
}

/// Encode a credit grant of `count` fragments for a stream into `v`
/// (cleared first). Credits travel hop-by-hop on the same (bidirectional)
/// conduit as the stream, in the opposite direction.
pub fn encode_credit_into(v: &mut Vec<u8>, tag: &StreamTag, count: u32) {
    assert!(count > 0, "a credit grant must carry at least one credit");
    v.clear();
    v.reserve(CREDIT_LEN);
    prelude_into(v, KIND_CREDIT, tag);
    v.extend_from_slice(&count.to_le_bytes());
}

/// Encode a credit grant of `count` fragments for a stream.
pub fn encode_credit(tag: &StreamTag, count: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(CREDIT_LEN);
    encode_credit_into(&mut v, tag, count);
    v
}

/// Encode a stream-cancel packet into `v` (cleared first).
pub fn encode_cancel_into(v: &mut Vec<u8>, tag: &StreamTag, reason: CancelReason) {
    v.clear();
    v.reserve(CANCEL_LEN);
    prelude_into(v, KIND_CANCEL, tag);
    v.push(reason.to_wire());
}

/// Encode a stream-cancel packet.
pub fn encode_cancel(tag: &StreamTag, reason: CancelReason) -> Vec<u8> {
    let mut v = Vec::with_capacity(CANCEL_LEN);
    encode_cancel_into(&mut v, tag, reason);
    v
}

/// Encode a handoff-acknowledgment packet into `v` (cleared first). Like
/// credits, acks travel hop-by-hop against the stream direction; the
/// packet is the bare prelude — the tag identifies the acked stream.
pub fn encode_ack_into(v: &mut Vec<u8>, tag: &StreamTag) {
    v.clear();
    v.reserve(PRELUDE_LEN);
    prelude_into(v, KIND_ACK, tag);
}

/// Encode a handoff-acknowledgment packet.
pub fn encode_ack(tag: &StreamTag) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    encode_ack_into(&mut v, tag);
    v
}

/// Encode a metrics-pull request into `v` (cleared first): `tag.src`
/// asks `tag.dest` for a snapshot, `tag.msg_id` names the pull.
pub fn encode_metrics_request_into(v: &mut Vec<u8>, tag: &StreamTag) {
    v.clear();
    v.reserve(PRELUDE_LEN + 1);
    prelude_into(v, KIND_METRICS, tag);
    v.push(METRICS_REQUEST);
}

/// Encode a metrics-pull request.
pub fn encode_metrics_request(tag: &StreamTag) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN + 1);
    encode_metrics_request_into(&mut v, tag);
    v
}

/// Encode a metrics-pull reply into `v` (cleared first): `tag.src` (the
/// replier) carries its encoded snapshot back to `tag.dest`, echoing the
/// request's `msg_id`. The payload must respect [`METRICS_MAX`].
pub fn encode_metrics_reply_into(v: &mut Vec<u8>, tag: &StreamTag, payload: &[u8]) {
    assert!(
        payload.len() <= METRICS_MAX,
        "metrics reply payload over budget"
    );
    v.clear();
    v.reserve(PRELUDE_LEN + 1 + payload.len());
    prelude_into(v, KIND_METRICS, tag);
    v.push(METRICS_REPLY);
    v.extend_from_slice(payload);
}

/// Encode a metrics-pull reply.
pub fn encode_metrics_reply(tag: &StreamTag, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(PRELUDE_LEN + 1 + payload.len());
    encode_metrics_reply_into(&mut v, tag, payload);
    v
}

/// Borrow the encoded snapshot of a metrics reply packet.
pub fn metrics_payload(packet: &[u8]) -> &[u8] {
    &packet[PRELUDE_LEN + 1..]
}

/// Encode a membership packet into `v` (cleared first): `tag.src` sends
/// one protocol event toward `tag.dest`; `tag.msg_id` is the sender's
/// membership sequence number (idempotent re-runs reuse it).
pub fn encode_member_into(v: &mut Vec<u8>, tag: &StreamTag, msg: &MemberMsg) {
    v.clear();
    v.reserve(MEMBER_PACKET_LEN);
    prelude_into(v, KIND_MEMBER, tag);
    v.push(msg.event.to_wire());
    v.extend_from_slice(&msg.node.to_le_bytes());
    v.extend_from_slice(&msg.epoch.to_le_bytes());
}

/// Encode a membership packet.
pub fn encode_member(tag: &StreamTag, msg: &MemberMsg) -> Vec<u8> {
    let mut v = Vec::with_capacity(MEMBER_PACKET_LEN);
    encode_member_into(&mut v, tag, msg);
    v
}

fn encode_rendezvous_into(v: &mut Vec<u8>, tag: &StreamTag, direction: u8, msg: &RendezvousMsg) {
    assert!(msg.total > 0, "a rendezvous announces a non-empty block");
    assert!(msg.mtu > 0, "a rendezvous carries the stream MTU");
    assert!(
        msg.window > 0,
        "a rendezvous window is at least one fragment"
    );
    v.clear();
    v.reserve(RENDEZVOUS_PACKET_LEN);
    prelude_into(v, KIND_RENDEZVOUS, tag);
    v.push(direction);
    v.extend_from_slice(&msg.total.to_le_bytes());
    v.extend_from_slice(&msg.mtu.to_le_bytes());
    v.extend_from_slice(&msg.window.to_le_bytes());
}

/// Encode a rendezvous request-to-send into `v` (cleared first): the
/// sender announces the next block of the stream before any of its
/// fragments leave, `window` being the block's fragment count.
pub fn encode_rendezvous_rts_into(v: &mut Vec<u8>, tag: &StreamTag, msg: &RendezvousMsg) {
    encode_rendezvous_into(v, tag, RENDEZVOUS_RTS, msg);
}

/// Encode a rendezvous request-to-send.
pub fn encode_rendezvous_rts(tag: &StreamTag, msg: &RendezvousMsg) -> Vec<u8> {
    let mut v = Vec::with_capacity(RENDEZVOUS_PACKET_LEN);
    encode_rendezvous_rts_into(&mut v, tag, msg);
    v
}

/// Encode a rendezvous clear-to-send into `v` (cleared first): the
/// downstream hop grants `window` fragments of credit up front.
pub fn encode_rendezvous_cts_into(v: &mut Vec<u8>, tag: &StreamTag, msg: &RendezvousMsg) {
    encode_rendezvous_into(v, tag, RENDEZVOUS_CTS, msg);
}

/// Encode a rendezvous clear-to-send.
pub fn encode_rendezvous_cts(tag: &StreamTag, msg: &RendezvousMsg) -> Vec<u8> {
    let mut v = Vec::with_capacity(RENDEZVOUS_PACKET_LEN);
    encode_rendezvous_cts_into(&mut v, tag, msg);
    v
}

/// The constant prelude of a batch frame. A batch carries no stream of its
/// own, so the tag fields are zero; the sub-packet train follows as a
/// gather send `[prelude, len₀, packet₀, len₁, packet₁, …]`.
pub fn batch_prelude() -> [u8; PRELUDE_LEN] {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(
        &mut v,
        KIND_BATCH,
        &StreamTag {
            src: NodeId(0),
            dest: NodeId(0),
            msg_id: 0,
        },
    );
    v.try_into().expect("prelude length")
}

/// Assemble a batch frame from complete packets. Test/diagnostic helper —
/// hot paths gather the identical layout wire-side with
/// [`crate::conduit::Conduit::send_batch`] instead of staging a frame.
pub fn encode_batch(packets: &[&[u8]]) -> Vec<u8> {
    assert!(!packets.is_empty(), "a batch carries at least one packet");
    let total = PRELUDE_LEN
        + packets
            .iter()
            .map(|p| BATCH_ENTRY_OVERHEAD + p.len())
            .sum::<usize>();
    let mut v = Vec::with_capacity(total);
    v.extend_from_slice(&batch_prelude());
    for p in packets {
        v.extend_from_slice(&(p.len() as u32).to_le_bytes());
        v.extend_from_slice(p);
    }
    v
}

/// Iterate the complete sub-packets of a validated batch frame, in order.
/// Fails if `frame` is not a well-formed batch packet.
pub fn batch_packets(frame: &[u8]) -> Result<BatchPackets<'_>> {
    match decode_packet(frame)? {
        (_, PacketBody::Batch) => Ok(BatchPackets {
            rest: &frame[PRELUDE_LEN..],
        }),
        _ => Err(MadError::Protocol(
            "batch_packets on a non-batch GTM packet".into(),
        )),
    }
}

/// Iterator over the sub-packet slices of a batch frame; see
/// [`batch_packets`]. Infallible because the frame was validated whole at
/// decode time.
pub struct BatchPackets<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for BatchPackets<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let len = u32::from_le_bytes(self.rest[..4].try_into().unwrap()) as usize;
        let (pkt, rest) = self.rest[4..].split_at(len);
        self.rest = rest;
        Some(pkt)
    }
}

/// The constant fragment prelude for a stream. Senders emit each fragment
/// as one gather send `[prelude, chunk]`, so the tag costs no extra packet.
pub fn frag_prelude(tag: &StreamTag) -> [u8; PRELUDE_LEN] {
    let mut v = Vec::with_capacity(PRELUDE_LEN);
    prelude_into(&mut v, KIND_FRAG, tag);
    v.try_into().expect("prelude length")
}

/// Borrow the payload bytes of a fragment packet.
pub fn frag_payload(packet: &[u8]) -> &[u8] {
    &packet[PRELUDE_LEN..]
}

/// The stripe-envelope prelude for one sequence number: common prelude
/// plus the u32 LE sequence. Striped senders emit each envelope as a
/// gather send `[stripe_prelude, inner packet…]`, so striping costs
/// [`STRIPE_OVERHEAD`] bytes and no extra copy.
pub fn stripe_prelude(tag: &StreamTag, seq: u32) -> [u8; STRIPE_OVERHEAD] {
    let mut v = Vec::with_capacity(STRIPE_OVERHEAD);
    prelude_into(&mut v, KIND_STRIPE, tag);
    v.extend_from_slice(&seq.to_le_bytes());
    v.try_into().expect("stripe prelude length")
}

/// Borrow the complete inner packet of a stripe envelope.
pub fn stripe_inner(packet: &[u8]) -> &[u8] {
    &packet[STRIPE_OVERHEAD..]
}

/// Decode any GTM packet into its stream tag and body. Fails on anything
/// that is not well-formed version-2 framing.
pub fn decode_packet(packet: &[u8]) -> Result<(StreamTag, PacketBody)> {
    let err = |msg: &str| MadError::Protocol(format!("GTM packet: {msg}"));
    if packet.len() < PRELUDE_LEN || packet[0] != GTM_MAGIC {
        return Err(err("bad magic"));
    }
    if packet[1] != GTM_VERSION {
        return Err(err("unsupported version"));
    }
    let tag = StreamTag {
        src: NodeId(u32::from_le_bytes(packet[3..7].try_into().unwrap())),
        dest: NodeId(u32::from_le_bytes(packet[7..11].try_into().unwrap())),
        msg_id: u32::from_le_bytes(packet[11..15].try_into().unwrap()),
    };
    let body = match packet[2] {
        KIND_HEADER => {
            if packet.len() < HEADER_LEN {
                return Err(err("header length"));
            }
            let mtu = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if mtu == 0 {
                return Err(err("zero MTU"));
            }
            let flags = packet[19];
            if flags & !(FLAG_DIRECT | FLAG_RETRY | FLAG_STRIPED | FLAG_ACKED) != 0 {
                return Err(err("unknown header flags"));
            }
            let striped = flags & FLAG_STRIPED != 0;
            // Only a striped header carries the extra path-count byte.
            if packet.len() != HEADER_LEN + usize::from(striped) {
                return Err(err("header length"));
            }
            let stripes = if striped { packet[HEADER_LEN] } else { 0 };
            if striped && stripes < 2 {
                return Err(err("striped header with fewer than two paths"));
            }
            let retry = flags & FLAG_RETRY != 0;
            if retry && striped {
                return Err(err("striped retry"));
            }
            PacketBody::Header(GtmHeader {
                tag,
                mtu,
                direct: flags & FLAG_DIRECT != 0,
                retry,
                stripes,
                acked: flags & FLAG_ACKED != 0,
            })
        }
        KIND_PART => {
            if packet.len() != PART_LEN {
                return Err(err("descriptor length"));
            }
            let len = u64::from_le_bytes(packet[15..23].try_into().unwrap());
            let send = SendMode::from_wire(packet[23]).ok_or_else(|| err("send mode"))?;
            let recv = RecvMode::from_wire(packet[24]).ok_or_else(|| err("recv mode"))?;
            PacketBody::Part(GtmPartDesc { len, send, recv })
        }
        KIND_END => {
            if packet.len() != PRELUDE_LEN {
                return Err(err("end length"));
            }
            PacketBody::End
        }
        KIND_FRAG => {
            if packet.len() == PRELUDE_LEN {
                return Err(err("empty fragment"));
            }
            PacketBody::Frag
        }
        KIND_CREDIT => {
            if packet.len() != CREDIT_LEN {
                return Err(err("credit length"));
            }
            let count = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            if count == 0 {
                return Err(err("zero credit grant"));
            }
            PacketBody::Credit(count)
        }
        KIND_CANCEL => {
            if packet.len() != CANCEL_LEN {
                return Err(err("cancel length"));
            }
            let reason = CancelReason::from_wire(packet[15]).ok_or_else(|| err("cancel reason"))?;
            PacketBody::Cancel(reason)
        }
        KIND_BATCH => {
            // Validate the whole train up front so the sub-packet iterator
            // can be infallible: every length prefix must delimit a
            // plausibly-framed, non-nested packet.
            let mut rest = &packet[PRELUDE_LEN..];
            if rest.is_empty() {
                return Err(err("empty batch"));
            }
            while !rest.is_empty() {
                if rest.len() < 4 {
                    return Err(err("truncated batch length prefix"));
                }
                let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
                rest = &rest[4..];
                if len < PRELUDE_LEN || len > rest.len() {
                    return Err(err("batch entry length"));
                }
                if rest[2] == KIND_BATCH {
                    return Err(err("nested batch"));
                }
                rest = &rest[len..];
            }
            PacketBody::Batch
        }
        KIND_STRIPE => {
            if packet.len() < STRIPE_OVERHEAD + PRELUDE_LEN {
                return Err(err("stripe envelope length"));
            }
            let seq = u32::from_le_bytes(packet[15..19].try_into().unwrap());
            // The inner packet must itself be well-formed, belong to the
            // same stream, and be one of the enveloped kinds — validated
            // here so consumers can unwrap envelopes infallibly.
            let (inner_tag, inner_body) = decode_packet(&packet[STRIPE_OVERHEAD..])?;
            if inner_tag != tag {
                return Err(err("stripe envelope around a foreign stream"));
            }
            match inner_body {
                PacketBody::Part(_) | PacketBody::Frag | PacketBody::End => {}
                _ => return Err(err("stripe envelope around a non-body packet")),
            }
            PacketBody::Stripe(seq)
        }
        KIND_ACK => {
            if packet.len() != PRELUDE_LEN {
                return Err(err("ack length"));
            }
            PacketBody::Ack
        }
        KIND_METRICS => {
            if packet.len() < PRELUDE_LEN + 1 {
                return Err(err("metrics packet length"));
            }
            match packet[PRELUDE_LEN] {
                METRICS_REQUEST => {
                    if packet.len() != PRELUDE_LEN + 1 {
                        return Err(err("metrics request length"));
                    }
                    PacketBody::MetricsRequest
                }
                METRICS_REPLY => {
                    if packet.len() > METRICS_PACKET_MAX {
                        return Err(err("metrics reply over budget"));
                    }
                    PacketBody::MetricsReply
                }
                _ => return Err(err("metrics direction")),
            }
        }
        KIND_MEMBER => {
            if packet.len() != MEMBER_PACKET_LEN {
                return Err(err("member packet length"));
            }
            let event =
                MemberEvent::from_wire(packet[PRELUDE_LEN]).ok_or_else(|| err("member event"))?;
            let node =
                u32::from_le_bytes(packet[PRELUDE_LEN + 1..PRELUDE_LEN + 5].try_into().unwrap());
            let epoch = u64::from_le_bytes(
                packet[PRELUDE_LEN + 5..PRELUDE_LEN + 13]
                    .try_into()
                    .unwrap(),
            );
            if epoch == 0 {
                return Err(err("zero member epoch"));
            }
            PacketBody::Member(MemberMsg { event, node, epoch })
        }
        KIND_RENDEZVOUS => {
            if packet.len() != RENDEZVOUS_PACKET_LEN {
                return Err(err("rendezvous packet length"));
            }
            let total =
                u64::from_le_bytes(packet[PRELUDE_LEN + 1..PRELUDE_LEN + 9].try_into().unwrap());
            let mtu = u32::from_le_bytes(
                packet[PRELUDE_LEN + 9..PRELUDE_LEN + 13]
                    .try_into()
                    .unwrap(),
            );
            let window = u32::from_le_bytes(
                packet[PRELUDE_LEN + 13..PRELUDE_LEN + 17]
                    .try_into()
                    .unwrap(),
            );
            if total == 0 {
                return Err(err("empty rendezvous block"));
            }
            if mtu == 0 {
                return Err(err("zero rendezvous MTU"));
            }
            if window == 0 {
                return Err(err("zero rendezvous window"));
            }
            let msg = RendezvousMsg { total, mtu, window };
            match packet[PRELUDE_LEN] {
                RENDEZVOUS_RTS => PacketBody::RendezvousRts(msg),
                RENDEZVOUS_CTS => PacketBody::RendezvousCts(msg),
                _ => return Err(err("rendezvous direction")),
            }
        }
        _ => Err(err("unknown kind"))?,
    };
    Ok((tag, body))
}

/// Number of fragments a `len`-byte block occupies at a given MTU.
pub fn fragment_count(len: u64, mtu: u32) -> u64 {
    if len == 0 {
        0
    } else {
        len.div_ceil(mtu as u64)
    }
}

/// Landing-buffer size for packets of a stream fragmented at `mtu`: the
/// tagged fragment itself, floored so every control packet fits too —
/// including a full-size in-band metrics reply (kind 10). The single
/// source of truth for the floor: gateway landing buffers and rendezvous
/// pre-reservations must agree on the size class, or a pre-warmed pool
/// buffer would miss the class the receive path actually draws from.
pub fn landing_size_for(mtu: usize) -> usize {
    (PRELUDE_LEN + mtu).max(256).max(METRICS_PACKET_MAX)
}

/// Sender side of the GTM: writes a self-described, MTU-fragmented stream
/// toward the first hop (a gateway over a *special* channel, or — for
/// direct streams from gateway-resident senders — the destination itself
/// over the *regular* channel).
///
/// The GTM transmits eagerly — each block leaves at `pack` time — which is
/// what keeps the gateway pipeline fed. Unlike version 1, the conduit is
/// *not* held across the message: every packet is self-described, so each
/// is sent under its own lock hold and packets of concurrent streams
/// interleave freely on shared conduits.
pub struct GtmWriter<'c> {
    channel: &'c Channel,
    first_hop: NodeId,
    tag: StreamTag,
    frag_prelude: [u8; PRELUDE_LEN],
    mtu: usize,
    finished: bool,
    flow: Option<WriterFlow>,
    /// Blocks of at least this many bytes run the rendezvous handshake
    /// (RTS announced, whole-window CTS awaited) instead of the eager
    /// per-fragment credit takes. `0` — the default — keeps every block
    /// eager; only single-path flow-controlled writers enable it.
    rendezvous_threshold: usize,
    /// Fragments already paid for by a rendezvous grant: while positive,
    /// fragments leave without touching the per-fragment credit ledger.
    prepaid: u64,
    /// Recycled staging buffer for the stream's control packets (header,
    /// descriptors, end, cancel) — one pool hit per stream instead of one
    /// heap allocation per packet.
    scratch: PooledBuf,
}

impl<'c> GtmWriter<'c> {
    /// Start a stream: emits the header packet immediately. When `flow` is
    /// given the stream is credit-controlled: each fragment consumes one
    /// credit from the stream's window before it may leave, and the wait is
    /// deadline-bounded (see [`crate::credit`]).
    pub fn begin(
        channel: &'c Channel,
        first_hop: NodeId,
        tag: StreamTag,
        mtu: usize,
        direct: bool,
        flow: Option<WriterFlow>,
    ) -> Result<Self> {
        Self::begin_attempt(channel, first_hop, tag, mtu, direct, false, false, flow)
    }

    /// Like [`GtmWriter::begin`], but with control over the header's retry
    /// and acked flags — set by the multi-path layer when re-issuing a
    /// failed stream on a surviving route (retry: the receiver discards the
    /// partial first attempt instead of rejecting the duplicate header) and
    /// when requesting a handoff acknowledgment from the first-hop gateway
    /// (acked: the sender can detect a gateway that dies after accepting
    /// the whole stream but before relaying it).
    #[allow(clippy::too_many_arguments)]
    pub fn begin_attempt(
        channel: &'c Channel,
        first_hop: NodeId,
        tag: StreamTag,
        mtu: usize,
        direct: bool,
        retry: bool,
        acked: bool,
        flow: Option<WriterFlow>,
    ) -> Result<Self> {
        assert!(mtu > 0, "GTM MTU must be positive");
        assert!(
            mtu.saturating_add(PRELUDE_LEN) <= channel.caps().max_packet,
            "GTM MTU plus fragment prelude exceeds the first hop's max packet size"
        );
        let mut scratch = channel.runtime().pool().get(PART_LEN);
        encode_header_into(
            scratch.vec(),
            &GtmHeader {
                tag,
                mtu: mtu as u32,
                direct,
                retry,
                stripes: 0,
                acked,
            },
        );
        if let Some(flow) = &flow {
            flow.open(tag.key());
        }
        if let Err(e) = channel.send_packet(first_hop, &[&scratch]) {
            if let Some(flow) = &flow {
                flow.close(tag.key());
            }
            return Err(e);
        }
        trace_count!(channel.tracer(), "gtm", "encode", 1);
        Ok(GtmWriter {
            channel,
            first_hop,
            tag,
            frag_prelude: frag_prelude(&tag),
            mtu,
            finished: false,
            flow,
            rendezvous_threshold: 0,
            prepaid: 0,
            scratch,
        })
    }

    /// Enable the size-adaptive protocol switch: blocks of at least
    /// `threshold` bytes rendezvous (RTS/CTS whole-window grant) instead
    /// of going eager. `0` disables the switch. Only meaningful on
    /// flow-controlled streams — without a credit window there is no
    /// grant channel, so the writer stays eager regardless.
    pub fn set_rendezvous_threshold(&mut self, threshold: usize) {
        self.rendezvous_threshold = threshold;
    }

    /// Append a block: descriptor packet, then tagged MTU-sized fragments.
    ///
    /// On error the stream is dead: the writer seals itself (no further
    /// packets, dropping it is fine), the stream's credit account is
    /// released, and — if the stream was cancelled (credit timeout or
    /// unreachable peer) — a best-effort cancel packet chases the stream so
    /// downstream hops can release its state instead of waiting for an end
    /// that will never come.
    pub fn pack(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        match self.pack_inner(data, send, recv) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.abort(&e);
                Err(e)
            }
        }
    }

    fn pack_inner(&mut self, data: &[u8], send: SendMode, recv: RecvMode) -> Result<()> {
        let _pack = trace_span!(
            self.channel.tracer(),
            "gtm",
            "pack",
            "dest" = self.tag.dest.0 as u64,
            "bytes" = data.len() as u64,
        );
        // Size-adaptive protocol switch: a bulk block announces itself
        // with an RTS and waits for the first hop's whole-window CTS, so
        // its fragments leave back-to-back with no per-fragment credit
        // round-trips and every hop has its landing pre-reserved.
        let rendezvous = self.rendezvous_threshold > 0
            && data.len() >= self.rendezvous_threshold
            && self.flow.is_some();
        if rendezvous {
            let window = fragment_count(data.len() as u64, self.mtu as u32).min(u32::MAX as u64);
            encode_rendezvous_rts_into(
                self.scratch.vec(),
                &self.tag,
                &RendezvousMsg {
                    total: data.len() as u64,
                    mtu: self.mtu as u32,
                    window: window as u32,
                },
            );
            self.channel.send_packet(self.first_hop, &[&self.scratch])?;
            trace_count!(self.channel.tracer(), "gtm", "encode", 1);
            if let Some(flow) = &self.flow {
                let granted = flow.wait_grant(self.channel, self.first_hop, &self.tag)?;
                self.prepaid = self.prepaid.saturating_add(granted as u64);
            }
        }
        encode_part_into(
            self.scratch.vec(),
            &self.tag,
            &GtmPartDesc {
                len: data.len() as u64,
                send,
                recv,
            },
        );
        self.channel.send_packet(self.first_hop, &[&self.scratch])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        let mut granted_fragments = 0u64;
        for chunk in data.chunks(self.mtu) {
            if self.prepaid > 0 {
                self.prepaid -= 1;
                granted_fragments += 1;
            } else if let Some(flow) = &self.flow {
                flow.take(self.channel, self.first_hop, &self.tag)?;
            }
            self.channel
                .send_packet(self.first_hop, &[&self.frag_prelude, chunk])?;
            trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        }
        if let Some(flow) = &self.flow {
            flow.note_block(rendezvous, granted_fragments);
        }
        Ok(())
    }

    /// Seal a failed stream: release its credit account and, when the local
    /// credit wait is what gave up, tell downstream hops to drop it.
    fn abort(&mut self, cause: &MadError) {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        let reason = match cause {
            MadError::CreditTimeout { .. } => Some(CancelReason::CreditTimeout),
            MadError::PeerUnreachable(_) => Some(CancelReason::PeerUnreachable),
            _ => None,
        };
        if let Some(reason) = reason {
            // Best effort — the first hop may itself be unreachable.
            encode_cancel_into(self.scratch.vec(), &self.tag, reason);
            let _ = self.channel.send_packet(self.first_hop, &[&self.scratch]);
        }
    }

    /// Finish the stream with the end packet.
    pub fn end_packing(mut self) -> Result<()> {
        self.finished = true;
        if let Some(flow) = self.flow.take() {
            flow.close(self.tag.key());
        }
        encode_end_into(self.scratch.vec(), &self.tag);
        self.channel.send_packet(self.first_hop, &[&self.scratch])?;
        trace_count!(self.channel.tracer(), "gtm", "encode", 1);
        Ok(())
    }
}

impl Drop for GtmWriter<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("GtmWriter dropped without end_packing");
        }
    }
}

/// One buffered item of a partially received stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// Descriptor of the next block.
    Part(GtmPartDesc),
    /// A fragment packet, stored verbatim (payload at [`PRELUDE_LEN`]).
    /// Pool-backed when the assembler has a pool, so consuming a fragment
    /// recycles its landing buffer.
    Frag(PooledBuf),
    /// End of the stream.
    End,
    /// The stream was cancelled upstream and will never end normally.
    Cancelled(CancelReason),
    /// The sender re-issued the stream from scratch on another path
    /// (multi-path failover): everything buffered before this point was
    /// discarded, and the items that follow replay the stream from its
    /// first block. Readers that already consumed a prefix skip the same
    /// prefix of the replay — fragmentation is deterministic, so the
    /// replayed items line up one-to-one with the originals.
    Restart,
}

/// Reorder state of a striped stream: envelopes are replayed in sequence
/// order, and per-path plain end packets are counted for teardown.
struct StripeState {
    next_seq: u32,
    pending: BTreeMap<u32, PooledBuf>,
    path_ends: u8,
}

struct PendingStream {
    header: GtmHeader,
    items: VecDeque<StreamItem>,
    /// Conduit the stream's header arrived on (0 = unconstrained). Body
    /// packets from other origins are stale leftovers of a failed-over
    /// path and are dropped silently. Striped streams are unconstrained —
    /// their packets legitimately arrive from every path.
    origin: u64,
    stripe: Option<StripeState>,
    /// A ghost stream is the retry of a stream that was already delivered
    /// (the handoff ack was lost, not the stream). It is never surfaced to
    /// the application: its body packets are swallowed and the stream is
    /// dropped when its end or cancel arrives.
    ghost: bool,
}

/// Receive-side demultiplexer: turns an interleaved sequence of version-2
/// packets (from any number of conduits) back into per-stream item queues.
///
/// Purely computational — no I/O, no locking — so the interleave/reassemble
/// logic is testable in isolation. Streams become *ready* in header-arrival
/// order; [`StreamAssembler::pop_ready`] hands them out FIFO, which is what
/// preserves per-sender delivery order end to end.
#[derive(Default)]
pub struct StreamAssembler {
    streams: BTreeMap<StreamKey, PendingStream>,
    ready: VecDeque<StreamKey>,
    /// Finished striped streams still owed per-path end packets: the
    /// remaining count is parked here so slow paths' trailing ends are
    /// swallowed instead of reported as unknown-stream errors.
    stripe_tombstones: BTreeMap<StreamKey, u8>,
    /// When present, fragments split out of batch frames are copied into
    /// recycled buffers instead of fresh heap allocations.
    pool: Option<std::sync::Arc<mad_util::pool::BufferPool>>,
    /// Streams whose end packet was consumed successfully (recorded by
    /// [`StreamAssembler::finish_delivered`]). A retry header for such a
    /// stream means only the sender's handoff ack was lost — the replay is
    /// absorbed as a ghost instead of delivered twice.
    delivered: BTreeSet<StreamKey>,
}

impl StreamAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty assembler drawing batch-split fragment copies from `pool`.
    pub fn with_pool(pool: std::sync::Arc<mad_util::pool::BufferPool>) -> Self {
        StreamAssembler {
            pool: Some(pool),
            ..Self::default()
        }
    }

    /// Feed one received packet — possibly a batch frame, which is split
    /// into its sub-packets in order. Returns the keys of the streams the
    /// packet opened (headers that just arrived); empty for anything else.
    pub fn push_packet(&mut self, packet: impl Into<PooledBuf>) -> Result<Vec<StreamKey>> {
        self.push_packet_from(0, packet)
    }

    /// Like [`StreamAssembler::push_packet`], naming the conduit the packet
    /// arrived on (any non-zero token; 0 means "unconstrained"). Multi-path
    /// receivers pass distinct origins per conduit: a single-path stream is
    /// pinned to the conduit its header came from, so stale packets of a
    /// failed-over (dead) path are dropped silently instead of corrupting
    /// the replayed stream. Striped streams are exempt — their packets
    /// legitimately arrive from every path.
    pub fn push_packet_from(
        &mut self,
        origin: u64,
        packet: impl Into<PooledBuf>,
    ) -> Result<Vec<StreamKey>> {
        let packet = packet.into();
        let (tag, body) = decode_packet(&packet)?;
        if matches!(body, PacketBody::Batch) {
            let mut opened = Vec::new();
            for sub in batch_packets(&packet)? {
                let buf = match &self.pool {
                    Some(pool) => {
                        let mut b = pool.get(sub.len());
                        b.vec().extend_from_slice(sub);
                        b
                    }
                    None => PooledBuf::from(sub.to_vec()),
                };
                opened.extend(self.push_one(origin, buf)?);
            }
            return Ok(opened);
        }
        self.push_one_decoded(origin, packet, tag, body)
    }

    fn push_one(&mut self, origin: u64, packet: PooledBuf) -> Result<Vec<StreamKey>> {
        let (tag, body) = decode_packet(&packet)?;
        self.push_one_decoded(origin, packet, tag, body)
    }

    fn push_one_decoded(
        &mut self,
        origin: u64,
        packet: PooledBuf,
        tag: StreamTag,
        body: PacketBody,
    ) -> Result<Vec<StreamKey>> {
        let key = tag.key();
        match body {
            PacketBody::Batch => Err(MadError::Protocol(
                "nested batch frame reached a stream assembler".into(),
            )),
            PacketBody::Credit(_) => {
                // Credits are hop-by-hop flow control consumed by writers
                // and gateway engines; one surviving to an assembler means
                // a routing layer leaked it.
                Err(MadError::Protocol(format!(
                    "credit packet for stream {key:?} reached a stream assembler"
                )))
            }
            PacketBody::Ack => {
                // Acks flow toward stream origins and are consumed by the
                // multi-path writer's pump, never by a receiving assembler.
                Err(MadError::Protocol(format!(
                    "handoff ack for stream {key:?} reached a stream assembler"
                )))
            }
            PacketBody::MetricsRequest | PacketBody::MetricsReply | PacketBody::Member(_) => {
                // Metrics pulls and membership events are served by their
                // planes (gateway engines and endpoint responders) on
                // special channels and open no stream; one here means a
                // routing layer leaked it.
                Err(MadError::Protocol(format!(
                    "control-plane packet for {key:?} reached a stream assembler"
                )))
            }
            PacketBody::RendezvousRts(m) => {
                // The last hop relays the RTS to the final receiver in
                // stream order: pre-warm the pool class the announced
                // block's fragments will draw from (batch-split landings
                // request exactly one tagged fragment's size), then
                // swallow it — the endpoint never consumes credits, so
                // no CTS goes back. Unknown/ghost/stale streams are
                // tolerated like any other already-dead stream state.
                if self.streams.contains_key(&key) {
                    if let Some(pool) = &self.pool {
                        drop(pool.get(PRELUDE_LEN + m.mtu as usize));
                    }
                }
                Ok(Vec::new())
            }
            PacketBody::RendezvousCts(_) => {
                // A CTS flows toward stream origins and is consumed by
                // writer pumps and gateway engines, never by a receiving
                // assembler.
                Err(MadError::Protocol(format!(
                    "rendezvous CTS for stream {key:?} reached a stream assembler"
                )))
            }
            PacketBody::Header(header) => self.push_header(origin, key, header),
            body => {
                if let Some(remaining) = self.stripe_tombstones.get_mut(&key) {
                    // A finished striped stream is owed only its slower
                    // paths' trailing end packets.
                    if !matches!(body, PacketBody::End) {
                        return Err(MadError::Protocol(format!(
                            "non-end packet for finished striped stream {key:?}"
                        )));
                    }
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.stripe_tombstones.remove(&key);
                    }
                    return Ok(Vec::new());
                }
                let stream = self.streams.get_mut(&key).ok_or_else(|| {
                    MadError::Protocol(format!("GTM packet for unknown stream {key:?}"))
                })?;
                if stream.ghost {
                    // Replay of an already-delivered stream: swallow the
                    // body and drop the ghost once its terminator arrives.
                    if matches!(body, PacketBody::End | PacketBody::Cancel(_)) {
                        self.streams.remove(&key);
                    }
                    return Ok(Vec::new());
                }
                if stream.origin != 0 && origin != 0 && origin != stream.origin {
                    // Stale leftover of a path the stream failed away from.
                    return Ok(Vec::new());
                }
                if stream.stripe.is_some() {
                    Self::push_striped(stream, packet, body)?;
                    return Ok(Vec::new());
                }
                stream.items.push_back(match body {
                    PacketBody::Part(d) => StreamItem::Part(d),
                    PacketBody::Frag => StreamItem::Frag(packet),
                    PacketBody::End => StreamItem::End,
                    PacketBody::Cancel(reason) => StreamItem::Cancelled(reason),
                    PacketBody::Stripe(_) => {
                        return Err(MadError::Protocol(format!(
                            "stripe envelope for unstriped stream {key:?}"
                        )))
                    }
                    PacketBody::Header(_)
                    | PacketBody::Credit(_)
                    | PacketBody::Batch
                    | PacketBody::Ack
                    | PacketBody::MetricsRequest
                    | PacketBody::MetricsReply
                    | PacketBody::Member(_)
                    | PacketBody::RendezvousRts(_)
                    | PacketBody::RendezvousCts(_) => {
                        unreachable!()
                    }
                });
                Ok(Vec::new())
            }
        }
    }

    fn push_header(
        &mut self,
        origin: u64,
        key: StreamKey,
        header: GtmHeader,
    ) -> Result<Vec<StreamKey>> {
        let duplicate = || MadError::Protocol(format!("duplicate GTM header for stream {key:?}"));
        if self.stripe_tombstones.contains_key(&key) {
            return Err(duplicate());
        }
        match self.streams.get_mut(&key) {
            None => {
                if header.retry && self.delivered.contains(&key) {
                    // The stream already arrived in full on its first
                    // attempt — only the sender's handoff ack was lost.
                    // Open a ghost: absorb the replay without surfacing a
                    // second copy to the application.
                    self.streams.insert(
                        key,
                        PendingStream {
                            header,
                            items: VecDeque::new(),
                            origin,
                            stripe: None,
                            ghost: true,
                        },
                    );
                    return Ok(Vec::new());
                }
                let striped = header.stripes > 0;
                self.streams.insert(
                    key,
                    PendingStream {
                        header,
                        items: VecDeque::new(),
                        origin: if striped { 0 } else { origin },
                        stripe: striped.then(|| StripeState {
                            next_seq: 0,
                            pending: BTreeMap::new(),
                            path_ends: 0,
                        }),
                        ghost: false,
                    },
                );
                self.ready.push_back(key);
                Ok(vec![key])
            }
            Some(stream) => {
                if stream.ghost {
                    // A further retry of an already-delivered stream: keep
                    // absorbing on the new path.
                    if header.retry {
                        stream.origin = origin;
                        stream.items.clear();
                        return Ok(Vec::new());
                    }
                    return Err(duplicate());
                }
                if header.stripes > 0 && stream.header == header {
                    // Another path's copy of a striped header.
                    return Ok(Vec::new());
                }
                if header.retry && stream.stripe.is_none() {
                    // Failover graft: the sender re-issues the stream from
                    // scratch on a surviving path. Unconsumed buffered
                    // items (including a queued cancel) are superseded by
                    // the replay; the restart marker tells the reader to
                    // resynchronize.
                    stream.header = header;
                    stream.origin = origin;
                    stream.items.clear();
                    stream.items.push_back(StreamItem::Restart);
                    return Ok(Vec::new());
                }
                Err(duplicate())
            }
        }
    }

    /// Apply one body packet to a striped stream: count per-path transport
    /// ends, surface cancels immediately, and replay stripe envelopes in
    /// sequence order.
    fn push_striped(stream: &mut PendingStream, packet: PooledBuf, body: PacketBody) -> Result<()> {
        let PendingStream {
            items,
            stripe,
            header,
            ..
        } = stream;
        let st = match stripe.as_mut() {
            Some(st) => st,
            None => unreachable!("push_striped on an unstriped stream"),
        };
        match body {
            PacketBody::End => {
                // A path's transport terminator; the logical end of the
                // stream travels inside an envelope.
                st.path_ends = st.path_ends.saturating_add(1);
                Ok(())
            }
            PacketBody::Cancel(reason) => {
                items.push_back(StreamItem::Cancelled(reason));
                Ok(())
            }
            PacketBody::Stripe(seq) => {
                if seq < st.next_seq || st.pending.contains_key(&seq) {
                    return Err(MadError::Protocol(format!(
                        "duplicate stripe sequence {seq} for stream {:?}",
                        header.tag.key()
                    )));
                }
                st.pending.insert(seq, packet);
                while let Some(mut buf) = st.pending.remove(&st.next_seq) {
                    buf.vec().drain(..STRIPE_OVERHEAD);
                    // Envelope decoding already validated the inner packet.
                    let (_, inner) = decode_packet(&buf)?;
                    items.push_back(match inner {
                        PacketBody::Part(d) => StreamItem::Part(d),
                        PacketBody::Frag => StreamItem::Frag(buf),
                        PacketBody::End => StreamItem::End,
                        _ => unreachable!("validated at envelope decode"),
                    });
                    st.next_seq += 1;
                }
                Ok(())
            }
            PacketBody::Part(_) | PacketBody::Frag => Err(MadError::Protocol(
                "bare body packet on a striped stream".into(),
            )),
            PacketBody::Header(_)
            | PacketBody::Credit(_)
            | PacketBody::Batch
            | PacketBody::Ack
            | PacketBody::MetricsRequest
            | PacketBody::MetricsReply
            | PacketBody::Member(_)
            | PacketBody::RendezvousRts(_)
            | PacketBody::RendezvousCts(_) => {
                unreachable!()
            }
        }
    }

    /// Next unclaimed stream, in header-arrival order.
    pub fn pop_ready(&mut self) -> Option<StreamKey> {
        self.ready.pop_front()
    }

    /// The header of a known stream.
    pub fn header(&self, key: StreamKey) -> Option<GtmHeader> {
        self.streams.get(&key).map(|s| s.header)
    }

    /// Pop the next buffered item of a stream, if any.
    pub fn next_item(&mut self, key: StreamKey) -> Option<StreamItem> {
        self.streams.get_mut(&key)?.items.pop_front()
    }

    /// Drop a fully consumed stream. A striped stream still owed trailing
    /// per-path end packets leaves a tombstone so they are swallowed when
    /// the slower paths deliver them.
    pub fn finish(&mut self, key: StreamKey) {
        if let Some(stream) = self.streams.remove(&key) {
            if let Some(st) = stream.stripe {
                let expected = stream.header.stripes;
                if st.path_ends < expected {
                    self.stripe_tombstones.insert(key, expected - st.path_ends);
                }
            }
        }
    }

    /// Like [`StreamAssembler::finish`], for a stream whose end packet was
    /// consumed successfully. Streams that requested a handoff ack are
    /// remembered so a later retry — meaning the ack, not the stream, was
    /// lost — is absorbed as a ghost instead of delivered twice. Only
    /// acked streams are recorded, keeping the set bounded to multi-path
    /// traffic.
    pub fn finish_delivered(&mut self, key: StreamKey) {
        if self.streams.get(&key).is_some_and(|s| s.header.acked) {
            self.delivered.insert(key);
        }
        self.finish(key);
    }

    /// True when no stream state is held at all.
    pub fn is_idle(&self) -> bool {
        self.streams.is_empty() && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(src: u32, dest: u32, msg_id: u32) -> StreamTag {
        StreamTag {
            src: NodeId(src),
            dest: NodeId(dest),
            msg_id,
        }
    }

    #[test]
    fn member_packets_round_trip_and_validate() {
        let t = tag(4, 9, 17);
        for event in [
            MemberEvent::JoinRequest,
            MemberEvent::JoinAck,
            MemberEvent::Leave,
            MemberEvent::Announce,
        ] {
            let msg = MemberMsg {
                event,
                node: 4,
                epoch: 3,
            };
            let pkt = encode_member(&t, &msg);
            assert_eq!(pkt.len(), MEMBER_PACKET_LEN);
            assert_eq!(decode_packet(&pkt), Ok((t, PacketBody::Member(msg))));
        }
        // Truncation, unknown events, and epoch 0 (epochs start at 1 —
        // a zero can only be a corrupted packet) are all rejected.
        let good = encode_member(
            &t,
            &MemberMsg {
                event: MemberEvent::Announce,
                node: 4,
                epoch: 1,
            },
        );
        assert!(decode_packet(&good[..good.len() - 1]).is_err());
        let mut bad_event = good.clone();
        bad_event[PRELUDE_LEN] = 9;
        assert!(decode_packet(&bad_event).is_err());
        let mut zero_epoch = good.clone();
        zero_epoch[PRELUDE_LEN + 5..PRELUDE_LEN + 13].fill(0);
        assert!(decode_packet(&zero_epoch).is_err());
    }

    #[test]
    fn rendezvous_packets_round_trip_and_validate() {
        let t = tag(2, 7, 33);
        let msg = RendezvousMsg {
            total: 1 << 20,
            mtu: 8192,
            window: 128,
        };
        let rts = encode_rendezvous_rts(&t, &msg);
        assert_eq!(rts.len(), RENDEZVOUS_PACKET_LEN);
        assert_eq!(decode_packet(&rts), Ok((t, PacketBody::RendezvousRts(msg))));
        let cts = encode_rendezvous_cts(&t, &msg);
        assert_eq!(cts.len(), RENDEZVOUS_PACKET_LEN);
        assert_eq!(decode_packet(&cts), Ok((t, PacketBody::RendezvousCts(msg))));
        // Truncation, unknown direction, and zero fields are rejected.
        assert!(decode_packet(&rts[..rts.len() - 1]).is_err());
        let mut bad_dir = rts.clone();
        bad_dir[PRELUDE_LEN] = 9;
        assert!(decode_packet(&bad_dir).is_err());
        let mut zero_total = rts.clone();
        zero_total[PRELUDE_LEN + 1..PRELUDE_LEN + 9].fill(0);
        assert!(decode_packet(&zero_total).is_err());
        let mut zero_mtu = rts.clone();
        zero_mtu[PRELUDE_LEN + 9..PRELUDE_LEN + 13].fill(0);
        assert!(decode_packet(&zero_mtu).is_err());
        let mut zero_window = rts.clone();
        zero_window[PRELUDE_LEN + 13..PRELUDE_LEN + 17].fill(0);
        assert!(decode_packet(&zero_window).is_err());
    }

    #[test]
    fn assembler_swallows_rts_and_rejects_cts() {
        let t = tag(5, 9, 3);
        let msg = RendezvousMsg {
            total: 64,
            mtu: 8,
            window: 8,
        };
        let mut asm = StreamAssembler::new();
        // An RTS for an unknown stream is tolerated (stale relay).
        assert_eq!(
            asm.push_packet(encode_rendezvous_rts(&t, &msg)).unwrap(),
            Vec::<StreamKey>::new()
        );
        asm.push_packet(encode_header(&GtmHeader::new(t, 8, false)))
            .unwrap();
        // An RTS for a live stream is swallowed without queueing an item.
        asm.push_packet(encode_rendezvous_rts(&t, &msg)).unwrap();
        let k = asm.pop_ready().unwrap();
        assert_eq!(asm.next_item(k), None);
        // A CTS must never reach an assembler.
        assert!(asm.push_packet(encode_rendezvous_cts(&t, &msg)).is_err());
    }

    #[test]
    fn landing_floor_covers_every_control_packet() {
        // Tiny MTUs still land a full metrics reply; bulk MTUs are sized
        // by the tagged fragment itself.
        assert_eq!(landing_size_for(1), METRICS_PACKET_MAX);
        assert_eq!(landing_size_for(64), METRICS_PACKET_MAX);
        let bulk = 64 * 1024;
        assert_eq!(landing_size_for(bulk), PRELUDE_LEN + bulk);
        // Every fixed-size packet this module can emit fits the floor.
        for fixed in [
            HEADER_LEN + 1,
            PART_LEN,
            CREDIT_LEN,
            CANCEL_LEN,
            MEMBER_PACKET_LEN,
            RENDEZVOUS_PACKET_LEN,
            METRICS_PACKET_MAX,
        ] {
            assert!(
                landing_size_for(1) >= fixed,
                "floor misses {fixed}-byte packet"
            );
        }
    }

    #[test]
    fn control_round_trips() {
        let h = GtmHeader::new(tag(3, 7, 41), 16384, false);
        assert_eq!(
            decode_packet(&encode_header(&h)),
            Ok((h.tag, PacketBody::Header(h)))
        );
        let hd = GtmHeader::new(tag(2, 5, 0), 1, true);
        assert_eq!(
            decode_packet(&encode_header(&hd)),
            Ok((hd.tag, PacketBody::Header(hd)))
        );
        let d = GtmPartDesc {
            len: 123456789,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        let t = tag(1, 2, 3);
        assert_eq!(
            decode_packet(&encode_part(&t, &d)),
            Ok((t, PacketBody::Part(d)))
        );
        assert_eq!(decode_packet(&encode_end(&t)), Ok((t, PacketBody::End)));
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"abc");
        assert_eq!(decode_packet(&frag), Ok((t, PacketBody::Frag)));
        assert_eq!(frag_payload(&frag), b"abc");
        assert_eq!(
            decode_packet(&encode_credit(&t, 1)),
            Ok((t, PacketBody::Credit(1)))
        );
        assert_eq!(
            decode_packet(&encode_credit(&t, u32::MAX)),
            Ok((t, PacketBody::Credit(u32::MAX)))
        );
        for reason in [CancelReason::PeerUnreachable, CancelReason::CreditTimeout] {
            assert_eq!(
                decode_packet(&encode_cancel(&t, reason)),
                Ok((t, PacketBody::Cancel(reason)))
            );
        }
        assert_eq!(decode_packet(&encode_ack(&t)), Ok((t, PacketBody::Ack)));
        let mut acked = GtmHeader::new(t, 4096, false);
        acked.acked = true;
        assert_eq!(
            decode_packet(&encode_header(&acked)),
            Ok((t, PacketBody::Header(acked)))
        );
        let mut acked_retry = acked;
        acked_retry.retry = true;
        assert_eq!(
            decode_packet(&encode_header(&acked_retry)),
            Ok((t, PacketBody::Header(acked_retry)))
        );
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(decode_packet(&[]).is_err());
        assert!(decode_packet(&[0x00; PRELUDE_LEN]).is_err());
        // Version 1 framing must be rejected, not misparsed.
        let mut v1ish = encode_end(&tag(0, 1, 0));
        v1ish[1] = 1;
        assert!(decode_packet(&v1ish).is_err());
        // Unknown kind.
        let mut bad = encode_end(&tag(0, 1, 0));
        bad[2] = 99;
        assert!(decode_packet(&bad).is_err());
        // Truncated header.
        let h = encode_header(&GtmHeader::new(tag(0, 1, 0), 64, false));
        assert!(decode_packet(&h[..h.len() - 1]).is_err());
        // Zero MTU.
        let mut z = h.clone();
        z[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&z).is_err());
        // Unknown flag bits.
        let mut f = h.clone();
        f[19] = 0xF0;
        assert!(decode_packet(&f).is_err());
        // Bad flag bytes in a descriptor.
        let mut d = encode_part(
            &tag(0, 1, 0),
            &GtmPartDesc {
                len: 1,
                send: SendMode::Safer,
                recv: RecvMode::Express,
            },
        );
        d[23] = 77;
        assert!(decode_packet(&d).is_err());
        // A fragment must carry at least one payload byte.
        assert!(decode_packet(&frag_prelude(&tag(0, 1, 0))).is_err());
        // A zero-count credit grant is meaningless and must be rejected.
        let mut c = encode_credit(&tag(0, 1, 0), 1);
        c[15..19].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_packet(&c).is_err());
        // Truncated credit.
        let c2 = encode_credit(&tag(0, 1, 0), 3);
        assert!(decode_packet(&c2[..c2.len() - 1]).is_err());
        // Unknown cancel reason byte.
        let mut k = encode_cancel(&tag(0, 1, 0), CancelReason::PeerUnreachable);
        k[15] = 0;
        assert!(decode_packet(&k).is_err());
        // An ack is the bare prelude — trailing bytes are a framing error.
        let mut a = encode_ack(&tag(0, 1, 0));
        a.push(0);
        assert!(decode_packet(&a).is_err());
    }

    /// The handoff-ack dedup: a retry of a stream finished via
    /// `finish_delivered` is absorbed as a ghost (never surfaced), while a
    /// retry of a *cancelled* stream replays normally.
    #[test]
    fn retry_of_delivered_stream_is_absorbed_as_ghost() {
        let t = tag(3, 9, 7);
        let mut h = GtmHeader::new(t, 8, false);
        h.acked = true;
        let desc = GtmPartDesc {
            len: 3,
            send: SendMode::Later,
            recv: RecvMode::Cheaper,
        };
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"abc");

        // First attempt delivers in full.
        let mut asm = StreamAssembler::new();
        assert_eq!(
            asm.push_packet_from(1, encode_header(&h)).unwrap(),
            [t.key()]
        );
        asm.push_packet_from(1, encode_part(&t, &desc)).unwrap();
        asm.push_packet_from(1, frag.clone()).unwrap();
        asm.push_packet_from(1, encode_end(&t)).unwrap();
        let k = asm.pop_ready().unwrap();
        assert!(matches!(asm.next_item(k), Some(StreamItem::Part(_))));
        assert!(matches!(asm.next_item(k), Some(StreamItem::Frag(_))));
        assert_eq!(asm.next_item(k), Some(StreamItem::End));
        asm.finish_delivered(k);

        // The ack was lost: the sender re-issues the whole stream with the
        // retry flag. Nothing must surface a second time.
        let mut hr = h;
        hr.retry = true;
        assert!(asm
            .push_packet_from(2, encode_header(&hr))
            .unwrap()
            .is_empty());
        asm.push_packet_from(2, encode_part(&t, &desc)).unwrap();
        asm.push_packet_from(2, frag.clone()).unwrap();
        asm.push_packet_from(2, encode_end(&t)).unwrap();
        assert_eq!(asm.pop_ready(), None);
        assert!(asm.is_idle(), "ghost must be dropped once its end arrives");

        // A key finished WITHOUT delivery (cancelled) replays normally.
        let t2 = tag(3, 9, 8);
        let mut h2 = GtmHeader::new(t2, 8, false);
        h2.acked = true;
        asm.push_packet_from(1, encode_header(&h2)).unwrap();
        let k2 = asm.pop_ready().unwrap();
        asm.finish(k2); // plain finish: not delivered
        let mut h2r = h2;
        h2r.retry = true;
        assert_eq!(
            asm.push_packet_from(2, encode_header(&h2r)).unwrap(),
            [t2.key()],
            "retry of an undelivered stream must open normally"
        );
    }

    #[test]
    fn assembler_rejects_stray_credits_and_queues_cancels() {
        let t = tag(5, 6, 1);
        let mut asm = StreamAssembler::new();
        asm.push_packet(encode_header(&GtmHeader::new(t, 8, false)))
            .unwrap();
        // A credit must never reach an assembler, even for a live stream.
        assert!(asm.push_packet(encode_credit(&t, 2)).is_err());
        // A cancel ends the stream in-band, after already-buffered items.
        asm.push_packet(encode_cancel(&t, CancelReason::CreditTimeout))
            .unwrap();
        let k = asm.pop_ready().unwrap();
        assert_eq!(
            asm.next_item(k),
            Some(StreamItem::Cancelled(CancelReason::CreditTimeout))
        );
    }

    #[test]
    fn batch_round_trips() {
        let t = tag(1, 2, 3);
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"payload");
        let end = encode_end(&t);
        let credit = encode_credit(&t, 4);
        let frame = encode_batch(&[&frag, &end, &credit]);
        assert_eq!(decode_packet(&frame).unwrap().1, PacketBody::Batch);
        let subs: Vec<&[u8]> = batch_packets(&frame).unwrap().collect();
        assert_eq!(subs, vec![&frag[..], &end[..], &credit[..]]);
    }

    #[test]
    fn malformed_batches_rejected() {
        let t = tag(0, 1, 0);
        let end = encode_end(&t);
        // An empty batch is meaningless.
        assert!(decode_packet(&batch_prelude()).is_err());
        // Truncated train: length prefix promises more than is there.
        let mut frame = encode_batch(&[&end]);
        frame.truncate(frame.len() - 1);
        assert!(decode_packet(&frame).is_err());
        // Nested batches are forbidden.
        let inner = encode_batch(&[&end]);
        assert!(decode_packet(&encode_batch(&[&inner])).is_err());
        // batch_packets refuses non-batch input.
        assert!(batch_packets(&end).is_err());
    }

    #[test]
    fn assembler_splits_batch_frames() {
        let t = tag(8, 9, 2);
        let header = encode_header(&GtmHeader::new(t, 4, false));
        let part = encode_part(
            &t,
            &GtmPartDesc {
                len: 3,
                send: SendMode::Later,
                recv: RecvMode::Cheaper,
            },
        );
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"xyz");
        let end = encode_end(&t);
        let frame = encode_batch(&[&header, &part, &frag, &end]);

        let pool = mad_util::pool::BufferPool::new();
        let mut asm = StreamAssembler::with_pool(pool);
        let opened = asm.push_packet(frame).unwrap();
        assert_eq!(opened, vec![t.key()], "batch split reports opened streams");
        let k = asm.pop_ready().unwrap();
        assert!(matches!(asm.next_item(k), Some(StreamItem::Part(d)) if d.len == 3));
        match asm.next_item(k) {
            Some(StreamItem::Frag(f)) => assert_eq!(frag_payload(&f), b"xyz"),
            other => panic!("expected fragment, got {other:?}"),
        }
        assert_eq!(asm.next_item(k), Some(StreamItem::End));
        asm.finish(k);
        assert!(asm.is_idle());
    }

    #[test]
    fn fragment_counts() {
        assert_eq!(fragment_count(0, 1024), 0);
        assert_eq!(fragment_count(1, 1024), 1);
        assert_eq!(fragment_count(1024, 1024), 1);
        assert_eq!(fragment_count(1025, 1024), 2);
        assert_eq!(fragment_count(10 * 1024, 1024), 10);
    }

    #[test]
    fn assembler_demultiplexes_interleaved_streams() {
        let (ta, tb) = (tag(0, 9, 0), tag(4, 9, 7));
        let mut frag_a = frag_prelude(&ta).to_vec();
        frag_a.extend_from_slice(b"aaaa");
        let mut frag_b = frag_prelude(&tb).to_vec();
        frag_b.extend_from_slice(b"bb");
        let part = |t: &StreamTag, len: u64| {
            encode_part(
                t,
                &GtmPartDesc {
                    len,
                    send: SendMode::Later,
                    recv: RecvMode::Cheaper,
                },
            )
        };

        let mut asm = StreamAssembler::new();
        // Interleave two streams packet by packet.
        asm.push_packet(encode_header(&GtmHeader::new(ta, 4, false)))
            .unwrap();
        asm.push_packet(encode_header(&GtmHeader::new(tb, 4, true)))
            .unwrap();
        asm.push_packet(part(&ta, 4)).unwrap();
        asm.push_packet(part(&tb, 2)).unwrap();
        asm.push_packet(frag_b.clone()).unwrap();
        asm.push_packet(frag_a.clone()).unwrap();
        asm.push_packet(encode_end(&tb)).unwrap();
        asm.push_packet(encode_end(&ta)).unwrap();

        // Ready order follows header arrival.
        let ka = asm.pop_ready().unwrap();
        let kb = asm.pop_ready().unwrap();
        assert_eq!(ka, ta.key());
        assert_eq!(kb, tb.key());
        assert!(!asm.header(ka).unwrap().direct);
        assert!(asm.header(kb).unwrap().direct);
        // Each stream drains in its own order, unpolluted by the other.
        assert!(matches!(asm.next_item(ka), Some(StreamItem::Part(d)) if d.len == 4));
        assert_eq!(asm.next_item(ka), Some(StreamItem::Frag(frag_a.into())));
        assert_eq!(asm.next_item(ka), Some(StreamItem::End));
        assert!(matches!(asm.next_item(kb), Some(StreamItem::Part(d)) if d.len == 2));
        assert_eq!(asm.next_item(kb), Some(StreamItem::Frag(frag_b.into())));
        assert_eq!(asm.next_item(kb), Some(StreamItem::End));
        asm.finish(ka);
        asm.finish(kb);
        assert!(asm.is_idle());
    }

    #[test]
    fn assembler_rejects_protocol_violations() {
        let t = tag(1, 2, 3);
        let mut asm = StreamAssembler::new();
        // Body packet for a stream whose header never arrived.
        assert!(asm.push_packet(encode_end(&t)).is_err());
        let h = GtmHeader::new(t, 16, false);
        asm.push_packet(encode_header(&h)).unwrap();
        // Duplicate header for a live stream.
        assert!(asm.push_packet(encode_header(&h)).is_err());
    }

    #[test]
    fn striped_and_retry_headers_round_trip() {
        let t = tag(3, 9, 5);
        let mut striped = GtmHeader::new(t, 4096, false);
        striped.stripes = 3;
        let pkt = encode_header(&striped);
        assert_eq!(
            pkt.len(),
            HEADER_LEN + 1,
            "striped header carries the path count"
        );
        assert_eq!(decode_packet(&pkt), Ok((t, PacketBody::Header(striped))));

        let mut retry = GtmHeader::new(t, 4096, false);
        retry.retry = true;
        let pkt = encode_header(&retry);
        assert_eq!(pkt.len(), HEADER_LEN);
        assert_eq!(decode_packet(&pkt), Ok((t, PacketBody::Header(retry))));

        // One declared path is not striping; a striped retry is forbidden.
        let mut one = pkt.clone();
        one[19] |= FLAG_STRIPED;
        one.push(1);
        assert!(decode_packet(&one).is_err());
        let mut both = encode_header(&striped);
        both[19] |= FLAG_RETRY;
        assert!(decode_packet(&both).is_err());
    }

    fn envelope(t: &StreamTag, seq: u32, inner: &[u8]) -> Vec<u8> {
        let mut v = stripe_prelude(t, seq).to_vec();
        v.extend_from_slice(inner);
        v
    }

    #[test]
    fn stripe_envelopes_round_trip_and_validate() {
        let t = tag(1, 2, 3);
        let mut frag = frag_prelude(&t).to_vec();
        frag.extend_from_slice(b"data");
        let env = envelope(&t, 7, &frag);
        assert_eq!(decode_packet(&env), Ok((t, PacketBody::Stripe(7))));
        assert_eq!(stripe_inner(&env), &frag[..]);

        // Inner packet of a different stream.
        let foreign = frag_prelude(&tag(9, 2, 3)).to_vec();
        let mut bad = foreign.clone();
        bad.push(1);
        assert!(decode_packet(&envelope(&t, 0, &bad)).is_err());
        // Inner packet of a non-body kind.
        let hdr = encode_header(&GtmHeader::new(t, 16, false));
        assert!(decode_packet(&envelope(&t, 0, &hdr)).is_err());
        // Truncated envelope.
        assert!(decode_packet(&stripe_prelude(&t, 0)).is_err());
    }

    #[test]
    fn assembler_replays_stripes_in_sequence_order() {
        let t = tag(4, 8, 1);
        let mut h = GtmHeader::new(t, 4, false);
        h.stripes = 2;
        let part = encode_part(
            &t,
            &GtmPartDesc {
                len: 6,
                send: SendMode::Later,
                recv: RecvMode::Cheaper,
            },
        );
        let frag = |b: &[u8]| {
            let mut f = frag_prelude(&t).to_vec();
            f.extend_from_slice(b);
            f
        };
        let (f0, f1) = (frag(b"abcd"), frag(b"ef"));
        let end = encode_end(&t);

        let mut asm = StreamAssembler::new();
        // Path A delivers the header first; path B's copy is tolerated.
        asm.push_packet_from(1, encode_header(&h)).unwrap();
        asm.push_packet_from(2, encode_header(&h)).unwrap();
        // Envelopes arrive out of order across the two paths.
        asm.push_packet_from(2, envelope(&t, 1, &f0)).unwrap();
        asm.push_packet_from(2, envelope(&t, 3, &end)).unwrap();
        asm.push_packet_from(1, envelope(&t, 0, &part)).unwrap();
        let k = asm.pop_ready().unwrap();
        // Nothing past seq 1 is visible until seq 2 fills the gap.
        assert!(matches!(asm.next_item(k), Some(StreamItem::Part(d)) if d.len == 6));
        assert!(matches!(asm.next_item(k), Some(StreamItem::Frag(_))));
        assert_eq!(asm.next_item(k), None);
        asm.push_packet_from(1, envelope(&t, 2, &f1)).unwrap();
        match asm.next_item(k) {
            Some(StreamItem::Frag(f)) => assert_eq!(frag_payload(&f), b"ef"),
            other => panic!("expected fragment, got {other:?}"),
        }
        assert_eq!(asm.next_item(k), Some(StreamItem::End));
        // One path's transport end arrives before finish, one straggles.
        asm.push_packet_from(1, end.clone()).unwrap();
        asm.finish(k);
        assert!(!asm.is_idle() || !asm.stripe_tombstones.is_empty());
        asm.push_packet_from(2, end.clone()).unwrap();
        assert!(asm.is_idle() && asm.stripe_tombstones.is_empty());
        // A third end would be a protocol violation (unknown stream).
        assert!(asm.push_packet_from(2, end).is_err());
        // Duplicate sequence numbers are rejected while the stream lives.
        let mut asm = StreamAssembler::new();
        asm.push_packet_from(1, encode_header(&h)).unwrap();
        asm.push_packet_from(1, envelope(&t, 0, &part)).unwrap();
        assert!(asm.push_packet_from(2, envelope(&t, 0, &part)).is_err());
        // Bare body packets may not bypass the envelope layer.
        assert!(asm.push_packet_from(1, f0).is_err());
    }

    #[test]
    fn assembler_grafts_retry_and_drops_stale_origins() {
        let t = tag(6, 2, 9);
        let part = |len: u64| {
            encode_part(
                &t,
                &GtmPartDesc {
                    len,
                    send: SendMode::Later,
                    recv: RecvMode::Cheaper,
                },
            )
        };
        let mut asm = StreamAssembler::new();
        // First attempt arrives via origin 1 and stalls mid-stream.
        asm.push_packet_from(1, encode_header(&GtmHeader::new(t, 8, false)))
            .unwrap();
        asm.push_packet_from(1, part(8)).unwrap();
        // The failover re-issue arrives via origin 2 with the retry flag:
        // buffered items are superseded by a restart marker.
        let mut retry = GtmHeader::new(t, 8, false);
        retry.retry = true;
        asm.push_packet_from(2, encode_header(&retry)).unwrap();
        let k = asm.pop_ready().unwrap();
        assert_eq!(asm.next_item(k), Some(StreamItem::Restart));
        // Stale leftovers of the dead path are swallowed silently...
        asm.push_packet_from(1, part(8)).unwrap();
        assert_eq!(asm.next_item(k), None);
        // ...while the live path's replay flows through.
        asm.push_packet_from(2, part(8)).unwrap();
        asm.push_packet_from(2, encode_end(&t)).unwrap();
        assert!(matches!(asm.next_item(k), Some(StreamItem::Part(d)) if d.len == 8));
        assert_eq!(asm.next_item(k), Some(StreamItem::End));
        asm.finish(k);
        assert!(asm.is_idle());
    }
}
