//! # madeleine — a multi-device message-passing library with transparent
//! inter-device forwarding
//!
//! This crate reproduces, in Rust, the system described in *"Efficient
//! Inter-Device Data-Forwarding in the Madeleine Communication Library"*
//! (Aumage, Eyraud, Namyst; 2001): a communication library able to drive
//! several high-speed networks within one session and to forward messages
//! across networks on gateway nodes — transparently, with zero-copy buffer
//! handoff and a pipelined retransmission engine.
//!
//! ## Layering (paper §2.1)
//!
//! ```text
//!        application
//!   ┌────────────────────┐
//!   │  virtual channels  │  route selection, forwarding notes     (§2.2)
//!   ├────────────────────┤
//!   │  buffer management │  pack/unpack grouping, flag semantics  (§2.1.1)
//!   ├────────────────────┤
//!   │  generic TM (GTM)  │  self-described, MTU-fragmented msgs   (§2.2.1)
//!   ├────────────────────┤
//!   │ transmission mods  │  one [`Conduit`] per connection         (§2.1.1)
//!   └────────────────────┘
//!        drivers: shared-memory, TCP, simulated Myrinet/SCI/Ethernet
//! ```
//!
//! * [`channel::Channel`] — a closed communication world over one network
//!   (paper's *channel* object), holding in-order point-to-point
//!   *connections*.
//! * [`message::MessageWriter`] / [`message::MessageReader`] — incremental
//!   message construction (`mad_begin_packing` / `mad_pack` /
//!   `mad_end_packing` and their unpacking mirrors), including the
//!   [`SendMode`]/[`RecvMode`] flag semantics and deterministic buffer
//!   grouping shared by both sides.
//! * [`gtm`] — the Generic Transmission Module: the self-describing,
//!   MTU-fragmented wire format used by every message that crosses at least
//!   two networks.
//! * [`vchannel::VirtualChannel`] — a set of real channels (two per device:
//!   *regular* and *special*) plus a routing table; messages are
//!   transparently forwarded through gateway nodes when the destination is
//!   on another network.
//! * [`gateway`] — the forwarding engine running on gateway nodes: one
//!   receiving and one sending thread per direction, a multi-buffer
//!   pipeline, and the zero-copy static/dynamic buffer handoff matrix.
//! * [`session::SessionBuilder`] — in-process bootstrap: declares networks,
//!   nodes, channels and virtual channels, spawns one thread per node, and
//!   wires the gateways.
//! * [`baseline`] — the Nexus/PACX-style *application-level* forwarder the
//!   paper argues against (extra copies, no pipelining), used as the
//!   comparison baseline by the benchmarks.
//!
//! The library is hardware-agnostic: all timing, blocking and cost
//! accounting go through the [`runtime::Runtime`] trait, so the same code
//! runs on real threads (shared-memory or TCP drivers) and on the virtual
//! clock of the `simnet` hardware model.

#![warn(missing_docs)]

pub mod baseline;
pub mod channel;
pub mod conduit;
pub mod control;
pub mod credit;
pub mod error;
pub mod flags;
pub mod gateway;
pub mod gtm;
pub mod membership;
pub mod message;
pub mod metrics_plane;
pub mod multipath;
pub mod plan;
pub mod routing;
pub mod runtime;
pub mod session;
#[cfg(test)]
mod testutil;
pub mod types;
pub mod vchannel;

pub use channel::Channel;
pub use conduit::{BufferMode, Conduit, Driver, DriverCaps, StaticBuf};
pub use control::{ControllerConfig, Tuning};
pub use credit::{CreditLedger, FlowControl};
pub use error::{MadError, Result};
pub use flags::{RecvMode, SendMode};
pub use mad_route;
pub use mad_trace;
pub use membership::{JoinPhase, MemberState, MembershipOptions, MembershipPlane};
pub use message::{MessageReader, MessageWriter};
pub use metrics_plane::{MetricsOptions, MetricsPlane, WatchdogConfig};
pub use multipath::{MultiPath, MultipathConfig};
pub use runtime::{Runtime, StdRuntime};
pub use session::{Node, SessionBuilder};
pub use types::{ChannelId, NetworkId, NodeId};
pub use vchannel::VirtualChannel;
